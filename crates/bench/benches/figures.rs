//! Criterion benches for the figure experiments F1–F8: one group per figure,
//! timing the experiment's *core operation* at Quick scale (the full sweeps
//! live in the `expts` binary; Criterion times the unit of work each figure
//! repeats).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_bench::Fixture;
use dde_core::{
    ContinuousConfig, ContinuousEstimator, DensityEstimator, DfDde, DfDdeConfig, ProbeStrategy,
    SampleMode,
};
use dde_ring::{ChurnConfig, ChurnProcess, RingId};
use dde_sim::experiments::t1_defaults::default_scenario;
use dde_sim::experiments::Scale;
use dde_sim::{build, Scenario};
use dde_stats::dist::DistributionKind;
use dde_stats::rng::{Component, SeedSequence};
use rand::Rng;

fn bench_estimate(c: &mut Criterion, group: &str, scenario: &Scenario, probes: &[usize]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for &k in probes {
        let mut built = build(scenario);
        let mut rng = SeedSequence::new(7).stream(Component::Estimator, k as u64);
        let est = DfDde::new(DfDdeConfig::with_probes(k));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// F1: one estimate per probe budget.
fn f1(c: &mut Criterion) {
    bench_estimate(c, "f1_probes", &default_scenario(Scale::Quick), &[16, 64, 256]);
}

/// F2: one estimate per network size.
fn f2(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_network_size");
    g.sample_size(10);
    for p in [64usize, 512, 2048] {
        let scenario = default_scenario(Scale::Quick).with_peers(p).with_items(10_000);
        let mut built = build(&scenario);
        let mut rng = SeedSequence::new(8).stream(Component::Estimator, p as u64);
        let est = DfDde::new(DfDdeConfig::with_probes(64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// F3: one estimate per distribution.
fn f3(c: &mut Criterion) {
    let mut g = c.benchmark_group("f3_distributions");
    g.sample_size(10);
    for kind in [
        DistributionKind::Uniform,
        DistributionKind::Pareto { shape: 1.2 },
        DistributionKind::Bimodal,
    ] {
        let scenario = default_scenario(Scale::Quick).with_distribution(kind.clone());
        let mut built = build(&scenario);
        let mut rng = SeedSequence::new(9).stream(Component::Estimator, 0);
        let est = DfDde::new(DfDdeConfig::with_probes(64));
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// F4: the probing strategies the frontier compares (stratified vs iid).
fn f4(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_cost_accuracy");
    g.sample_size(10);
    for (label, strategy) in
        [("stratified", ProbeStrategy::Stratified), ("iid", ProbeStrategy::IidUniform)]
    {
        let mut built = build(&default_scenario(Scale::Quick));
        let mut rng = SeedSequence::new(10).stream(Component::Estimator, 0);
        let est = DfDde::new(DfDdeConfig { strategy, ..DfDdeConfig::with_probes(64) });
        g.bench_function(label, |b| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// F5: one churn unit + one estimate (the per-point work of the churn sweep).
fn f5(c: &mut Criterion) {
    let mut g = c.benchmark_group("f5_churn");
    g.sample_size(10);
    let scenario = default_scenario(Scale::Quick);
    g.bench_function("churn_then_estimate", |b| {
        b.iter(|| {
            let mut built = build(&scenario);
            let seq = SeedSequence::new(11);
            let mut churn_rng = seq.stream(Component::Churn, 0);
            let mut est_rng = seq.stream(Component::Estimator, 0);
            let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.1, 0.5));
            churn.run(&mut built.net, 2.0, &mut churn_rng);
            let initiator = built.net.random_peer(&mut est_rng).expect("nonempty");
            DfDde::new(DfDdeConfig::with_probes(64))
                .estimate(&mut built.net, initiator, &mut est_rng)
                .ok()
        });
    });
    g.finish();
}

/// F5b: one continuous-estimator tick.
fn f5b(c: &mut Criterion) {
    let mut g = c.benchmark_group("f5b_continuous");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(12).stream(Component::Estimator, 0);
    let initiator = built.net.random_peer(&mut rng).expect("nonempty");
    let mut cont = ContinuousEstimator::new(ContinuousConfig::default());
    g.bench_function("tick_and_rebuild", |b| {
        b.iter(|| {
            cont.tick(&mut built.net, initiator, &mut rng).expect("tick");
            cont.current_estimate((0.0, 1000.0)).ok()
        });
    });
    g.finish();
}

/// F6: probe-reply summary construction per granularity.
fn f6(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_granularity");
    for buckets in [1usize, 8, 64] {
        let scenario = default_scenario(Scale::Quick).with_summary_buckets(buckets);
        let built = build(&scenario);
        let busiest = built
            .net
            .ids()
            .max_by_key(|&id| built.net.node(id).expect("alive").store.len())
            .expect("nonempty");
        let store = &built.net.node(busiest).expect("alive").store;
        g.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, &buckets| {
            b.iter(|| store.summary(buckets));
        });
    }
    g.finish();
}

/// F7: bulk-loading per dataset size (the per-point setup cost the sweep pays).
fn f7(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_dataset_size");
    g.sample_size(10);
    for n in [5_000usize, 50_000] {
        let scenario = default_scenario(Scale::Quick).with_items(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build(&scenario).net.total_items());
        });
    }
    g.finish();
}

/// F8: a single lookup per network size.
fn f8(c: &mut Criterion) {
    let mut g = c.benchmark_group("f8_routing");
    for p in [64usize, 1024] {
        let scenario = default_scenario(Scale::Quick).with_peers(p).with_items(1_000);
        let mut built = build(&scenario);
        let mut rng = SeedSequence::new(13).stream(Component::Workload, p as u64);
        let from = built.net.random_peer(&mut rng).expect("nonempty");
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| built.net.lookup(from, RingId(rng.gen())).expect("routes"));
        });
    }
    g.finish();
}

/// F9: one remote-tuple Phase-2 pass.
fn f9(c: &mut Criterion) {
    let mut g = c.benchmark_group("f9_sample_quality");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(14).stream(Component::Estimator, 0);
    for (label, mode) in [
        ("skeleton_only", SampleMode::SkeletonOnly),
        ("remote_100", SampleMode::RemoteTuples { m: 100 }),
    ] {
        let est = DfDde::new(DfDdeConfig { sample_mode: mode, ..DfDdeConfig::with_probes(64) });
        g.bench_function(label, |b| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// F10: one stabilization round with replication maintenance on/off.
fn f10(c: &mut Criterion) {
    let mut g = c.benchmark_group("f10_replication");
    g.sample_size(10);
    for r in [0usize, 2] {
        let mut built = build(&default_scenario(Scale::Quick));
        built.net.set_replication(r);
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            b.iter(|| built.net.stabilize_round());
        });
    }
    g.finish();
}

/// Smoke sanity so a broken fixture fails loudly in `cargo bench`.
fn fixture_sanity(c: &mut Criterion) {
    let mut fx = Fixture::quick();
    let ks = fx.dfdde_once();
    assert!(ks < 0.4, "fixture broken: ks = {ks}");
    c.bench_function("fixture/dfdde_once", |b| b.iter(|| fx.dfdde_once()));
}

criterion_group!(figures, f1, f2, f3, f4, f5, f5b, f6, f7, f8, f9, f10, fixture_sanity);
criterion_main!(figures);
