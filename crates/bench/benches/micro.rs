//! Microbenchmarks of the substrate hot paths: routing, probing, membership
//! churn, store and summary operations, sketches, skeleton assembly, KDE,
//! and metrics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_ring::{ChurnBatch, LocalStore, Network, Placement, RingId};
use dde_stats::dist::{BoundedPareto, Distribution, Normal, Truncated};
use dde_stats::equidepth::EquiDepthSummary;
use dde_stats::gk::GkSketch;
use dde_stats::kde::{Bandwidth, Kde};
use dde_stats::metrics::ks_distance;
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::{CdfFn, Ecdf, PiecewiseCdf};
use rand::Rng;

fn ring_net(p: usize, seed: u64) -> Network {
    let mut rng = SeedSequence::new(seed).stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
    ids.sort();
    ids.dedup();
    Network::build(ids, Placement::range(0.0, 1000.0))
}

fn lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/lookup");
    for p in [256usize, 4096] {
        let mut net = ring_net(p, 1);
        let mut rng = SeedSequence::new(2).stream(Component::Workload, p as u64);
        let from = net.random_peer(&mut rng).expect("nonempty");
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| net.lookup(from, RingId(rng.gen())).expect("routes"));
        });
    }
    g.finish();
}

fn probe(c: &mut Criterion) {
    let mut net = ring_net(1024, 3);
    let dist = Truncated::new(Normal::new(500.0, 120.0), 0.0, 1000.0);
    let mut data_rng = SeedSequence::new(3).stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut data_rng)).collect();
    net.bulk_load(&data);
    let mut rng = SeedSequence::new(4).stream(Component::Probes, 0);
    let from = net.random_peer(&mut rng).expect("nonempty");
    c.bench_function("micro/probe", |b| {
        b.iter(|| net.probe(from, RingId(rng.gen())).expect("probes"));
    });
}

fn global_values(c: &mut Criterion) {
    let mut net = ring_net(512, 11);
    let dist = Truncated::new(Normal::new(500.0, 120.0), 0.0, 1000.0);
    let mut data_rng = SeedSequence::new(11).stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut data_rng)).collect();
    net.bulk_load(&data);
    let mut rng = SeedSequence::new(12).stream(Component::Workload, 0);
    let from = net.random_peer(&mut rng).expect("nonempty");
    let mut g = c.benchmark_group("micro/global_values");
    // Steady state: the epoch cache absorbs every call after the first.
    let _ = net.global_values();
    g.bench_function("cached", |b| b.iter(|| net.global_values_arc().len()));
    // Every iteration mutates the data, so every call re-collects and
    // re-sorts the 100k values — the cost the cache removes.
    g.bench_function("invalidated", |b| {
        b.iter(|| {
            net.insert(from, black_box(123.456)).expect("routes");
            let n = net.global_values_arc().len();
            net.delete(from, 123.456).expect("routes");
            n
        });
    });
    g.finish();
}

fn store_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/store");
    let store = LocalStore::from_values((0..10_000).map(|i| (i % 997) as f64).collect());
    g.bench_function("count_le", |b| b.iter(|| store.count_le(black_box(498.5))));
    g.bench_function("summary_8", |b| b.iter(|| store.summary(8)));
    g.bench_function("summary_64", |b| b.iter(|| store.summary(64)));
    g.finish();
}

fn equidepth_query(c: &mut Criterion) {
    let sorted: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
    let s = EquiDepthSummary::from_sorted(&sorted, 32);
    c.bench_function("micro/equidepth_count_le", |b| b.iter(|| s.count_le(black_box(54_321.5))));
}

fn gk_insert(c: &mut Criterion) {
    c.bench_function("micro/gk_insert_10k", |b| {
        b.iter(|| {
            let mut sk = GkSketch::new(0.01);
            for i in 0..10_000u32 {
                sk.insert(f64::from(i % 997));
            }
            sk.size()
        });
    });
}

fn skeleton_assembly(c: &mut Criterion) {
    // Build realistic probe replies once, then time the assembly alone.
    let mut net = ring_net(1024, 5);
    let dist = BoundedPareto::new(0.0, 1000.0, 1.2);
    let mut data_rng = SeedSequence::new(5).stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut data_rng)).collect();
    net.bulk_load(&data);
    let mut rng = SeedSequence::new(6).stream(Component::Probes, 0);
    let from = net.random_peer(&mut rng).expect("nonempty");
    let replies: Vec<_> =
        (0..256).map(|_| net.probe(from, RingId(rng.gen())).expect("probes")).collect();
    c.bench_function("micro/skeleton_from_256_probes", |b| {
        b.iter(|| {
            dde_core::CdfSkeleton::from_probes(
                &replies,
                (0.0, 1000.0),
                4096,
                dde_core::skeleton::Weighting::HorvitzThompson,
            )
            .expect("builds")
        });
    });
}

fn kde_eval(c: &mut Criterion) {
    let dist = Truncated::new(Normal::new(0.0, 1.0), -5.0, 5.0);
    let mut rng = SeedSequence::new(7).stream(Component::Test, 0);
    let samples: Vec<f64> = (0..5_000).map(|_| dist.sample(&mut rng)).collect();
    let kde = Kde::fit(samples, Bandwidth::Silverman, (-5.0, 5.0));
    c.bench_function("micro/kde_pdf", |b| b.iter(|| kde.pdf(black_box(0.7))));
}

fn metrics_ks(c: &mut Criterion) {
    let mut rng = SeedSequence::new(8).stream(Component::Test, 0);
    let dist = Truncated::new(Normal::new(0.0, 1.0), -5.0, 5.0);
    let ecdf = Ecdf::new((0..10_000).map(|_| dist.sample(&mut rng)).collect());
    let pw = PiecewiseCdf::from_points(vec![(-5.0, 0.0), (0.0, 0.5), (5.0, 1.0)]);
    c.bench_function("micro/ks_distance_2048", |b| b.iter(|| ks_distance(&ecdf, &pw, 2048)));
    // Keep the CdfFn import meaningfully used.
    assert!(pw.cdf(0.0) > 0.4);
}

fn churn(c: &mut Criterion) {
    // The three membership-mutation policies F12b weighs against each other,
    // on a data-free 4096-peer ring (isolating repair machinery from data
    // handoff): one coalesced `ChurnBatch` window, the same event mix
    // through the one-at-a-time arena drivers, and the teardown-and-rebuild
    // a snapshot-immutable design would pay instead. Windows are join/death
    // balanced (32/16/16) so the ring size stays put across iterations.
    let mut g = c.benchmark_group("micro/churn");
    let p = 4096;
    {
        let mut rng = SeedSequence::new(21).stream(Component::NodeIds, 0);
        let ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
        let mut net = Network::build_bulk(ids, Placement::range(0.0, 1000.0));
        let mut rng = SeedSequence::new(22).stream(Component::Churn, 0);
        let mut batch = ChurnBatch::new();
        g.bench_function("batched_64_event_window", |b| {
            b.iter(|| {
                for _ in 0..32 {
                    batch.join(RingId(rng.gen()));
                }
                for _ in 0..16 {
                    batch.leave(net.random_peer(&mut rng).expect("nonempty"));
                }
                for _ in 0..16 {
                    batch.crash(net.random_peer(&mut rng).expect("nonempty"));
                }
                batch.apply(&mut net).joins
            });
        });
    }
    {
        let mut rng = SeedSequence::new(23).stream(Component::NodeIds, 0);
        let ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
        let mut net = Network::build_bulk(ids, Placement::range(0.0, 1000.0));
        let mut rng = SeedSequence::new(24).stream(Component::Churn, 0);
        g.bench_function("incremental_64_events", |b| {
            b.iter(|| {
                for _ in 0..32 {
                    net.churn_join(RingId(rng.gen()));
                }
                for _ in 0..16 {
                    let v = net.random_peer(&mut rng).expect("nonempty");
                    net.churn_leave(v);
                }
                for _ in 0..16 {
                    let v = net.random_peer(&mut rng).expect("nonempty");
                    net.churn_crash(v);
                }
                net.len()
            });
        });
    }
    {
        let mut rng = SeedSequence::new(25).stream(Component::NodeIds, 0);
        let ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
        let net = Network::build_bulk(ids, Placement::range(0.0, 1000.0));
        g.bench_function("teardown_rebuild", |b| {
            b.iter(|| {
                let ids: Vec<RingId> = net.ids().collect();
                Network::build_bulk(ids, Placement::range(0.0, 1000.0)).len()
            });
        });
    }
    g.finish();
}

fn range_query(c: &mut Criterion) {
    let mut net = ring_net(512, 9);
    let dist = Truncated::new(Normal::new(500.0, 150.0), 0.0, 1000.0);
    let mut data_rng = SeedSequence::new(9).stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut data_rng)).collect();
    net.bulk_load(&data);
    let mut rng = SeedSequence::new(10).stream(Component::Workload, 0);
    let from = net.random_peer(&mut rng).expect("nonempty");
    c.bench_function("micro/range_query_5pct", |b| {
        b.iter(|| net.range_query(from, 475.0, 525.0).expect("queries"));
    });
}

criterion_group!(
    micro,
    lookup,
    probe,
    global_values,
    churn,
    range_query,
    store_ops,
    equidepth_query,
    gk_insert,
    skeleton_assembly,
    kde_eval,
    metrics_ks
);
criterion_main!(micro);
