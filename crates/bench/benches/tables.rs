//! Criterion benches for the table experiments T1–T3: one group per table,
//! timing each method's single-estimate cost on the default scenario (the
//! quantities the tables aggregate).

use criterion::{criterion_group, criterion_main, Criterion};
use dde_core::skeleton::Weighting;
use dde_core::{
    AggregateEstimator, DensityEstimator, DfDde, DfDdeConfig, ExactAggregation, GossipAggregation,
    GossipConfig, ProbeStrategy, UniformPeerConfig, UniformPeerSampling,
};
use dde_sim::experiments::t1_defaults::default_scenario;
use dde_sim::experiments::Scale;
use dde_sim::{build, NodeLayout};
use dde_stats::rng::{Component, SeedSequence};

/// T1: the two anchor methods at defaults (df-dde vs exact walk).
fn t1(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_defaults");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(20).stream(Component::Estimator, 0);

    let dfdde = DfDde::new(DfDdeConfig::with_probes(128));
    g.bench_function("df-dde", |b| {
        b.iter(|| {
            let initiator = built.net.random_peer(&mut rng).expect("nonempty");
            dfdde.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
        });
    });
    let exact = ExactAggregation::new();
    g.bench_function("exact-walk", |b| {
        b.iter(|| {
            let initiator = built.net.random_peer(&mut rng).expect("nonempty");
            exact.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
        });
    });
    g.finish();
}

/// T2: one operating point per method in the cost-to-target search.
fn t2(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_cost_to_target");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(21).stream(Component::Estimator, 0);

    let up = UniformPeerSampling::new(UniformPeerConfig { peers: 64, ..Default::default() });
    g.bench_function("uniform-peer", |b| {
        b.iter(|| {
            let initiator = built.net.random_peer(&mut rng).expect("nonempty");
            up.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
        });
    });
    let gossip = GossipAggregation::new(GossipConfig { rounds: 10, ..Default::default() });
    g.bench_function("gossip-10-rounds", |b| {
        b.iter(|| {
            let initiator = built.net.random_peer(&mut rng).expect("nonempty");
            gossip.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
        });
    });
    g.finish();
}

/// T3: HT vs unweighted on the load-balanced layout.
fn t3(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_bias_ablation");
    g.sample_size(10);
    let scenario = default_scenario(Scale::Quick).with_layout(NodeLayout::LoadBalanced);
    let mut built = build(&scenario);
    let mut rng = SeedSequence::new(22).stream(Component::Estimator, 0);
    for (label, weighting) in
        [("horvitz-thompson", Weighting::HorvitzThompson), ("unweighted", Weighting::Unweighted)]
    {
        let est = DfDde::new(DfDdeConfig { weighting, ..DfDdeConfig::with_probes(128) });
        g.bench_function(label, |b| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// T4: the two probe strategies at the default budget.
fn t4(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_probe_strategy");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(23).stream(Component::Estimator, 0);
    for (label, strategy) in
        [("stratified", ProbeStrategy::Stratified), ("iid", ProbeStrategy::IidUniform)]
    {
        let est = DfDde::new(DfDdeConfig { strategy, ..DfDdeConfig::with_probes(128) });
        g.bench_function(label, |b| {
            b.iter(|| {
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                est.estimate(&mut built.net, initiator, &mut rng).expect("estimates")
            });
        });
    }
    g.finish();
}

/// T5: one aggregate query round.
fn t5(c: &mut Criterion) {
    let mut g = c.benchmark_group("t5_aggregates");
    g.sample_size(10);
    let mut built = build(&default_scenario(Scale::Quick));
    let mut rng = SeedSequence::new(24).stream(Component::Estimator, 0);
    let est = AggregateEstimator::with_probes(128);
    g.bench_function("count_sum_avg_var", |b| {
        b.iter(|| {
            let initiator = built.net.random_peer(&mut rng).expect("nonempty");
            est.query(&mut built.net, initiator, &mut rng).expect("queries")
        });
    });
    g.finish();
}

criterion_group!(tables, t1, t2, t3, t4, t5);
criterion_main!(tables);
