//! # dde-bench
//!
//! The benchmark harness of the ring-DDE reproduction.
//!
//! * The **`expts` binary** regenerates every table and figure of the
//!   (reconstructed) evaluation — `cargo run -p dde-bench --bin expts --release`
//!   prints them all; pass experiment ids (`f1`, `t3`, …) to run a subset,
//!   `--full` for paper-scale sweeps, `--csv <dir>` to also dump CSVs.
//! * The **Criterion benches** (`figures`, `tables`, `micro`) time each
//!   experiment's core operation and the substrate hot paths.
//!
//! Shared fixtures live here so the benches and the binary agree on what
//! each experiment's "core operation" is.

#![warn(missing_docs)]
#![warn(clippy::all)]

use dde_core::{DensityEstimator, DfDde, DfDdeConfig};
use dde_sim::experiments::t1_defaults::{default_probes, default_scenario};
use dde_sim::experiments::Scale;
use dde_sim::{build, BuiltScenario};
use dde_stats::rng::{Component, SeedSequence};
use rand::rngs::StdRng;

/// A reusable benchmark fixture: a built default-scenario network.
pub struct Fixture {
    /// The built scenario.
    pub built: BuiltScenario,
    /// RNG for estimation runs.
    pub rng: StdRng,
}

impl Fixture {
    /// Builds the Quick-scale default fixture.
    pub fn quick() -> Self {
        let scenario = default_scenario(Scale::Quick);
        let built = build(&scenario);
        let rng = SeedSequence::new(scenario.seed).stream(Component::Estimator, 9999);
        Self { built, rng }
    }

    /// One DF-DDE estimate at the default probe budget; returns the KS error
    /// vs the realized data (so benches can assert sanity cheaply).
    pub fn dfdde_once(&mut self) -> f64 {
        let est = DfDde::new(DfDdeConfig::with_probes(default_probes(Scale::Quick)));
        let initiator = self.built.net.random_peer(&mut self.rng).expect("nonempty");
        let report = est
            .estimate(&mut self.built.net, initiator, &mut self.rng)
            .expect("healthy network estimates");
        report.estimate.ks_to(&self.built.data_truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_estimates() {
        let mut fx = Fixture::quick();
        let ks = fx.dfdde_once();
        assert!(ks < 0.3, "ks = {ks}");
    }
}
