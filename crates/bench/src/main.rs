//! `expts` — regenerates the evaluation's tables and figures.
//!
//! ```text
//! expts [IDS...] [--full] [--csv DIR]
//!
//!   IDS      experiment ids to run (t1 f1 f2 f3 f4 f5 f5b f6 f7 f8 t2 t3);
//!            default: all of them
//!   --full   paper-scale sweeps (minutes) instead of quick ones (seconds)
//!   --csv D  additionally write each table as CSV into directory D
//! ```

use dde_sim::experiments::{run_by_id, Scale, ALL_IDS};
use std::path::PathBuf;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--csv" => {
                let Some(dir) = args.next() else {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!("usage: expts [IDS...] [--full] [--csv DIR]");
                eprintln!("known ids: {}", ALL_IDS.join(" "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!("ring-dde experiment suite ({label} scale)\n");

    for id in &ids {
        let Some(tables) = run_by_id(id, scale) else {
            eprintln!("unknown experiment id '{id}' (known: {})", ALL_IDS.join(" "));
            std::process::exit(2);
        };
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_text());
            if let Some(dir) = &csv_dir {
                let file = dir.join(format!("{id}_{i}.csv"));
                if let Err(e) = std::fs::write(&file, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", file.display());
                    std::process::exit(1);
                }
            }
        }
    }
}
