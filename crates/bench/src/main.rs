//! `expts` — regenerates the evaluation's tables and figures.
//!
//! ```text
//! expts [IDS...] [--full] [--csv DIR] [--jobs N]
//!
//!   IDS      experiment ids to run (t1 f1 f2 f3 f4 f5 f5b f6 f7 f8 t2 t3);
//!            default: all of them
//!   --full   paper-scale sweeps (minutes) instead of quick ones (seconds)
//!   --csv D  additionally write each table as CSV into directory D
//!   --jobs N experiment-cell worker threads (default: all cores; output is
//!            byte-identical for every N — see EXPERIMENTS.md "Runner")
//!
//! expts dst [--schedules N] [--events N] [--seed S] [--peers N] [--items N]
//!           [--replication N] [--bug [NAME]] [--out FILE] [--jobs N]
//! expts dst --replay FILE
//!
//!   --bug takes an optional drill name: `skip-successor-on-heal` (default,
//!   the crash-heal membership race) or `drop-capacity-fifo-guard` (the
//!   capacity axis's per-link FIFO clamp dropped).
//!
//!   Deterministic simulation testing (see TESTING.md). The fuzz form runs N
//!   seeded schedules against the invariant oracle; on failure it shrinks to
//!   a minimal reproducer, writes it to FILE (default dst-repro.ron), and
//!   exits 1. The replay form re-runs a repro file and exits 1 iff the
//!   failure reproduces, printing the byte-identical failure report.
//! ```
//!
//! Tables go to **stdout**; progress and timing lines go to **stderr**, so
//! `expts ... > out.txt` produces the same bytes regardless of `--jobs` —
//! the property CI's determinism job diffs.

use dde_sim::dst::{self, DstConfig, InjectedBug};
use dde_sim::exec;
use dde_sim::experiments::{run_by_id, Scale, ALL_IDS};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// With `--features perf-counters` every heap allocation is counted, so the
/// per-experiment stderr lines report real allocation numbers. Off by
/// default: the counter costs two writes per allocation.
#[cfg(feature = "perf-counters")]
#[global_allocator]
static ALLOC: dde_stats::alloc::CountingAlloc = dde_stats::alloc::CountingAlloc;

/// The ", N allocs" suffix for stderr timing lines (empty without the
/// `perf-counters` feature, where the count would always read 0).
#[cfg(feature = "perf-counters")]
fn alloc_note(allocs: u64) -> String {
    format!(", {allocs} allocs")
}

#[cfg(not(feature = "perf-counters"))]
fn alloc_note(_allocs: u64) -> String {
    String::new()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("dst") {
        raw.remove(0);
        dst_main(raw);
        return;
    }

    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--csv" => {
                let Some(dir) = args.next() else {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let jobs = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(jobs) = jobs else {
                    eprintln!("--jobs needs a worker count (0 = all cores)");
                    std::process::exit(2);
                };
                exec::set_jobs(jobs);
            }
            "--help" | "-h" => {
                eprintln!("usage: expts [IDS...] [--full] [--csv DIR] [--jobs N]");
                eprintln!("known ids: {}", ALL_IDS.join(" "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(std::string::ToString::to_string).collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!("ring-dde experiment suite ({label} scale)\n");

    let jobs = exec::jobs();
    // ddelint::allow(wallclock, "timing-only: suite wall-clock goes to the stderr summary, never into a table")
    let suite_start = Instant::now();
    let mut total_cells = 0u64;
    let mut total_cpu = Duration::ZERO;
    let mut total_build = Duration::ZERO;
    let mut total_allocs = 0u64;
    let _ = exec::take_stats(); // start the counters from zero

    for id in &ids {
        // ddelint::allow(wallclock, "timing-only: per-experiment wall-clock goes to the stderr progress line, never into a table")
        let start = Instant::now();
        let Some(tables) = run_by_id(id, scale) else {
            eprintln!("unknown experiment id '{id}' (known: {})", ALL_IDS.join(" "));
            std::process::exit(2);
        };
        let wall = start.elapsed();
        let stats = exec::take_stats();
        total_cells += stats.cells;
        total_cpu += stats.cpu;
        total_build += stats.build;
        total_allocs += stats.allocs;
        eprintln!(
            "[{id}] {} cells in {:.2}s wall, {:.2}s cell time ({:.2}s build{}) (jobs={jobs})",
            stats.cells,
            wall.as_secs_f64(),
            stats.cpu.as_secs_f64(),
            stats.build.as_secs_f64(),
            alloc_note(stats.allocs),
        );
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_text());
            if let Some(dir) = &csv_dir {
                let file = dir.join(format!("{id}_{i}.csv"));
                if let Err(e) = std::fs::write(&file, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", file.display());
                    std::process::exit(1);
                }
            }
        }
    }
    eprintln!(
        "suite: {} experiments, {} cells, {:.2}s wall, {:.2}s cell time ({:.2}s build{}), jobs={jobs}",
        ids.len(),
        total_cells,
        suite_start.elapsed().as_secs_f64(),
        total_cpu.as_secs_f64(),
        total_build.as_secs_f64(),
        alloc_note(total_allocs),
    );
}

/// `expts dst ...`: fuzz schedules against the invariant oracle, or replay a
/// repro file. Exits 1 when a violation is found (fuzz) or reproduced
/// (replay), 2 on usage errors.
fn dst_main(raw: Vec<String>) {
    let mut cfg = DstConfig::default();
    let mut schedules = 16usize;
    let mut replay: Option<PathBuf> = None;
    let mut out = PathBuf::from("dst-repro.ron");

    let mut args = raw.into_iter().peekable();
    while let Some(arg) = args.next() {
        let num = |flag: &str, args: &mut dyn Iterator<Item = String>| -> u64 {
            match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("{flag} needs a numeric argument");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--schedules" => schedules = num("--schedules", &mut args) as usize,
            "--events" => cfg.events = num("--events", &mut args) as usize,
            "--seed" => cfg.seed = num("--seed", &mut args),
            "--peers" => cfg.peers = num("--peers", &mut args) as usize,
            "--items" => cfg.items = num("--items", &mut args) as usize,
            "--replication" => cfg.replication = num("--replication", &mut args) as usize,
            "--jobs" => exec::set_jobs(num("--jobs", &mut args) as usize),
            "--bug" => {
                // The drill name is optional (bare --bug keeps the original
                // membership drill); only consume the next token when it
                // names a bug rather than starting the next flag.
                let named = args.peek().filter(|a| !a.starts_with("--")).cloned();
                cfg.bug = Some(match named.as_deref() {
                    None => InjectedBug::SkipSuccessorOnHeal,
                    Some("skip-successor-on-heal") => {
                        args.next();
                        InjectedBug::SkipSuccessorOnHeal
                    }
                    Some("drop-capacity-fifo-guard") => {
                        args.next();
                        InjectedBug::DropCapacityFifoGuard
                    }
                    Some(other) => {
                        eprintln!(
                            "unknown bug '{other}' (known: skip-successor-on-heal, \
                             drop-capacity-fifo-guard)"
                        );
                        std::process::exit(2);
                    }
                });
            }
            "--replay" => {
                let Some(file) = args.next() else {
                    eprintln!("--replay needs a file argument");
                    std::process::exit(2);
                };
                replay = Some(PathBuf::from(file));
            }
            "--out" => {
                let Some(file) = args.next() else {
                    eprintln!("--out needs a file argument");
                    std::process::exit(2);
                };
                out = PathBuf::from(file);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: expts dst [--schedules N] [--events N] [--seed S] [--peers N] \
                     [--items N] [--replication N] [--bug [NAME]] [--out FILE] [--jobs N]"
                );
                eprintln!("       expts dst --replay FILE");
                return;
            }
            other => {
                eprintln!("unknown dst argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    if let Some(file) = replay {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let schedule = match dst::parse_repro(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        eprintln!(
            "replaying {} ({} events, seed {})",
            file.display(),
            schedule.events.len(),
            schedule.seed
        );
        match dst::run_schedule(&schedule) {
            Ok(report) => {
                println!(
                    "repro did NOT reproduce: {} events ran clean ({} peers, {} items at end)",
                    report.events, report.final_peers, report.final_items
                );
            }
            Err(failure) => {
                print!("{failure}");
                std::process::exit(1);
            }
        }
        return;
    }

    // ddelint::allow(wallclock, "timing-only: fuzz wall-clock goes to the stderr summary; schedules derive from the seed alone")
    let start = Instant::now();
    eprintln!(
        "dst fuzz: {schedules} schedules x {} events (seed {}, peers {}, items {}, \
         replication {}, bug {:?}, jobs {})",
        cfg.events,
        cfg.seed,
        cfg.peers,
        cfg.items,
        cfg.replication,
        cfg.bug,
        exec::jobs(),
    );
    let outcome = dst::fuzz(&cfg, schedules);
    eprintln!("dst fuzz: {} schedules in {:.2}s", outcome.schedules, start.elapsed().as_secs_f64());
    match outcome.failure {
        None => println!("dst: {} schedules, no invariant violations", outcome.schedules),
        Some(found) => {
            println!(
                "dst: schedule {} (seed {}) violated an invariant",
                found.schedule_index, found.schedule.seed
            );
            print!("{}", found.failure);
            println!(
                "shrunk to {} events (from {}):",
                found.shrunk.events.len(),
                found.schedule.events.len()
            );
            print!("{}", found.shrunk_failure);
            let repro = dst::to_repro(&found.shrunk);
            if let Err(e) = std::fs::write(&out, &repro) {
                eprintln!("cannot write {}: {e}", out.display());
            } else {
                println!(
                    "repro written to {} (replay: expts dst --replay {})",
                    out.display(),
                    out.display()
                );
            }
            std::process::exit(1);
        }
    }
}
