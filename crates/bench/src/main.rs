//! `expts` — regenerates the evaluation's tables and figures.
//!
//! ```text
//! expts [IDS...] [--full] [--csv DIR] [--jobs N]
//!
//!   IDS      experiment ids to run (t1 f1 f2 f3 f4 f5 f5b f6 f7 f8 t2 t3);
//!            default: all of them
//!   --full   paper-scale sweeps (minutes) instead of quick ones (seconds)
//!   --csv D  additionally write each table as CSV into directory D
//!   --jobs N experiment-cell worker threads (default: all cores; output is
//!            byte-identical for every N — see EXPERIMENTS.md "Runner")
//! ```
//!
//! Tables go to **stdout**; progress and timing lines go to **stderr**, so
//! `expts ... > out.txt` produces the same bytes regardless of `--jobs` —
//! the property CI's determinism job diffs.

use dde_sim::exec;
use dde_sim::experiments::{run_by_id, Scale, ALL_IDS};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--csv" => {
                let Some(dir) = args.next() else {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let jobs = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(jobs) = jobs else {
                    eprintln!("--jobs needs a worker count (0 = all cores)");
                    std::process::exit(2);
                };
                exec::set_jobs(jobs);
            }
            "--help" | "-h" => {
                eprintln!("usage: expts [IDS...] [--full] [--csv DIR] [--jobs N]");
                eprintln!("known ids: {}", ALL_IDS.join(" "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!("ring-dde experiment suite ({label} scale)\n");

    let jobs = exec::jobs();
    let suite_start = Instant::now();
    let mut total_cells = 0u64;
    let mut total_cpu = Duration::ZERO;
    let _ = exec::take_stats(); // start the counters from zero

    for id in &ids {
        let start = Instant::now();
        let Some(tables) = run_by_id(id, scale) else {
            eprintln!("unknown experiment id '{id}' (known: {})", ALL_IDS.join(" "));
            std::process::exit(2);
        };
        let wall = start.elapsed();
        let stats = exec::take_stats();
        total_cells += stats.cells;
        total_cpu += stats.cpu;
        eprintln!(
            "[{id}] {} cells in {:.2}s wall, {:.2}s cell time (jobs={jobs})",
            stats.cells,
            wall.as_secs_f64(),
            stats.cpu.as_secs_f64(),
        );
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_text());
            if let Some(dir) = &csv_dir {
                let file = dir.join(format!("{id}_{i}.csv"));
                if let Err(e) = std::fs::write(&file, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", file.display());
                    std::process::exit(1);
                }
            }
        }
    }
    eprintln!(
        "suite: {} experiments, {} cells, {:.2}s wall, {:.2}s cell time, jobs={jobs}",
        ids.len(),
        total_cells,
        suite_start.elapsed().as_secs_f64(),
        total_cpu.as_secs_f64(),
    );
}
