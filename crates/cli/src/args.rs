//! Tiny hand-rolled flag parser (keeps the dependency set to the workspace
//! whitelist; the surface is small enough that clap would be overkill).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag`s.
    flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of arguments (exclusive of `argv[0]`).
    ///
    /// Grammar: the first bare word is the subcommand; `--key value` pairs
    /// become options unless `value` starts with `--` or is absent, in which
    /// case `key` is a flag.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag '--'".into());
                }
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.options.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected positional argument '{a}'"));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default; errors on parse failure.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: '{v}'")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Option keys that were never consumed (for typo detection): call with
    /// the known key set after reading everything.
    pub fn unknown_keys<'a>(&'a self, known: &'a [&str]) -> Vec<&'a str> {
        self.options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
            .filter(|k| !known.contains(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_options_flags() {
        let a = parse("estimate --peers 512 --dist zipf --verbose");
        assert_eq!(a.command.as_deref(), Some("estimate"));
        assert_eq!(a.get("peers"), Some("512"));
        assert_eq!(a.get("dist"), Some("zipf"));
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse("estimate --peers 512");
        assert_eq!(a.get_or("peers", 0usize).unwrap(), 512);
        assert_eq!(a.get_or("probes", 64usize).unwrap(), 64);
        assert!(a.get_or::<usize>("peers", 0).is_ok());
        let bad = parse("estimate --peers abc");
        assert!(bad.get_or::<usize>("peers", 0).is_err());
    }

    #[test]
    fn flag_before_option() {
        let a = parse("churn --json --rate 0.1");
        assert!(a.has_flag("json"));
        assert_eq!(a.get("rate"), Some("0.1"));
    }

    #[test]
    fn rejects_stray_positionals() {
        assert!(Args::parse(["estimate".into(), "extra".into()]).is_err());
    }

    #[test]
    fn unknown_key_detection() {
        let a = parse("estimate --peers 1 --tyop 2");
        let unknown = a.unknown_keys(&["peers", "probes"]);
        assert_eq!(unknown, vec!["tyop"]);
    }
}
