//! Subcommand implementations.

use crate::args::Args;
use crate::json::Json;
use dde_core::{
    AggregateEstimator, DensityEstimator, DfDde, DfDdeConfig, ExactAggregation, GossipAggregation,
    GossipConfig, UniformPeerConfig, UniformPeerSampling,
};
use dde_ring::{ChurnConfig, ChurnProcess};
use dde_sim::{build, run_workload, BuiltScenario, OpMix, PlacementMode, Scenario, WorkloadSpec};
use dde_stats::dist::DistributionKind;
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;
use rand::rngs::StdRng;

/// Usage text shared by `help` and error paths.
pub const USAGE: &str = "\
ring-dde — distribution-free data density estimation playground

commands:
  estimate   estimate the global density and print quantiles + accuracy
  aggregate  estimate COUNT / SUM / AVG / VAR from one probe round
  query      plan + execute a range query
  churn      stress the network with churn, report survival & healing
  workload   serve an open-loop insert/lookup/estimate mix, report latency
  topology   print ring statistics (arcs, load, hops)
  help       this text

common options:
  --peers P        number of peers            (default 256)
  --items N        number of items            (default 50000)
  --dist D         uniform|normal|exponential|pareto|zipf|bimodal|trimodal|lognormal
                                              (default zipf)
  --seed S         master seed                (default 42)
  --probes K       probe budget               (default 128)
  --buckets B      summary buckets            (default 8)
  --placement M    range|hashed               (default range)
  --loss L         injected message-loss probability, reply loss L/2 (default 0)
  --fault-seed S   fault-plan seed            (default seed ^ 0xFA17)
  --json           machine-readable output (estimate/aggregate)

command-specific:
  query:   --lo X --hi Y    range bounds (default 100..300)
  churn:   --rate R         churn rate/peer/unit (default 0.1)
           --duration T     time units (default 10)
           --replication R  replication factor (default 0)
  workload: --rate R        target arrival rate, ops/s (default 200)
           --duration T     virtual seconds of traffic (default 10)
           --insert-pm M    insert share, per mille (default 200)
           --lookup-pm M    lookup share, per mille (default 700;
                            the remainder is estimate reads)
           --refresh T      seconds between estimate refreshes (default 2)
           --no-batch       route each lookup separately
           --no-piggyback   dedicated probes only";

fn dist_of(name: &str) -> Result<DistributionKind, String> {
    Ok(match name {
        "uniform" => DistributionKind::Uniform,
        "normal" => DistributionKind::Normal { center_frac: 0.5, std_frac: 0.12 },
        "exponential" => DistributionKind::Exponential { rate_scale: 8.0 },
        "pareto" => DistributionKind::Pareto { shape: 1.2 },
        "zipf" => DistributionKind::Zipf { cells: 64, exponent: 1.1 },
        "bimodal" => DistributionKind::Bimodal,
        "trimodal" => DistributionKind::Trimodal,
        "lognormal" => DistributionKind::LogNormal { sigma: 0.8 },
        other => return Err(format!("unknown distribution '{other}'")),
    })
}

fn scenario_of(args: &Args) -> Result<Scenario, String> {
    let placement = match args.get("placement").unwrap_or("range") {
        "range" => PlacementMode::Range,
        "hashed" => PlacementMode::Hashed,
        other => return Err(format!("unknown placement '{other}'")),
    };
    Ok(Scenario::default()
        .with_peers(args.get_or("peers", 256usize)?)
        .with_items(args.get_or("items", 50_000usize)?)
        .with_distribution(dist_of(args.get("dist").unwrap_or("zipf"))?)
        .with_summary_buckets(args.get_or("buckets", 8usize)?)
        .with_placement(placement)
        .with_seed(args.get_or("seed", 42u64)?))
}

fn setup(args: &Args) -> Result<(BuiltScenario, StdRng, dde_ring::RingId), String> {
    let scenario = scenario_of(args)?;
    let mut built = build(&scenario);
    let loss = args.get_or("loss", 0.0f64)?;
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss must be in [0, 1], got {loss}"));
    }
    if loss > 0.0 {
        let fault_seed = args.get_or("fault-seed", scenario.seed ^ 0xFA17)?;
        built.net.set_fault_plan(
            dde_ring::FaultPlan::new(fault_seed).with_loss(loss).with_reply_loss(loss / 2.0),
        );
    }
    let mut rng = SeedSequence::new(scenario.seed).stream(Component::Estimator, 0);
    let initiator = built.net.random_peer(&mut rng).ok_or("empty network")?;
    Ok((built, rng, initiator))
}

/// `ring-dde estimate`
pub fn estimate(args: &Args) -> Result<(), String> {
    let probes = args.get_or("probes", 128usize)?;
    let (mut built, mut rng, initiator) = setup(args)?;
    let method = args.get("method").unwrap_or("df-dde");
    let estimator: Box<dyn DensityEstimator> = match method {
        "df-dde" => Box::new(DfDde::new(DfDdeConfig::with_probes(probes))),
        "exact" => Box::new(ExactAggregation::new()),
        "uniform-peer" => Box::new(UniformPeerSampling::new(UniformPeerConfig {
            peers: probes,
            ..UniformPeerConfig::default()
        })),
        "gossip" => Box::new(GossipAggregation::new(GossipConfig::default())),
        other => return Err(format!("unknown method '{other}'")),
    };
    let report =
        estimator.estimate(&mut built.net, initiator, &mut rng).map_err(|e| e.to_string())?;
    let ks_gen = report.estimate.ks_to(built.truth.as_ref());
    let ks_data = report.estimate.ks_to(&built.data_truth);

    if args.has_flag("json") {
        let quantiles: Vec<Json> = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| Json::Arr(vec![q.into(), report.estimate.quantile(q).into()]))
            .collect();
        let out = Json::obj(vec![
            ("method", estimator.name().into()),
            ("peers", built.net.len().into()),
            ("items", built.net.total_items().into()),
            ("messages", report.messages().into()),
            ("bytes", report.bytes().into()),
            ("peers_contacted", report.peers_contacted.into()),
            ("probes_requested", report.probes_requested.into()),
            ("probes_succeeded", report.probes_succeeded.into()),
            ("faults_injected", report.cost.total_faults().into()),
            ("n_hat", report.estimated_total.into()),
            ("ks_vs_generator", ks_gen.into()),
            ("ks_vs_data", ks_data.into()),
            ("mean", report.estimate.mean().into()),
            ("std_dev", report.estimate.std_dev().into()),
            ("entropy", report.estimate.entropy().into()),
            ("mode", report.estimate.mode().into()),
            ("quantiles", Json::Arr(quantiles)),
        ]);
        println!("{}", out.pretty());
        return Ok(());
    }

    println!(
        "{} on {} peers / {} items: {} messages, {:.1} KB, {} peers contacted",
        estimator.name(),
        built.net.len(),
        built.net.total_items(),
        report.messages(),
        report.bytes() as f64 / 1024.0,
        report.peers_contacted
    );
    let faults = report.cost.total_faults();
    if faults > 0 || report.probes_succeeded < report.probes_requested {
        println!(
            "faults: {faults} injected, {}/{} probes succeeded",
            report.probes_succeeded, report.probes_requested
        );
    }
    if let Some(n) = report.estimated_total {
        println!("estimated item count: {n:.0}");
    }
    println!(
        "moments: mean {:.2}, std {:.2}, mode {:.2}, entropy {:.3} nats",
        report.estimate.mean(),
        report.estimate.std_dev(),
        report.estimate.mode(),
        report.estimate.entropy()
    );
    println!("quantiles:");
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        println!("  q={q:<5} {:>12.3}", report.estimate.quantile(q));
    }
    println!("accuracy: KS vs generator {ks_gen:.4}, vs realized data {ks_data:.4}");
    Ok(())
}

/// `ring-dde aggregate`
pub fn aggregate(args: &Args) -> Result<(), String> {
    let probes = args.get_or("probes", 128usize)?;
    let (mut built, mut rng, initiator) = setup(args)?;
    let rep = AggregateEstimator::with_probes(probes)
        .query(&mut built.net, initiator, &mut rng)
        .map_err(|e| e.to_string())?;

    // Exact references for context.
    let vals = built.net.global_values();
    let n = vals.len() as f64;
    let sum: f64 = vals.iter().sum();
    let mean = sum / n;
    let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;

    if args.has_flag("json") {
        let out = Json::obj(vec![
            (
                "estimated",
                Json::obj(vec![
                    ("count", rep.count.into()),
                    ("sum", rep.sum.into()),
                    ("mean", rep.mean.into()),
                    ("variance", rep.variance.into()),
                    ("std_dev", rep.std_dev().into()),
                ]),
            ),
            (
                "exact",
                Json::obj(vec![
                    ("count", n.into()),
                    ("sum", sum.into()),
                    ("mean", mean.into()),
                    ("variance", var.into()),
                ]),
            ),
            ("messages", rep.cost.total_messages().into()),
            ("probes_used", rep.probes_used.into()),
        ]);
        println!("{}", out.pretty());
        return Ok(());
    }
    println!(
        "aggregate estimates from {} probes ({} messages):",
        rep.probes_used,
        rep.cost.total_messages()
    );
    println!("  COUNT {:>14.0}   (exact {:>14.0})", rep.count, n);
    println!("  SUM   {:>14.0}   (exact {:>14.0})", rep.sum, sum);
    println!("  AVG   {:>14.3}   (exact {:>14.3})", rep.mean, mean);
    println!("  VAR   {:>14.1}   (exact {:>14.1})", rep.variance, var);
    Ok(())
}

/// `ring-dde query`
pub fn query(args: &Args) -> Result<(), String> {
    let probes = args.get_or("probes", 128usize)?;
    let lo = args.get_or("lo", 100.0f64)?;
    let hi = args.get_or("hi", 300.0f64)?;
    let (mut built, mut rng, initiator) = setup(args)?;
    let report = DfDde::new(DfDdeConfig::with_probes(probes))
        .estimate(&mut built.net, initiator, &mut rng)
        .map_err(|e| e.to_string())?;
    let predicted = report.estimate.selectivity(lo, hi) * built.net.total_items() as f64;
    let before = built.net.stats().clone();
    let result = built.net.range_query(initiator, lo, hi).map_err(|e| e.to_string())?;
    let cost = built.net.stats().since(&before);
    println!(
        "range [{lo}, {hi}]: predicted {predicted:.0} rows, actual {} \
         ({} peers scanned, {} routing hops, {} messages, {:.1} KB)",
        result.items.len(),
        result.peers_visited,
        result.routing_hops,
        cost.total_messages(),
        cost.total_bytes() as f64 / 1024.0,
    );
    Ok(())
}

/// `ring-dde churn`
pub fn churn(args: &Args) -> Result<(), String> {
    let rate = args.get_or("rate", 0.1f64)?;
    let duration = args.get_or("duration", 10.0f64)?;
    let replication = args.get_or("replication", 0usize)?;
    let (mut built, mut rng, _) = setup(args)?;
    built.net.set_replication(replication);

    let peers_before = built.net.len();
    let items_before = built.net.total_items();
    let seq = SeedSequence::new(built.scenario.seed ^ 0xC11);
    let mut churn_rng = seq.stream(Component::Churn, 0);
    let mut process = ChurnProcess::new(ChurnConfig::symmetric(rate, 0.5));
    let outcome = process.run(&mut built.net, duration, &mut churn_rng);
    for _ in 0..8 {
        built.net.stabilize_round();
    }
    let violations = built.net.check_invariants();

    println!("churn {rate}/peer/unit for {duration} units (replication {replication}):");
    println!(
        "  events: {} joins, {} leaves, {} crashes, {} stabilize rounds",
        outcome.joins, outcome.leaves, outcome.fails, outcome.stabilize_rounds
    );
    println!("  peers: {peers_before} -> {}", built.net.len());
    println!(
        "  items: {items_before} -> {} ({:.1}% survived)",
        built.net.total_items(),
        built.net.total_items() as f64 / items_before as f64 * 100.0
    );
    println!("  ring consistency after settling: {} violations", violations.len());
    // Estimation still works on the survivor.
    let initiator = built.net.random_peer(&mut rng).ok_or("network emptied out")?;
    let report = DfDde::new(DfDdeConfig::with_probes(96))
        .estimate(&mut built.net, initiator, &mut rng)
        .map_err(|e| e.to_string())?;
    let surviving = Ecdf::new(built.net.global_values());
    println!(
        "  post-churn estimate: KS vs surviving data {:.4} ({} messages)",
        report.estimate.ks_to(&surviving),
        report.messages()
    );
    Ok(())
}

/// `ring-dde workload`
pub fn workload(args: &Args) -> Result<(), String> {
    let insert_pm = args.get_or("insert-pm", 200u16)?;
    let lookup_pm = args.get_or("lookup-pm", 700u16)?;
    if usize::from(insert_pm) + usize::from(lookup_pm) > 1000 {
        return Err(format!("--insert-pm {insert_pm} + --lookup-pm {lookup_pm} exceeds 1000‰"));
    }
    let spec = WorkloadSpec {
        rate: args.get_or("rate", 200.0f64)?,
        duration: args.get_or("duration", 10.0f64)?,
        mix: OpMix::new(insert_pm, lookup_pm),
        probes: args.get_or("probes", 48usize)?,
        refresh_interval: args.get_or("refresh", 2.0f64)?,
        batch: !args.has_flag("no-batch"),
        piggyback: !args.has_flag("no-piggyback"),
        ..WorkloadSpec::default()
    };
    if spec.rate <= 0.0 || spec.duration <= 0.0 || spec.refresh_interval <= 0.0 {
        return Err("--rate, --duration and --refresh must be positive".into());
    }
    let (built, _, _) = setup(args)?;
    let report = run_workload(&built, &spec, 0);

    if args.has_flag("json") {
        let out = Json::obj(vec![
            ("rate", spec.rate.into()),
            ("duration", spec.duration.into()),
            ("insert_pm", u64::from(insert_pm).into()),
            ("lookup_pm", u64::from(lookup_pm).into()),
            ("estimate_pm", u64::from(spec.mix.estimate_pm()).into()),
            ("batch", if spec.batch { 1u64 } else { 0 }.into()),
            ("piggyback", if spec.piggyback { 1u64 } else { 0 }.into()),
            ("ops_scheduled", report.ops_scheduled.into()),
            ("ops_completed", report.ops_completed.into()),
            ("ops_failed", report.ops_failed.into()),
            ("throughput", report.throughput.into()),
            ("hop_p50", report.hop_p50.into()),
            ("hop_p95", report.hop_p95.into()),
            ("hop_p99", report.hop_p99.into()),
            ("refreshes", report.refreshes.into()),
            ("refresh_failures", report.refresh_failures.into()),
            ("piggybacked", report.piggybacked.into()),
            ("dedicated_probes", report.dedicated_probes.into()),
            ("piggyback_msgs", report.piggyback_msgs.into()),
            ("lookup_hop_msgs", report.lookup_hop_msgs.into()),
            ("messages", report.messages.into()),
            ("bytes", report.bytes.into()),
            ("mean_staleness", report.mean_staleness.into()),
            ("est_ks", report.est_ks.into()),
        ]);
        println!("{}", out.pretty());
        return Ok(());
    }

    println!(
        "workload {} ops/s for {}s on {} peers ({}‰ insert / {}‰ lookup / {}‰ estimate, \
         batch {}, piggyback {}):",
        spec.rate,
        spec.duration,
        built.net.len(),
        insert_pm,
        lookup_pm,
        spec.mix.estimate_pm(),
        if spec.batch { "on" } else { "off" },
        if spec.piggyback { "on" } else { "off" },
    );
    println!(
        "  ops: {} scheduled, {} completed, {} failed ({} inserts, {} lookups, {} reads)",
        report.ops_scheduled,
        report.ops_completed,
        report.ops_failed,
        report.inserts,
        report.lookups,
        report.estimate_reads
    );
    println!(
        "  throughput: {:.1} ops/s; hop latency p50 {:.1}, p95 {:.1}, p99 {:.1}",
        report.throughput, report.hop_p50, report.hop_p95, report.hop_p99
    );
    println!(
        "  probes: {} refreshes ({} failed), {} points piggybacked, \
         {} dedicated probe msgs, {} piggyback msgs",
        report.refreshes,
        report.refresh_failures,
        report.piggybacked,
        report.dedicated_probes,
        report.piggyback_msgs
    );
    println!(
        "  cost: {} messages, {:.1} KB ({} lookup-hop msgs)",
        report.messages,
        report.bytes as f64 / 1024.0,
        report.lookup_hop_msgs
    );
    println!(
        "  estimate: mean staleness {:.2}s, final KS vs live data {:.4}",
        report.mean_staleness, report.est_ks
    );
    Ok(())
}

/// `ring-dde topology`
pub fn topology(args: &Args) -> Result<(), String> {
    let (mut built, mut rng, _) = setup(args)?;
    let net = &built.net;
    let loads: Vec<usize> = net.ids().map(|id| net.node(id).expect("alive").store.len()).collect();
    let arcs: Vec<f64> =
        net.ids().filter_map(|id| net.node(id).expect("alive").arc_fraction()).collect();
    let mean_load = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    let max_load = *loads.iter().max().expect("nonempty");
    let gini = gini(&loads.iter().map(|&l| l as f64).collect::<Vec<_>>());

    println!("topology: {} peers, {} items", net.len(), net.total_items());
    println!(
        "  load: mean {mean_load:.1}, max {max_load} ({:.1}x mean), gini {gini:.3}",
        max_load as f64 / mean_load
    );
    println!(
        "  arcs: min {:.2e}, max {:.2e} (of the ring)",
        arcs.iter().cloned().fold(f64::INFINITY, f64::min),
        arcs.iter().cloned().fold(0.0, f64::max)
    );
    // Hop census.
    let from = built.net.random_peer(&mut rng).ok_or("empty")?;
    let mut hops = 0u64;
    let lookups = 200;
    for _ in 0..lookups {
        use rand::Rng;
        let t = dde_ring::RingId(rng.gen());
        hops += u64::from(built.net.lookup(from, t).map_err(|e| e.to_string())?.hops);
    }
    println!(
        "  routing: {:.2} mean hops over {lookups} lookups (log2 P = {:.1})",
        hops as f64 / f64::from(lookups),
        (built.net.len() as f64).log2()
    );
    Ok(())
}

/// Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated).
fn gini(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x).sum();
    weighted / (n * total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        // One peer holds everything: gini → (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.75).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn dist_names_resolve() {
        for d in [
            "uniform",
            "normal",
            "exponential",
            "pareto",
            "zipf",
            "bimodal",
            "trimodal",
            "lognormal",
        ] {
            assert!(dist_of(d).is_ok(), "{d}");
        }
        assert!(dist_of("cauchy").is_err());
    }

    #[test]
    fn scenario_from_args() {
        let args = crate::args::Args::parse(
            "estimate --peers 32 --items 1000 --dist uniform --seed 7"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let s = scenario_of(&args).unwrap();
        assert_eq!(s.peers, 32);
        assert_eq!(s.items, 1000);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn estimate_command_runs() {
        let args = crate::args::Args::parse(
            "estimate --peers 48 --items 2000 --probes 32 --json"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        estimate(&args).unwrap();
    }

    #[test]
    fn estimate_command_runs_under_faults() {
        let args = crate::args::Args::parse(
            "estimate --peers 48 --items 2000 --probes 32 --loss 0.2 --fault-seed 9 --json"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        estimate(&args).unwrap();
        let args =
            crate::args::Args::parse("estimate --loss 1.5".split_whitespace().map(String::from))
                .unwrap();
        assert!(estimate(&args).is_err());
    }

    #[test]
    fn aggregate_and_query_commands_run() {
        let args = crate::args::Args::parse(
            "aggregate --peers 48 --items 2000 --probes 32".split_whitespace().map(String::from),
        )
        .unwrap();
        aggregate(&args).unwrap();
        let args = crate::args::Args::parse(
            "query --peers 48 --items 2000 --probes 32 --lo 10 --hi 50"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        query(&args).unwrap();
    }

    #[test]
    fn churn_and_topology_commands_run() {
        let args = crate::args::Args::parse(
            "churn --peers 48 --items 2000 --rate 0.2 --duration 3 --replication 1"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        churn(&args).unwrap();
        let args = crate::args::Args::parse(
            "topology --peers 48 --items 2000".split_whitespace().map(String::from),
        )
        .unwrap();
        topology(&args).unwrap();
    }
}
