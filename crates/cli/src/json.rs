//! Minimal JSON emission for `--json` output (the workspace builds offline,
//! so there is no serde_json; the CLI only ever *writes* JSON, and only from
//! a handful of shapes, so a tiny builder suffices).

use std::fmt::Write as _;

/// A JSON value assembled by hand.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (NaN/infinities serialize as `null`, like serde_json).
    Num(f64),
    /// A string.
    Str(String),
    /// `null`.
    Null,
    /// An ordered object.
    Obj(Vec<(&'static str, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&'static str, Json)>) -> Self {
        Json::Obj(pairs)
    }

    /// Renders with 2-space indentation (matches `to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0".
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Null => out.push_str("null"),
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{k}\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{close_pad}}}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{close_pad}]");
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<Option<f64>> for Json {
    fn from(x: Option<f64>) -> Self {
        x.map_or(Json::Null, Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", "df-dde".into()),
            ("ks", 0.0123.into()),
            ("n_hat", Json::from(None::<f64>)),
            ("pairs", Json::Arr(vec![Json::Arr(vec![0.5.into(), 512.0.into()])])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"df-dde\""));
        assert!(s.contains("\"ks\": 0.0123"));
        assert!(s.contains("\"n_hat\": null"));
        assert!(s.contains("512"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(3.5).pretty(), "3.5");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
    }
}
