//! `ring-dde` — command-line playground for the ring-DDE library.
//!
//! ```text
//! ring-dde estimate  [--peers P] [--items N] [--dist D] [--probes K]
//!                    [--buckets B] [--seed S] [--placement range|hashed]
//!                    [--loss L] [--fault-seed S]
//!                    [--method df-dde|exact|uniform-peer|gossip] [--json]
//! ring-dde aggregate [--peers P] [--items N] [--dist D] [--probes K] [--seed S]
//! ring-dde query     [--peers P] [--items N] [--dist D] [--lo X] [--hi Y] [--seed S]
//! ring-dde churn     [--peers P] [--items N] [--rate R] [--duration T]
//!                    [--replication REPL] [--seed S]
//! ring-dde workload  [--peers P] [--items N] [--dist D] [--seed S] [--rate R]
//!                    [--duration T] [--insert-pm M] [--lookup-pm M]
//!                    [--probes K] [--refresh T] [--no-batch] [--no-piggyback]
//!                    [--loss L] [--json]
//! ring-dde topology  [--peers P] [--items N] [--dist D] [--seed S]
//! ```
//!
//! Distributions: uniform, normal, exponential, pareto, zipf, bimodal,
//! trimodal, lognormal.

mod args;
mod commands;
mod json;

use args::Args;

fn main() {
    // Typo guard: warn about options no command reads.
    const KNOWN: &[&str] = &[
        "peers",
        "items",
        "dist",
        "seed",
        "probes",
        "buckets",
        "placement",
        "method",
        "json",
        "lo",
        "hi",
        "rate",
        "duration",
        "replication",
        "loss",
        "fault-seed",
        "insert-pm",
        "lookup-pm",
        "refresh",
        "no-batch",
        "no-piggyback",
    ];

    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let Some(command) = parsed.command.clone() else {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    };
    for key in parsed.unknown_keys(KNOWN) {
        eprintln!("warning: ignoring unknown option --{key}");
    }
    let result = match command.as_str() {
        "estimate" => commands::estimate(&parsed),
        "aggregate" => commands::aggregate(&parsed),
        "query" => commands::query(&parsed),
        "churn" => commands::churn(&parsed),
        "workload" => commands::workload(&parsed),
        "topology" => commands::topology(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
