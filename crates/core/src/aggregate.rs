//! Global aggregate queries over the same probe machinery — the "query
//! processing" application family: COUNT, SUM, AVG, VAR(/STD), and
//! range-restricted COUNT, all estimated from one round of `k` probes.
//!
//! The same Hansen–Hurwitz/Horvitz–Thompson argument that makes the CDF
//! skeleton unbiased (see [`crate::skeleton`]) applies verbatim to any
//! per-peer additive quantity: probe replies carry `(n, Σx, Σx²)`, so
//!
//! ```text
//!   N̂  = (1/k)·Σⱼ nⱼ/sⱼ          ŜUM = (1/k)·Σⱼ sumⱼ/sⱼ
//!   ÂVG = ŜUM / N̂                 V̂AR = ŜQ/N̂ − ÂVG²
//! ```
//!
//! are all distribution-free. Range COUNT comes from the CDF skeleton:
//! `N̂·(F̂(hi) − F̂(lo))`.

use crate::dfdde::{DfDde, DfDdeConfig};
use crate::estimator::{with_cost, EstimateError};
use crate::skeleton::{CdfSkeleton, Weighting};
use dde_ring::{MessageStats, Network, ProbeReply, RingId};
use dde_stats::CdfFn as _;
use rand::rngs::StdRng;

/// Estimated global aggregates, with exact cost attribution.
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// Estimated global item count.
    pub count: f64,
    /// Estimated global sum.
    pub sum: f64,
    /// Estimated global mean (`sum/count`).
    pub mean: f64,
    /// Estimated global (population) variance; clamped at 0.
    pub variance: f64,
    /// The CDF skeleton (for range counts and quantiles).
    skeleton: CdfSkeleton,
    /// Message cost of this query.
    pub cost: MessageStats,
    /// Probes used.
    pub probes_used: usize,
}

impl AggregateReport {
    /// Estimated global standard deviation.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Estimated number of items in `[lo, hi]`.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn range_count(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        self.count * (self.skeleton.cdf.cdf(hi) - self.skeleton.cdf.cdf(lo)).max(0.0)
    }

    /// Estimated `q`-quantile of the global data.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn quantile(&self, q: f64) -> f64 {
        self.skeleton.cdf.inv_cdf(q)
    }
}

/// Aggregate-query estimator: one probe round answers COUNT/SUM/AVG/VAR and
/// any number of range counts.
#[derive(Debug, Clone)]
pub struct AggregateEstimator {
    config: DfDdeConfig,
}

impl AggregateEstimator {
    /// Creates the estimator with `k` probes (HT weighting, stratified).
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn with_probes(probes: usize) -> Self {
        Self { config: DfDdeConfig::with_probes(probes) }
    }

    /// Creates from a full DF-DDE configuration.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: DfDdeConfig) -> Self {
        Self { config }
    }

    /// Runs the aggregate query from `initiator`.
    ///
    /// Determinism: draws randomness only from the caller-supplied RNG stream; identical inputs and RNG state produce identical output.
    pub fn query(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<AggregateReport, EstimateError> {
        let domain = net.placement().domain();
        let prober = DfDde::new(self.config);
        let (replies, cost) = with_cost(net, |net| prober.run_probes(net, initiator, rng))?;
        let agg = estimate_aggregates(&replies, self.config.weighting)
            .ok_or(EstimateError::InsufficientProbes { got: replies.len(), need: 2 })?;
        let skeleton = CdfSkeleton::from_probes(
            &replies,
            domain,
            self.config.support_cap,
            self.config.weighting,
        )
        .ok_or(EstimateError::InsufficientProbes { got: replies.len(), need: 2 })?;
        Ok(AggregateReport {
            count: agg.0,
            sum: agg.1,
            mean: agg.2,
            variance: agg.3,
            probes_used: skeleton.probes_used,
            skeleton,
            cost,
        })
    }
}

/// The HT aggregate arithmetic on raw replies:
/// `(count, sum, mean, variance)`, or `None` with <2 usable replies.
///
/// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
pub fn estimate_aggregates(
    replies: &[ProbeReply],
    weighting: Weighting,
) -> Option<(f64, f64, f64, f64)> {
    let usable: Vec<(&ProbeReply, f64)> = replies
        .iter()
        .filter_map(|r| {
            let pred = r.predecessor?;
            let s = r.peer.arc_fraction_from(pred);
            (s > 0.0).then_some((r, s))
        })
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let k = usable.len() as f64;
    let weight = |s: f64| match weighting {
        Weighting::HorvitzThompson => 1.0 / s,
        Weighting::Unweighted => 1.0,
    };
    let n: f64 = usable.iter().map(|(r, s)| r.count as f64 * weight(*s)).sum::<f64>() / k;
    if n <= 0.0 {
        return None;
    }
    let sum: f64 = usable.iter().map(|(r, s)| r.sum * weight(*s)).sum::<f64>() / k;
    let sum_sq: f64 = usable.iter().map(|(r, s)| r.sum_sq * weight(*s)).sum::<f64>() / k;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    Some((n, sum, mean, variance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::Placement;
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::{Rng, SeedableRng};

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    fn exact_aggregates(net: &Network) -> (f64, f64, f64, f64) {
        let vals = net.global_values();
        let n = vals.len() as f64;
        let sum: f64 = vals.iter().sum();
        let mean = sum / n;
        let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (n, sum, mean, var)
    }

    #[test]
    fn aggregates_match_exact_within_tolerance() {
        let kind = DistributionKind::Normal { center_frac: 0.6, std_frac: 0.15 };
        let mut net = build_net(256, 40_000, &kind, 71);
        let (n, sum, mean, var) = exact_aggregates(&net);
        let mut rng = StdRng::seed_from_u64(1);
        let initiator = net.random_peer(&mut rng).unwrap();
        let rep =
            AggregateEstimator::with_probes(128).query(&mut net, initiator, &mut rng).unwrap();
        assert!((rep.count - n).abs() / n < 0.1, "count {} vs {n}", rep.count);
        assert!((rep.sum - sum).abs() / sum < 0.1, "sum {} vs {sum}", rep.sum);
        assert!((rep.mean - mean).abs() / mean < 0.05, "mean {} vs {mean}", rep.mean);
        assert!((rep.variance - var).abs() / var < 0.25, "var {} vs {var}", rep.variance);
        assert!(rep.std_dev() > 0.0);
    }

    #[test]
    fn range_count_tracks_truth() {
        let kind = DistributionKind::Zipf { cells: 32, exponent: 1.0 };
        let mut net = build_net(256, 40_000, &kind, 73);
        let mut rng = StdRng::seed_from_u64(2);
        let initiator = net.random_peer(&mut rng).unwrap();
        let rep =
            AggregateEstimator::with_probes(160).query(&mut net, initiator, &mut rng).unwrap();
        for (lo, hi) in [(0.0, 10.0), (20.0, 50.0), (90.0, 100.0)] {
            let exact: usize = net
                .ids()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|id| net.node(id).unwrap().store.count_range(lo, hi))
                .sum();
            let est = rep.range_count(lo, hi);
            let err = (est - exact as f64).abs() / 40_000.0;
            assert!(err < 0.08, "[{lo},{hi}]: est {est:.0} vs {exact} (err {err:.3})");
        }
        assert_eq!(rep.range_count(5.0, 1.0), 0.0);
    }

    #[test]
    fn mean_is_distribution_free() {
        // The mean estimate stays accurate across skews at fixed cost.
        for kind in [
            DistributionKind::Uniform,
            DistributionKind::Exponential { rate_scale: 8.0 },
            DistributionKind::Bimodal,
        ] {
            let mut net = build_net(192, 20_000, &kind, 79);
            let (_, _, mean, _) = exact_aggregates(&net);
            let mut rng = StdRng::seed_from_u64(3);
            let initiator = net.random_peer(&mut rng).unwrap();
            let rep =
                AggregateEstimator::with_probes(128).query(&mut net, initiator, &mut rng).unwrap();
            assert!(
                (rep.mean - mean).abs() / mean.abs().max(1.0) < 0.1,
                "{}: mean {} vs {mean}",
                kind.label(),
                rep.mean
            );
        }
    }

    #[test]
    fn too_few_probes_error() {
        let mut net = build_net(8, 100, &DistributionKind::Uniform, 83);
        let mut rng = StdRng::seed_from_u64(4);
        let initiator = net.random_peer(&mut rng).unwrap();
        // probes = 0 → no replies → insufficient.
        let est = AggregateEstimator::new(DfDdeConfig { probes: 0, ..DfDdeConfig::default() });
        assert!(matches!(
            est.query(&mut net, initiator, &mut rng),
            Err(EstimateError::InsufficientProbes { .. })
        ));
    }

    #[test]
    fn raw_arithmetic_on_synthetic_replies() {
        // Two half-ring peers: counts 10 & 30, sums 100 & 900.
        use dde_stats::equidepth::EquiDepthSummary;
        let h = u64::MAX / 2;
        let mk = |peer: u64, pred: u64, count: u64, sum: f64, sum_sq: f64| ProbeReply {
            peer: RingId(peer),
            predecessor: Some(RingId(pred)),
            count,
            sum,
            sum_sq,
            summary: EquiDepthSummary::from_sorted(&[1.0], 1),
            hops: 0,
        };
        let replies =
            vec![mk(h, u64::MAX, 10, 100.0, 1_100.0), mk(u64::MAX, h, 30, 900.0, 28_000.0)];
        let (n, sum, mean, var) =
            estimate_aggregates(&replies, Weighting::HorvitzThompson).unwrap();
        // Each arc fraction is 1/2 → weights 2; k = 2.
        assert!((n - 40.0).abs() < 1e-9);
        assert!((sum - 1000.0).abs() < 1e-9);
        assert!((mean - 25.0).abs() < 1e-9);
        // E[X²] = 29100/40 = 727.5; var = 727.5 - 625 = 102.5.
        assert!((var - 102.5).abs() < 1e-9);
    }
}
