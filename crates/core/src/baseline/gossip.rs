//! Push-Sum gossip aggregation (Kempe, Dobra & Gehrke, FOCS 2003) over
//! histograms.
//!
//! Every peer starts with `(value = its local histogram, weight = 1)`. Each
//! synchronous round, every peer splits its pair in half, keeps one half, and
//! sends the other to a random overlay neighbor. The ratio `value/weight`
//! converges exponentially to the global average histogram at **every** peer
//! — i.e. to the exact global distribution — but a single estimate costs
//! `rounds × P` messages, each carrying a histogram. This is the
//! "aggregate everything" end of the cost spectrum the paper's probing
//! estimator is positioned against.

use crate::estimate::DensityEstimate;
use crate::estimator::{with_cost, DensityEstimator, EstimateError, EstimationReport};
use dde_ring::{MessageKind, Network, RingId};
use dde_stats::{CdfFn, Histogram, PiecewiseCdf};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration for [`GossipAggregation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Synchronous gossip rounds. Push-Sum's relative error decays like
    /// `e^(-Θ(rounds))`; `2·log2(P) + 10` is comfortably converged.
    pub rounds: usize,
    /// Histogram bins gossiped.
    pub bins: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self { rounds: 30, bins: 64 }
    }
}

/// Push-Sum gossip estimator (see module docs).
#[derive(Debug, Clone)]
pub struct GossipAggregation {
    config: GossipConfig,
}

impl GossipAggregation {
    /// Creates the estimator.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: GossipConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }
}

impl DensityEstimator for GossipAggregation {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError> {
        if !net.is_alive(initiator) {
            return Err(EstimateError::InitiatorDead);
        }
        let (lo, hi) = net.placement().domain();
        let bins = self.config.bins;
        let rounds = self.config.rounds;
        let ((hist, weight), cost) = with_cost(net, |net| {
            // Per-peer Push-Sum state.
            let ids: Vec<RingId> = net.ids().collect();
            let mut state: BTreeMap<RingId, (Histogram, f64)> = ids
                .iter()
                .map(|&id| {
                    let node = net.node(id).expect("alive");
                    let mut h = Histogram::new(lo, hi, bins);
                    for &x in node.store.values() {
                        h.add(x, 1.0);
                    }
                    // Sum variant of Push-Sum: only the initiator carries
                    // weight, so value/weight converges to the global *sum*
                    // (Kempe et al. §2) rather than the average.
                    (id, (h, f64::from(u8::from(id == initiator))))
                })
                .collect();
            let payload = 8 * bins + 8;

            for _ in 0..rounds {
                // Synchronous round: everyone halves and pushes.
                let mut inbox: BTreeMap<RingId, Vec<(Histogram, f64)>> = BTreeMap::new();
                for &id in &ids {
                    let (h, w) = state.get_mut(&id).expect("state exists");
                    h.scale(0.5);
                    *w *= 0.5;
                    let out = (h.clone(), *w);
                    // Random alive neighbor from the peer's routing state.
                    let node = net.node(id).expect("alive");
                    let mut nbrs: Vec<RingId> = node
                        .successors
                        .iter()
                        .copied()
                        .chain(node.fingers.present())
                        .filter(|&n| n != id && net.is_alive(n))
                        .collect();
                    // Dedup: finger tables repeat nearby peers many times and
                    // would skew the push target distribution, slowing mixing.
                    nbrs.sort();
                    nbrs.dedup();
                    if nbrs.is_empty() {
                        continue;
                    }
                    let target = nbrs[rng.gen_range(0..nbrs.len())];
                    net.stats_mut().record(MessageKind::Gossip, payload);
                    // Under a fault plan, a lost push loses its share of
                    // mass outright — Push-Sum's conservation breaks and
                    // the estimate drifts (no retries in plain Push-Sum).
                    if net.message_lost(id, target) {
                        continue;
                    }
                    inbox.entry(target).or_default().push(out);
                }
                for (id, deliveries) in inbox {
                    let (h, w) = state.get_mut(&id).expect("state exists");
                    for (dh, dw) in deliveries {
                        h.merge(&dh);
                        *w += dw;
                    }
                }
            }
            let (h, w) = state.remove(&initiator).expect("initiator alive");
            Ok((h, w))
        })?;

        if weight <= 0.0 || hist.total() <= 0.0 {
            return Err(EstimateError::NoData);
        }
        // value/weight estimates the average histogram; normalizing gives the
        // global distribution directly.
        let norm = hist.normalized();
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(bins + 1);
        points.push((lo, 0.0));
        for i in 0..bins {
            let edge = lo + (hi - lo) * (i + 1) as f64 / bins as f64;
            points.push((edge, norm.cdf(edge)));
        }
        let cdf = PiecewiseCdf::from_noisy_points(points)
            .ok_or(EstimateError::InsufficientProbes { got: 0, need: 2 })?;
        // N̂ = value_total / weight (Push-Sum's sum estimate at the initiator).
        let n_hat = hist.total() / weight;
        Ok(EstimationReport {
            estimate: DensityEstimate::from_cdf(cdf),
            cost,
            peers_contacted: 0, // gossip involves everyone; "contacted" n/a
            estimated_total: Some(n_hat),
            probes_requested: rounds,
            probes_succeeded: rounds, // every round runs; loss shows as drift
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::Placement;
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::SeedableRng;

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn converges_to_global_distribution() {
        let kind = DistributionKind::Bimodal;
        let mut net = build_net(96, 30_000, &kind, 12);
        let truth = kind.build(0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let initiator = net.random_peer(&mut rng).unwrap();
        let est = GossipAggregation::new(GossipConfig::default())
            .estimate(&mut net, initiator, &mut rng)
            .unwrap();
        let ks = est.estimate.ks_to(truth.as_ref());
        assert!(ks < 0.05, "gossip ks = {ks}");
        // Push-Sum also estimates the global count.
        let n_hat = est.estimated_total.unwrap();
        assert!((n_hat - 30_000.0).abs() / 30_000.0 < 0.1, "n_hat = {n_hat}");
    }

    #[test]
    fn cost_is_rounds_times_peers() {
        let mut net = build_net(64, 1_000, &DistributionKind::Uniform, 13);
        let mut rng = StdRng::seed_from_u64(6);
        let initiator = net.random_peer(&mut rng).unwrap();
        let cfg = GossipConfig { rounds: 10, bins: 32 };
        let est = GossipAggregation::new(cfg).estimate(&mut net, initiator, &mut rng).unwrap();
        assert_eq!(est.cost.count(MessageKind::Gossip), 10 * 64);
        // Orders of magnitude more than a probing estimator would use.
        assert!(est.messages() >= 640);
    }

    #[test]
    fn more_rounds_means_better_estimate() {
        let kind = DistributionKind::Exponential { rate_scale: 8.0 };
        let truth = kind.build(0.0, 100.0);
        let mut ks = Vec::new();
        for rounds in [2usize, 40] {
            let mut net = build_net(64, 10_000, &kind, 14);
            let mut rng = StdRng::seed_from_u64(7);
            let initiator = net.random_peer(&mut rng).unwrap();
            let est = GossipAggregation::new(GossipConfig { rounds, bins: 64 })
                .estimate(&mut net, initiator, &mut rng)
                .unwrap();
            ks.push(est.estimate.ks_to(truth.as_ref()));
        }
        assert!(ks[1] < ks[0], "40 rounds ({}) should beat 2 ({})", ks[1], ks[0]);
    }
}
