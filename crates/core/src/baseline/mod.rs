//! Baseline estimators the paper compares against.
//!
//! Each represents a family of prior approaches to global statistics in P2P
//! systems:
//!
//! * [`uniform_peer`] — sample peers uniformly and pool their local
//!   statistics. With equal weights this estimates the *average per-peer*
//!   distribution, which differs from the *data* distribution whenever
//!   volume per peer is skewed — the bias the paper is about.
//! * [`random_walk`] — the decentralized way to approximate uniform peer
//!   sampling (Metropolis–Hastings over the overlay), with the same pooling
//!   choices and extra walk cost.
//! * [`gossip`] — Push-Sum histogram aggregation: provably converges to the
//!   exact global histogram, but costs `rounds × P` messages.

pub mod gossip;
pub mod random_walk;
pub mod uniform_peer;

use dde_ring::ProbeReply;
use dde_stats::PiecewiseCdf;

/// How pooled replies are weighted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolWeighting {
    /// `F̂(x) = (1/k)·Σⱼ Fⱼ(x)` — averages per-peer *distributions*. Biased
    /// for the data distribution whenever per-peer volume correlates with
    /// value (i.e., skewed data under range placement).
    Equal,
    /// `F̂(x) = Σⱼ cⱼ(x) / Σⱼ nⱼ` — weights peers by their item counts.
    /// Consistent under uniform peer sampling.
    CountWeighted,
}

/// Pools probed peers' summaries into a CDF under the given weighting.
///
/// Returns `None` when no usable replies exist (e.g. all peers empty under
/// count weighting).
pub(crate) fn pool_replies(
    replies: &[ProbeReply],
    domain: (f64, f64),
    support_cap: usize,
    weighting: PoolWeighting,
) -> Option<PiecewiseCdf> {
    if replies.is_empty() {
        return None;
    }
    let (lo, hi) = domain;
    let mut support: Vec<f64> = replies
        .iter()
        .flat_map(|r| r.summary.boundaries().iter().copied())
        .filter(|x| x.is_finite() && *x > lo && *x < hi)
        .collect();
    support.sort_by(f64::total_cmp);
    support.dedup();
    if support.len() > support_cap {
        let step = support.len() as f64 / support_cap as f64;
        support = (0..support_cap).map(|i| support[(i as f64 * step) as usize]).collect();
        support.dedup();
    }

    let f_hat: Box<dyn Fn(f64) -> f64> = match weighting {
        PoolWeighting::Equal => {
            let nonempty: Vec<&ProbeReply> = replies.iter().filter(|r| r.count > 0).collect();
            if nonempty.is_empty() {
                return None;
            }
            let k = nonempty.len() as f64;
            let nonempty: Vec<ProbeReply> = nonempty.into_iter().cloned().collect();
            Box::new(move |x| {
                nonempty.iter().map(|r| r.summary.count_le(x) / r.count as f64).sum::<f64>() / k
            })
        }
        PoolWeighting::CountWeighted => {
            let total: f64 = replies.iter().map(|r| r.count as f64).sum();
            if total <= 0.0 {
                return None;
            }
            let replies = replies.to_vec();
            Box::new(move |x| replies.iter().map(|r| r.summary.count_le(x)).sum::<f64>() / total)
        }
    };

    let mut points = Vec::with_capacity(support.len() + 2);
    points.push((lo, 0.0));
    for x in support {
        points.push((x, f_hat(x)));
    }
    points.push((hi, 1.0));
    PiecewiseCdf::from_noisy_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::RingId;
    use dde_stats::equidepth::EquiDepthSummary;
    use dde_stats::CdfFn;

    fn reply(peer: u64, values: Vec<f64>) -> ProbeReply {
        let mut v = values;
        v.sort_by(f64::total_cmp);
        ProbeReply {
            peer: RingId(peer),
            predecessor: Some(RingId(peer.wrapping_sub(1))),
            count: v.len() as u64,
            sum: v.iter().sum(),
            sum_sq: v.iter().map(|x| x * x).sum(),
            summary: EquiDepthSummary::from_sorted(&v, 4),
            hops: 0,
        }
    }

    #[test]
    fn equal_weight_averages_distributions() {
        // Peer A: 1 item at 10; peer B: 99 items at 90.
        // Equal weighting: F̂(50) = (1 + 0)/2 = 0.5 — badly biased.
        // Count weighting: F̂(50) = 1/100 = 0.01 — correct.
        let replies = vec![reply(1, vec![10.0]), reply(2, vec![90.0; 99])];
        let eq = pool_replies(&replies, (0.0, 100.0), 256, PoolWeighting::Equal).unwrap();
        let cw = pool_replies(&replies, (0.0, 100.0), 256, PoolWeighting::CountWeighted).unwrap();
        // Evaluate at a support point (10.0): between support points the
        // skeleton interpolates linearly, which is not what's under test.
        assert!((eq.cdf(10.0) - 0.5).abs() < 0.05, "equal: {}", eq.cdf(10.0));
        assert!(cw.cdf(10.0) < 0.05, "count-weighted: {}", cw.cdf(10.0));
    }

    #[test]
    fn empty_replies_are_none() {
        assert!(pool_replies(&[], (0.0, 1.0), 16, PoolWeighting::Equal).is_none());
        let empties = vec![reply(1, vec![]), reply(2, vec![])];
        assert!(pool_replies(&empties, (0.0, 1.0), 16, PoolWeighting::Equal).is_none());
        assert!(pool_replies(&empties, (0.0, 1.0), 16, PoolWeighting::CountWeighted).is_none());
    }

    #[test]
    fn empty_peers_are_skipped_under_equal_weighting() {
        let replies = vec![reply(1, vec![]), reply(2, vec![25.0, 75.0])];
        let eq = pool_replies(&replies, (0.0, 100.0), 256, PoolWeighting::Equal).unwrap();
        assert!((eq.cdf(25.0) - 0.5).abs() < 0.05, "{}", eq.cdf(25.0));
    }
}
