//! Metropolis–Hastings random-walk peer sampling.
//!
//! The decentralized way to sample peers ≈uniformly without knowing the
//! membership: walk the overlay graph, correcting for degree with the
//! Metropolis filter (propose a uniform neighbor, accept with probability
//! `min(1, deg(cur)/deg(next))`). After a burn-in the walk's position is
//! near-uniform over peers; spacing samples by a gap decorrelates them.
//!
//! Pooling then has the same choices (and the same equal-weight bias) as
//! [`super::uniform_peer`]; what changes is the *cost*: every step is a
//! message, so `k` samples cost `burn_in + k·gap` walk steps plus the reply
//! traffic.

use crate::baseline::{pool_replies, PoolWeighting};
use crate::estimate::DensityEstimate;
use crate::estimator::{with_cost, DensityEstimator, EstimateError, EstimationReport};
use dde_ring::{MessageKind, Network, ProbeReply, RingId};
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for [`RandomWalkSampling`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkConfig {
    /// Number of peer samples (`k`).
    pub peers: usize,
    /// Steps discarded before the first sample.
    pub burn_in: usize,
    /// Steps between consecutive samples.
    pub gap: usize,
    /// How replies are pooled.
    pub weighting: PoolWeighting,
    /// Cap on support points.
    pub support_cap: usize,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        Self { peers: 64, burn_in: 32, gap: 8, weighting: PoolWeighting::Equal, support_cap: 4096 }
    }
}

/// Random-walk peer-sampling estimator (see module docs).
#[derive(Debug, Clone)]
pub struct RandomWalkSampling {
    config: RandomWalkConfig,
}

impl RandomWalkSampling {
    /// Creates the estimator.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: RandomWalkConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn config(&self) -> &RandomWalkConfig {
        &self.config
    }

    /// Distinct alive neighbors of `id` in the overlay graph.
    fn neighbors(net: &Network, id: RingId) -> Vec<RingId> {
        let Some(node) = net.node(id) else { return Vec::new() };
        let mut nbrs: Vec<RingId> = node
            .successors
            .iter()
            .copied()
            .chain(node.fingers.present())
            .chain(node.predecessor)
            .filter(|&n| n != id && net.is_alive(n))
            .collect();
        nbrs.sort();
        nbrs.dedup();
        nbrs
    }

    /// One Metropolis–Hastings step; returns the (possibly unchanged)
    /// position. Charges one walk-step message when the walk moves and one
    /// probe-sized exchange for the degree query either way.
    fn mh_step(net: &mut Network, cur: RingId, rng: &mut StdRng) -> RingId {
        let nbrs = Self::neighbors(net, cur);
        if nbrs.is_empty() {
            return cur;
        }
        let proposed = nbrs[rng.gen_range(0..nbrs.len())];
        let deg_cur = nbrs.len() as f64;
        let deg_prop = Self::neighbors(net, proposed).len().max(1) as f64;
        // Degree query at the proposed peer: one request + one reply. A
        // lost request stalls the walk for this step (the walker times out
        // in place — extra cost, slower mixing).
        net.stats_mut().record(MessageKind::WalkStep, 8);
        if net.message_lost(cur, proposed) {
            return cur;
        }
        net.stats_mut().record(MessageKind::WalkStep, 8);
        if rng.gen::<f64>() < (deg_cur / deg_prop).min(1.0) {
            proposed
        } else {
            cur
        }
    }
}

impl DensityEstimator for RandomWalkSampling {
    fn name(&self) -> &'static str {
        match self.config.weighting {
            PoolWeighting::Equal => "random-walk",
            PoolWeighting::CountWeighted => "random-walk-cw",
        }
    }

    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError> {
        if !net.is_alive(initiator) {
            return Err(EstimateError::InitiatorDead);
        }
        let domain = net.placement().domain();
        let cfg = self.config;
        let (replies, cost) = with_cost(net, |net| {
            let mut cur = initiator;
            for _ in 0..cfg.burn_in {
                cur = Self::mh_step(net, cur, rng);
            }
            let mut replies: Vec<ProbeReply> = Vec::with_capacity(cfg.peers);
            for _ in 0..cfg.peers {
                // Sample the current position, then decorrelate. Under a
                // fault plan the sampling exchange can lose its request or
                // its reply — that sample is simply gone (the walk has no
                // retry protocol).
                net.stats_mut().record(MessageKind::Probe, 8);
                if !net.message_lost(initiator, cur) {
                    let node = net.node(cur).expect("walk stays on alive peers");
                    let summary = node.store.summary(net.summary_buckets());
                    let reply = ProbeReply {
                        peer: cur,
                        predecessor: node.predecessor,
                        count: node.store.len() as u64,
                        sum: node.store.sum(),
                        sum_sq: node.store.sum_sq(),
                        summary,
                        hops: 0,
                    };
                    net.stats_mut().record(MessageKind::ProbeReply, 24 + reply.summary.wire_size());
                    if !net.reply_lost(cur, initiator) {
                        replies.push(reply);
                    }
                }
                for _ in 0..cfg.gap {
                    cur = Self::mh_step(net, cur, rng);
                }
            }
            Ok(replies)
        })?;

        let contacted = replies.len();
        let cdf = pool_replies(&replies, domain, cfg.support_cap, cfg.weighting)
            .ok_or(EstimateError::InsufficientProbes { got: contacted, need: cfg.peers })?;
        Ok(EstimationReport {
            estimate: DensityEstimate::from_cdf(cdf),
            cost,
            peers_contacted: contacted,
            estimated_total: None,
            probes_requested: cfg.peers,
            probes_succeeded: contacted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::Placement;
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::SeedableRng;

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn walk_visits_many_distinct_peers() {
        let mut net = build_net(128, 1_000, &DistributionKind::Uniform, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let initiator = net.random_peer(&mut rng).unwrap();
        let mut cur = initiator;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            cur = RandomWalkSampling::mh_step(&mut net, cur, &mut rng);
            seen.insert(cur);
        }
        assert!(seen.len() > 60, "walk only reached {} peers", seen.len());
    }

    #[test]
    fn walk_distribution_is_roughly_uniform() {
        // Chi-square-ish check: visit counts after mixing shouldn't be wildly
        // unequal (MH corrects finger-degree differences).
        let mut net = build_net(32, 100, &DistributionKind::Uniform, 9);
        let mut rng = StdRng::seed_from_u64(2);
        let initiator = net.random_peer(&mut rng).unwrap();
        let mut cur = initiator;
        for _ in 0..100 {
            cur = RandomWalkSampling::mh_step(&mut net, cur, &mut rng);
        }
        let mut visits: std::collections::BTreeMap<RingId, u32> = Default::default();
        let total = 6_000;
        for _ in 0..total {
            cur = RandomWalkSampling::mh_step(&mut net, cur, &mut rng);
            *visits.entry(cur).or_insert(0) += 1;
        }
        let expected = total as f64 / 32.0;
        let visited_frac = visits.len() as f64 / 32.0;
        assert!(visited_frac > 0.95, "only {} of 32 peers visited", visits.len());
        for (&peer, &v) in &visits {
            assert!((v as f64) < 4.0 * expected, "peer {peer} visited {v}× vs expected {expected}");
        }
    }

    #[test]
    fn estimates_and_charges_walk_cost() {
        let kind = DistributionKind::Uniform;
        let mut net = build_net(128, 20_000, &kind, 10);
        let truth = kind.build(0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let initiator = net.random_peer(&mut rng).unwrap();
        let cfg = RandomWalkConfig { peers: 48, ..RandomWalkConfig::default() };
        let est = RandomWalkSampling::new(cfg).estimate(&mut net, initiator, &mut rng).unwrap();
        assert_eq!(est.peers_contacted, 48);
        assert!(est.estimate.ks_to(truth.as_ref()) < 0.2);
        // Walk steps dominate the cost: burn_in + k·gap exchanges, 2 msgs each.
        let steps = (cfg.burn_in + cfg.peers * cfg.gap) as u64;
        assert_eq!(est.cost.count(MessageKind::WalkStep), 2 * steps);
    }

    #[test]
    fn dead_initiator_errors() {
        let mut net = build_net(16, 100, &DistributionKind::Uniform, 11);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            RandomWalkSampling::new(RandomWalkConfig::default()).estimate(
                &mut net,
                RingId(77),
                &mut rng
            ),
            Err(EstimateError::InitiatorDead)
        ));
    }
}
