//! Uniform peer sampling — the classic baseline.
//!
//! `k` peers are chosen uniformly at random (an idealized sampler: real
//! systems approximate it with random walks, see
//! [`super::random_walk`]); each is routed to and probed, and the local
//! summaries are pooled. The cost model is honest — knowing a peer's id,
//! reaching it costs a real `O(log P)` lookup, charged through the network.
//!
//! The [`PoolWeighting::Equal`] flavour is *the* biased estimator the paper
//! argues against; [`PoolWeighting::CountWeighted`] is the repaired variant
//! (consistent, though with higher variance than DF-DDE's ring-position
//! probing at equal message cost — experiment F1/T3 quantifies this).

use crate::baseline::pool_replies;
pub use crate::baseline::PoolWeighting;
use crate::estimate::DensityEstimate;
use crate::estimator::{with_cost, DensityEstimator, EstimateError, EstimationReport};
use dde_ring::{Network, RingId};
use rand::rngs::StdRng;

/// Configuration for [`UniformPeerSampling`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformPeerConfig {
    /// Number of peers to sample (`k`).
    pub peers: usize,
    /// How replies are pooled.
    pub weighting: PoolWeighting,
    /// Cap on support points.
    pub support_cap: usize,
}

impl Default for UniformPeerConfig {
    fn default() -> Self {
        Self { peers: 64, weighting: PoolWeighting::Equal, support_cap: 4096 }
    }
}

/// Uniform-peer-sampling estimator (see module docs).
#[derive(Debug, Clone)]
pub struct UniformPeerSampling {
    config: UniformPeerConfig,
}

impl UniformPeerSampling {
    /// Creates the estimator.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: UniformPeerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn config(&self) -> &UniformPeerConfig {
        &self.config
    }
}

impl DensityEstimator for UniformPeerSampling {
    fn name(&self) -> &'static str {
        match self.config.weighting {
            PoolWeighting::Equal => "uniform-peer",
            PoolWeighting::CountWeighted => "uniform-peer-cw",
        }
    }

    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError> {
        if !net.is_alive(initiator) {
            return Err(EstimateError::InitiatorDead);
        }
        let domain = net.placement().domain();
        let need = self.config.peers;
        let (replies, cost) = with_cost(net, |net| {
            let mut replies = Vec::with_capacity(need);
            let mut failures = 0usize;
            while replies.len() < need {
                // Idealized uniform peer choice; the *routing* to it is real.
                let Some(target) = net.random_peer(rng) else {
                    return Err(EstimateError::Routing(dde_ring::LookupError::EmptyNetwork));
                };
                match net.probe(initiator, target) {
                    Ok(r) => replies.push(r),
                    Err(dde_ring::LookupError::InitiatorDead) => {
                        return Err(EstimateError::InitiatorDead)
                    }
                    Err(_) => {
                        failures += 1;
                        if failures > 16 {
                            break;
                        }
                    }
                }
            }
            Ok(replies)
        })?;

        let contacted = replies.len();
        let total: f64 = replies.iter().map(|r| r.count as f64).sum();
        let cdf = pool_replies(&replies, domain, self.config.support_cap, self.config.weighting)
            .ok_or(EstimateError::InsufficientProbes { got: contacted, need })?;
        // Uniform peer sampling estimates N as P·mean(n): possible only when
        // P is known; we report the per-sample mean total instead (scaled by
        // the alive count, which the simulator knows — flagged as idealized).
        let n_hat =
            if contacted > 0 { Some(total / contacted as f64 * net.len() as f64) } else { None };
        Ok(EstimationReport {
            estimate: DensityEstimate::from_cdf(cdf),
            cost,
            peers_contacted: contacted,
            estimated_total: n_hat,
            probes_requested: need,
            probes_succeeded: contacted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfdde::{DfDde, DfDdeConfig};
    use dde_ring::Placement;
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::{Rng, SeedableRng};

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn equal_weighting_is_biased_even_on_uniform_data() {
        // Under range placement per-peer volume is ∝ arc length, which
        // varies exponentially across peers even with uniform data — so
        // equal-weight pooling (one vote per peer, regardless of volume)
        // distorts the estimate, while count weighting stays consistent.
        let kind = DistributionKind::Uniform;
        let mut net = build_net(128, 20_000, &kind, 5);
        let truth = kind.build(0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let initiator = net.random_peer(&mut rng).unwrap();
        let eq = UniformPeerSampling::new(UniformPeerConfig::default())
            .estimate(&mut net, initiator, &mut rng.clone())
            .unwrap();
        let cw = UniformPeerSampling::new(UniformPeerConfig {
            weighting: PoolWeighting::CountWeighted,
            ..UniformPeerConfig::default()
        })
        .estimate(&mut net, initiator, &mut rng)
        .unwrap();
        let ks_eq = eq.estimate.ks_to(truth.as_ref());
        let ks_cw = cw.estimate.ks_to(truth.as_ref());
        assert!(ks_cw < 0.25, "count-weighted should be reasonable: {ks_cw}");
        assert!(ks_cw < ks_eq, "count-weighted {ks_cw} should beat equal {ks_eq}");
    }

    #[test]
    fn biased_on_skewed_data_where_dfdde_is_not() {
        // The paper's core comparison: heavy skew under range placement.
        let kind = DistributionKind::Pareto { shape: 1.2 };
        let truth = kind.build(0.0, 100.0);
        let mut ks_naive = 0.0;
        let mut ks_dfdde = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let mut net = build_net(192, 30_000, &kind, 300 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let initiator = net.random_peer(&mut rng).unwrap();
            let naive = UniformPeerSampling::new(UniformPeerConfig {
                peers: 96,
                ..UniformPeerConfig::default()
            })
            .estimate(&mut net, initiator, &mut rng.clone())
            .unwrap();
            let dfdde = DfDde::new(DfDdeConfig::with_probes(96))
                .estimate(&mut net, initiator, &mut rng)
                .unwrap();
            ks_naive += naive.estimate.ks_to(truth.as_ref()) / runs as f64;
            ks_dfdde += dfdde.estimate.ks_to(truth.as_ref()) / runs as f64;
        }
        assert!(
            ks_naive > 2.0 * ks_dfdde,
            "expected clear bias: naive {ks_naive} vs df-dde {ks_dfdde}"
        );
    }

    #[test]
    fn count_weighting_repairs_the_bias() {
        let kind = DistributionKind::Pareto { shape: 1.2 };
        let truth = kind.build(0.0, 100.0);
        let mut ks_eq = 0.0;
        let mut ks_cw = 0.0;
        for seed in 0..5 {
            let mut net = build_net(192, 30_000, &kind, 400 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let initiator = net.random_peer(&mut rng).unwrap();
            let mut cfg = UniformPeerConfig { peers: 96, ..UniformPeerConfig::default() };
            let eq = UniformPeerSampling::new(cfg)
                .estimate(&mut net, initiator, &mut rng.clone())
                .unwrap();
            cfg.weighting = PoolWeighting::CountWeighted;
            let cw = UniformPeerSampling::new(cfg).estimate(&mut net, initiator, &mut rng).unwrap();
            ks_eq += eq.estimate.ks_to(truth.as_ref());
            ks_cw += cw.estimate.ks_to(truth.as_ref());
        }
        assert!(ks_cw < ks_eq, "count-weighted {ks_cw} should beat equal {ks_eq}");
    }

    #[test]
    fn charges_routing_messages() {
        let mut net = build_net(256, 5_000, &DistributionKind::Uniform, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let initiator = net.random_peer(&mut rng).unwrap();
        let est = UniformPeerSampling::new(UniformPeerConfig {
            peers: 32,
            ..UniformPeerConfig::default()
        })
        .estimate(&mut net, initiator, &mut rng)
        .unwrap();
        assert_eq!(est.peers_contacted, 32);
        // Routing to each sampled peer costs hops.
        assert!(est.messages() > 64, "messages = {}", est.messages());
    }
}
