//! Continuous estimation under churn — the "dynamic networks" extension.
//!
//! Instead of probing from scratch for every estimate, a peer maintains a
//! sliding window of the most recent probe replies and refreshes a few per
//! tick. The estimate is always available (rebuilt from the window on
//! demand) and its staleness is controlled by the refresh rate: experiment
//! F5b sweeps refresh against churn to show the trade-off.

use crate::dfdde::{DfDde, DfDdeConfig};
use crate::estimate::DensityEstimate;
use crate::estimator::EstimateError;
use crate::retry::RetryPolicy;
use crate::skeleton::{CdfSkeleton, Weighting};
use dde_ring::{Network, ProbeReply, RingId};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// Configuration for [`ContinuousEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousConfig {
    /// Maximum probes kept in the window.
    pub window: usize,
    /// Fresh probes issued per [`ContinuousEstimator::tick`].
    pub refresh_per_tick: usize,
    /// Cap on skeleton support points.
    pub support_cap: usize,
    /// Skeleton weighting (Horvitz–Thompson in the method).
    pub weighting: Weighting,
    /// Retry policy for refresh probes (lost probes are re-issued against
    /// fresh random ring positions; a refresh that still comes up short
    /// just contributes fewer fresh probes this tick).
    pub retry: RetryPolicy,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        Self {
            window: 64,
            refresh_per_tick: 8,
            support_cap: 4096,
            weighting: Weighting::HorvitzThompson,
            retry: RetryPolicy::default(),
        }
    }
}

/// A peer-resident estimator that keeps its CDF fresh under churn.
#[derive(Debug, Clone)]
pub struct ContinuousEstimator {
    config: ContinuousConfig,
    window: VecDeque<ProbeReply>,
}

impl ContinuousEstimator {
    /// Creates an estimator with an empty probe window.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: ContinuousConfig) -> Self {
        Self { config, window: VecDeque::with_capacity(config.window) }
    }

    /// Probes currently held.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn probes_held(&self) -> usize {
        self.window.len()
    }

    /// Fills the window up to capacity with fresh probes (charged to the
    /// network) regardless of the refresh rate — bootstrap before monitoring.
    ///
    /// Determinism: draws randomness only from the caller-supplied RNG stream; identical inputs and RNG state produce identical output.
    pub fn prefill(
        &mut self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<(), EstimateError> {
        let missing = self.config.window.saturating_sub(self.window.len());
        if missing == 0 {
            return Ok(());
        }
        let prober = DfDde::new(DfDdeConfig {
            probes: missing,
            retry: self.config.retry,
            ..DfDdeConfig::default()
        });
        for r in prober.run_probes(net, initiator, rng)? {
            self.window.push_back(r);
        }
        Ok(())
    }

    /// Issues `refresh_per_tick` fresh probes (charged to the network) and
    /// evicts the oldest beyond the window. Call once per simulation tick.
    ///
    /// Determinism: draws randomness only from the caller-supplied RNG stream; identical inputs and RNG state produce identical output.
    pub fn tick(
        &mut self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<(), EstimateError> {
        let prober = DfDde::new(DfDdeConfig {
            probes: self.config.refresh_per_tick,
            retry: self.config.retry,
            ..DfDdeConfig::default()
        });
        let fresh = prober.run_probes(net, initiator, rng)?;
        for r in fresh {
            self.window.push_back(r);
        }
        while self.window.len() > self.config.window {
            self.window.pop_front();
        }
        Ok(())
    }

    /// The current estimate, rebuilt from the probe window (stale probes —
    /// from peers that may have departed or split their arcs — are used
    /// as-is: that staleness *is* the dynamic-network error being studied).
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn current_estimate(&self, domain: (f64, f64)) -> Result<DensityEstimate, EstimateError> {
        let replies: Vec<ProbeReply> = self.window.iter().cloned().collect();
        let skeleton = CdfSkeleton::from_probes(
            &replies,
            domain,
            self.config.support_cap,
            self.config.weighting,
        )
        .ok_or(EstimateError::InsufficientProbes { got: replies.len(), need: 2 })?;
        Ok(DensityEstimate::from_cdf(skeleton.cdf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::{ChurnConfig, ChurnProcess, Placement};
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::{Rng, SeedableRng};

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn window_fills_and_bounds() {
        let kind = DistributionKind::Uniform;
        let mut net = build_net(128, 10_000, &kind, 30);
        let mut rng = StdRng::seed_from_u64(1);
        let initiator = net.random_peer(&mut rng).unwrap();
        let cfg = ContinuousConfig { window: 32, refresh_per_tick: 10, ..Default::default() };
        let mut est = ContinuousEstimator::new(cfg);
        assert!(est.current_estimate((0.0, 100.0)).is_err()); // empty window
        for _ in 0..10 {
            est.tick(&mut net, initiator, &mut rng).unwrap();
        }
        assert_eq!(est.probes_held(), 32); // capped
        let e = est.current_estimate((0.0, 100.0)).unwrap();
        let truth = kind.build(0.0, 100.0);
        assert!(e.ks_to(truth.as_ref()) < 0.15);
    }

    #[test]
    fn tracks_through_churn() {
        let kind = DistributionKind::Normal { center_frac: 0.5, std_frac: 0.12 };
        let mut net = build_net(192, 30_000, &kind, 31);
        let seq = SeedSequence::new(32);
        let mut churn_rng = seq.stream(Component::Churn, 0);
        let mut est_rng = seq.stream(Component::Estimator, 0);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.05, 0.5));
        let mut cont = ContinuousEstimator::new(ContinuousConfig::default());

        // The initiator must survive: pick one and never let churn kill it…
        // churn picks randomly, so instead re-pick the initiator if it dies.
        let mut initiator = net.random_peer(&mut est_rng).unwrap();
        let mut ok_estimates = 0;
        for tick in 0..12 {
            churn.run(&mut net, 1.0, &mut churn_rng);
            if !net.is_alive(initiator) {
                initiator = net.random_peer(&mut est_rng).unwrap();
            }
            if cont.tick(&mut net, initiator, &mut est_rng).is_err() {
                continue;
            }
            // First ticks only hold a handful of probes: warm-up, skip.
            if tick < 3 {
                continue;
            }
            if let Ok(e) = cont.current_estimate((0.0, 100.0)) {
                // Crashes under range placement lose contiguous value ranges,
                // so the right reference is the *surviving* data, not the
                // original generator.
                let truth_now = dde_stats::Ecdf::new(net.global_values());
                let ks = e.ks_to(&truth_now);
                assert!(ks < 0.4, "estimate collapsed under churn: ks = {ks}");
                ok_estimates += 1;
            }
        }
        assert!(ok_estimates >= 8, "only {ok_estimates} estimates succeeded");
    }
}
