//! The paper's estimator: **D**istribution-**F**ree **D**ata **D**ensity
//! **E**stimation.
//!
//! Phase 1 probes `k` uniform random ring positions and assembles the replies
//! into a [`CdfSkeleton`] (Horvitz–Thompson-corrected global CDF). Phase 2
//! optionally generates samples by the inversion method — locally from the
//! skeleton, or by fetching real tuples from the peers owning the sampled
//! quantiles. Cost: `k · O(log P)` messages for Phase 1, plus `m · O(log P)`
//! for remote Phase 2.

use crate::estimate::DensityEstimate;
use crate::estimator::{with_cost, DensityEstimator, EstimateError, EstimationReport};
use crate::retry::RetryPolicy;
use crate::skeleton::{CdfSkeleton, Weighting};
use dde_ring::{Network, ProbeReply, RingId};
use dde_stats::CdfFn as _;
use rand::rngs::StdRng;
use rand::Rng;

/// How Phase-1 probe positions are drawn on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// One uniform position per equal ring stratum (`uⱼ ∈ [j/k, (j+1)/k)`).
    ///
    /// Still unbiased under Horvitz–Thompson (each position is uniform
    /// within its stratum and the strata tile the ring), but with far lower
    /// variance: spatially clustered mass — the hotspot peers skewed data
    /// creates — is covered *systematically* instead of by luck. This is the
    /// natural reading of the paper's "sampling the global cumulative
    /// distribution function".
    Stratified,
    /// Independent uniform positions (the textbook estimator; ablation).
    IidUniform,
}

/// Phase-2 sampling behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// No Phase 2: read density straight off the skeleton (zero extra cost).
    SkeletonOnly,
    /// Fetch `m` real tuples by routing to the peers owning the sampled
    /// quantiles (`m · O(log P)` extra messages).
    RemoteTuples {
        /// Number of tuples to fetch.
        m: usize,
    },
}

/// Configuration for [`DfDde`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfDdeConfig {
    /// Number of ring-position probes (`k`).
    pub probes: usize,
    /// Probe-position strategy.
    pub strategy: ProbeStrategy,
    /// Phase-2 behaviour.
    pub sample_mode: SampleMode,
    /// Horvitz–Thompson on (the method) or off (T3 ablation).
    pub weighting: Weighting,
    /// Retry policy for individual probes: churn and injected faults can
    /// break them; lost probes are re-issued against fresh random ring
    /// positions with exponential backoff, and a probe whose attempts run
    /// out is simply skipped (the skeleton degrades gracefully).
    pub retry: RetryPolicy,
    /// Cap on skeleton support points.
    pub support_cap: usize,
}

impl Default for DfDdeConfig {
    fn default() -> Self {
        Self {
            probes: 64,
            strategy: ProbeStrategy::Stratified,
            sample_mode: SampleMode::SkeletonOnly,
            weighting: Weighting::HorvitzThompson,
            retry: RetryPolicy::default(),
            support_cap: 4096,
        }
    }
}

impl DfDdeConfig {
    /// Convenience: default config with `k` probes.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn with_probes(probes: usize) -> Self {
        Self { probes, ..Self::default() }
    }
}

/// The distribution-free density estimator (see module docs).
#[derive(Debug, Clone)]
pub struct DfDde {
    config: DfDdeConfig,
}

impl DfDde {
    /// Creates the estimator with the given configuration.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new(config: DfDdeConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn config(&self) -> &DfDdeConfig {
        &self.config
    }

    /// Phase 1 alone: run the probes and return the raw replies (exposed for
    /// the continuous estimator, which manages its own probe window).
    ///
    /// Determinism: draws randomness only from the caller-supplied RNG stream; identical inputs and RNG state produce identical output.
    pub fn run_probes(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<Vec<ProbeReply>, EstimateError> {
        let k = self.config.probes;
        let retry = self.config.retry;
        let mut replies = Vec::with_capacity(k);
        // Stratum width for systematic probing (k strata tile the ring).
        let stratum = (u128::from(u64::MAX) + 1) / k.max(1) as u128;
        for j in 0..k {
            for attempt in 0..retry.max_attempts.max(1) {
                // Every attempt draws a fresh random position (the old one
                // may sit behind a lossy link or a sick peer), but retries
                // stay *inside the probe's stratum* under the stratified
                // strategy — re-issuing globally uniform would quietly
                // un-stratify the design and inflate variance under loss.
                let point = match self.config.strategy {
                    ProbeStrategy::IidUniform => RingId(rng.gen()),
                    ProbeStrategy::Stratified => {
                        let offset = rng.gen::<u64>() as u128 % stratum;
                        RingId(((j as u128 % k as u128) * stratum + offset) as u64)
                    }
                };
                match net.probe(initiator, point) {
                    Ok(reply) => {
                        replies.push(reply);
                        break;
                    }
                    Err(dde_ring::LookupError::InitiatorDead) => {
                        return Err(EstimateError::InitiatorDead)
                    }
                    Err(_) => {
                        // Waiting time (timeout + backoff) is the retry
                        // policy's side of the cost model; the network
                        // already charged the messages.
                        net.stats_mut().record_delay(retry.failed_attempt_cost(attempt));
                    }
                }
            }
        }
        Ok(replies)
    }

    /// Builds the skeleton from replies (None-safe wrapper used by both this
    /// estimator and the continuous one).
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn build_skeleton(
        &self,
        replies: &[ProbeReply],
        domain: (f64, f64),
    ) -> Result<CdfSkeleton, EstimateError> {
        CdfSkeleton::from_probes(replies, domain, self.config.support_cap, self.config.weighting)
            .ok_or(EstimateError::InsufficientProbes { got: replies.len(), need: 2 })
    }
}

impl DensityEstimator for DfDde {
    fn name(&self) -> &'static str {
        match self.config.weighting {
            Weighting::HorvitzThompson => "df-dde",
            Weighting::Unweighted => "df-dde-unweighted",
        }
    }

    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError> {
        let domain = net.placement().domain();
        let need = self.config.probes;
        let ((skeleton, samples, contacted, succeeded), cost) = with_cost(net, |net| {
            // Phase 1. A partial reply set is fine — the skeleton degrades
            // gracefully and the report says how many of `k` succeeded —
            // but below 2 usable replies no skeleton exists.
            let replies = self.run_probes(net, initiator, rng)?;
            if replies.len() < need.min(2) {
                return Err(EstimateError::InsufficientProbes { got: replies.len(), need });
            }
            let succeeded = replies.len();
            let skeleton = self.build_skeleton(&replies, domain)?;

            // Phase 2.
            let mut samples = Vec::new();
            if let SampleMode::RemoteTuples { m } = self.config.sample_mode {
                let map = net.placement().domain_map().copied();
                for i in 0..m {
                    // Stratified quantile, inverted through the skeleton.
                    let u = (i as f64 + rng.gen::<f64>()) / m as f64;
                    let x_hat = skeleton.cdf.inv_cdf(u);
                    // Route to the peer owning the estimated quantile. Under
                    // range placement that peer holds data near x̂; under
                    // hashed placement any peer holds an exchangeable subset,
                    // so a uniform ring point is equivalent.
                    let point = match &map {
                        Some(m) => m.to_ring(x_hat),
                        None => RingId(rng.gen()),
                    };
                    if let Ok((Some(tuple), _)) = net.sample_tuple(initiator, point, rng) {
                        samples.push(tuple);
                    }
                }
            }
            let contacted = skeleton.probes_used;
            Ok((skeleton, samples, contacted, succeeded))
        })?;

        Ok(EstimationReport {
            estimate: DensityEstimate::with_samples(skeleton.cdf, samples),
            cost,
            peers_contacted: contacted,
            estimated_total: Some(skeleton.n_hat),
            probes_requested: need,
            probes_succeeded: succeeded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::{MessageKind, Placement};
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::SeedableRng;

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn recovers_skewed_distribution() {
        let kind = DistributionKind::Zipf { cells: 32, exponent: 1.1 };
        let mut net = build_net(256, 50_000, &kind, 1);
        let truth = kind.build(0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(9);
        let initiator = net.random_peer(&mut rng).unwrap();
        let est = DfDde::new(DfDdeConfig::with_probes(128))
            .estimate(&mut net, initiator, &mut rng)
            .unwrap();
        let ks = est.estimate.ks_to(truth.as_ref());
        assert!(ks < 0.1, "ks = {ks}");
        let n_hat = est.estimated_total.unwrap();
        assert!((n_hat - 50_000.0).abs() / 50_000.0 < 0.25, "n_hat = {n_hat}");
    }

    /// Builds a **load-balanced** ring: node ids placed at the data's
    /// quantiles (each peer holds ~equal item counts), the steady state of
    /// range-partitioned systems with load balancing (Mercury, P-Ring).
    /// There, arc length anti-correlates with data density, which is exactly
    /// the regime where dropping the Horvitz–Thompson correction is
    /// structurally biased.
    fn build_load_balanced_net(
        peers: usize,
        items: usize,
        kind: &DistributionKind,
        seed: u64,
    ) -> Network {
        let seq = SeedSequence::new(seed);
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        let placement = Placement::range(0.0, 100.0);
        let map = *placement.domain_map().unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let mut ids: Vec<RingId> = (1..=peers)
            .map(|i| {
                let q = sorted[(i * items / peers).min(items - 1)];
                map.to_ring(q)
            })
            .collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, placement);
        net.bulk_load(&data);
        net
    }

    #[test]
    fn ht_beats_unweighted_on_load_balanced_ring() {
        let kind = DistributionKind::Zipf { cells: 32, exponent: 1.1 };
        let truth = kind.build(0.0, 100.0);
        let mut ks_ht = 0.0;
        let mut ks_raw = 0.0;
        let runs = 4;
        for seed in 0..runs {
            let mut net = build_load_balanced_net(192, 30_000, &kind, 100 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let initiator = net.random_peer(&mut rng).unwrap();
            let mut cfg = DfDdeConfig::with_probes(96);
            let est_ht = DfDde::new(cfg).estimate(&mut net, initiator, &mut rng.clone()).unwrap();
            cfg.weighting = Weighting::Unweighted;
            let est_raw = DfDde::new(cfg).estimate(&mut net, initiator, &mut rng).unwrap();
            ks_ht += est_ht.estimate.ks_to(truth.as_ref()) / runs as f64;
            ks_raw += est_raw.estimate.ks_to(truth.as_ref()) / runs as f64;
        }
        assert!(
            ks_ht < 0.6 * ks_raw,
            "HT should clearly beat unweighted on a load-balanced ring: {ks_ht} vs {ks_raw}"
        );
    }

    #[test]
    fn cost_scales_with_probes() {
        let kind = DistributionKind::Uniform;
        let mut net = build_net(512, 10_000, &kind, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let initiator = net.random_peer(&mut rng).unwrap();
        let small = DfDde::new(DfDdeConfig::with_probes(16))
            .estimate(&mut net, initiator, &mut rng)
            .unwrap();
        let large = DfDde::new(DfDdeConfig::with_probes(128))
            .estimate(&mut net, initiator, &mut rng)
            .unwrap();
        assert_eq!(small.cost.count(MessageKind::Probe), 16);
        assert_eq!(large.cost.count(MessageKind::Probe), 128);
        assert!(large.messages() > 4 * small.messages());
        // Probes cost O(log P) each, not O(P).
        assert!(large.messages() < 128 * 40, "messages = {} for 128 probes", large.messages());
    }

    #[test]
    fn remote_tuples_are_real_data() {
        let kind = DistributionKind::Normal { center_frac: 0.5, std_frac: 0.12 };
        let mut net = build_net(128, 20_000, &kind, 7);
        let all: std::collections::BTreeSet<u64> =
            net.global_values().iter().map(|v| v.to_bits()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let initiator = net.random_peer(&mut rng).unwrap();
        let cfg = DfDdeConfig {
            sample_mode: SampleMode::RemoteTuples { m: 200 },
            ..DfDdeConfig::with_probes(64)
        };
        let est = DfDde::new(cfg).estimate(&mut net, initiator, &mut rng).unwrap();
        let samples = est.estimate.samples();
        assert!(samples.len() > 150, "only {} tuples fetched", samples.len());
        for s in samples {
            assert!(all.contains(&s.to_bits()), "sample {s} is not a stored tuple");
        }
        // And they follow the true distribution.
        let truth = kind.build(0.0, 100.0);
        let ks = dde_stats::Ecdf::new(samples.to_vec()).ks_distance_to(truth.as_ref());
        assert!(ks < 0.2, "remote-tuple ks = {ks}");
    }

    #[test]
    fn insufficient_probes_error() {
        let kind = DistributionKind::Uniform;
        let mut net = build_net(4, 100, &kind, 11);
        let mut rng = StdRng::seed_from_u64(1);
        let est = DfDde::new(DfDdeConfig::with_probes(8));
        assert!(matches!(
            est.estimate(&mut net, RingId(424242), &mut rng),
            Err(EstimateError::InitiatorDead)
        ));
    }

    #[test]
    fn works_under_hashed_placement() {
        // Hashed placement: every peer holds an exchangeable subset; the
        // estimator must still recover the distribution.
        let seq = SeedSequence::new(21);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let ids: Vec<RingId> = (0..128).map(|_| RingId(id_rng.gen())).collect();
        let mut net = Network::build(ids, Placement::hashed(0.0, 100.0));
        let kind = DistributionKind::Exponential { rate_scale: 8.0 };
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);

        let mut rng = StdRng::seed_from_u64(2);
        let initiator = net.random_peer(&mut rng).unwrap();
        let est = DfDde::new(DfDdeConfig::with_probes(64))
            .estimate(&mut net, initiator, &mut rng)
            .unwrap();
        let ks = est.estimate.ks_to(dist.as_ref());
        assert!(ks < 0.1, "hashed-placement ks = {ks}");
    }
}
