//! The estimate object: a global CDF/density with query and scoring methods.

use dde_stats::inversion;
use dde_stats::kde::{Bandwidth, Kde};
use dde_stats::metrics;
use dde_stats::{CdfFn, Histogram, PiecewiseCdf};
use rand::Rng;

/// A global data-distribution estimate.
///
/// Internally a monotone piecewise-linear CDF (the *skeleton*), optionally
/// accompanied by real tuples fetched during Phase-2 remote sampling. All
/// query methods (`cdf`, `pdf`, `quantile`, sampling) and all scoring methods
/// (KS / L1 / Wasserstein against a reference) live here.
#[derive(Debug, Clone)]
pub struct DensityEstimate {
    cdf: PiecewiseCdf,
    /// Real tuples fetched remotely in Phase 2, if any.
    samples: Vec<f64>,
}

impl DensityEstimate {
    /// Wraps a skeleton CDF.
    pub fn from_cdf(cdf: PiecewiseCdf) -> Self {
        Self { cdf, samples: Vec::new() }
    }

    /// Wraps a skeleton CDF together with remotely fetched tuples.
    pub fn with_samples(cdf: PiecewiseCdf, samples: Vec<f64>) -> Self {
        Self { cdf, samples }
    }

    /// The skeleton CDF.
    pub fn skeleton(&self) -> &PiecewiseCdf {
        &self.cdf
    }

    /// Real tuples fetched during estimation (empty unless remote sampling
    /// was requested).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Estimated cumulative probability `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.cdf.cdf(x)
    }

    /// Estimated density at `x` (the skeleton's slope).
    pub fn pdf(&self, x: f64) -> f64 {
        self.cdf.density(x)
    }

    /// Estimated `q`-quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        self.cdf.inv_cdf(q)
    }

    /// Estimated fraction of the data in `[lo, hi]` — the selectivity of a
    /// range query, the estimate's flagship application.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Generates `m` samples of the estimated distribution by the inversion
    /// method (Phase 2, local flavour). Stratified, so the sample's own
    /// deviation from the skeleton is `O(1/m)`.
    pub fn synthesize_samples<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<f64> {
        inversion::sample_stratified(&self.cdf, m, rng)
    }

    /// An equi-width histogram of the estimate with `bins` bins.
    pub fn to_histogram(&self, bins: usize) -> Histogram {
        Histogram::from_cdf(&self.cdf, bins)
    }

    /// A KDE over the fetched/synthesized samples (falls back to `m`
    /// synthesized samples when no real tuples were fetched).
    pub fn to_kde<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Kde {
        let samples = if self.samples.is_empty() {
            self.synthesize_samples(m, rng)
        } else {
            self.samples.clone()
        };
        Kde::fit(samples, Bandwidth::Silverman, self.cdf.domain())
    }

    /// Estimated mean of the global data, `∫ x·f̂(x) dx`, integrated exactly
    /// over the skeleton's linear segments.
    pub fn mean(&self) -> f64 {
        // On a segment [(x0,F0),(x1,F1)] the density is constant, so the
        // segment contributes (F1-F0)·(x0+x1)/2.
        self.cdf.points().windows(2).map(|w| (w[1].1 - w[0].1) * 0.5 * (w[0].0 + w[1].0)).sum()
    }

    /// Estimated (population) variance, exact over the skeleton: each linear
    /// segment is a uniform patch with `E[X²] = (x0² + x0·x1 + x1²)/3`.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        let ex2: f64 = self
            .cdf
            .points()
            .windows(2)
            .map(|w| {
                let (x0, x1) = (w[0].0, w[1].0);
                (w[1].1 - w[0].1) * (x0 * x0 + x0 * x1 + x1 * x1) / 3.0
            })
            .sum();
        (ex2 - mean * mean).max(0.0)
    }

    /// Estimated standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Differential entropy of the estimate in nats,
    /// `−Σ (ΔF)·ln(ΔF/Δx)` over the skeleton's segments (flat segments
    /// contribute 0). Useful as a skew/concentration diagnostic: lower
    /// entropy ⇒ more concentrated data ⇒ more load imbalance under range
    /// placement.
    pub fn entropy(&self) -> f64 {
        self.cdf
            .points()
            .windows(2)
            .filter_map(|w| {
                let mass = w[1].1 - w[0].1;
                let width = w[1].0 - w[0].0;
                (mass > 0.0 && width > 0.0).then(|| -mass * (mass / width).ln())
            })
            .sum()
    }

    /// The estimated mode: midpoint of the skeleton segment with the highest
    /// density.
    pub fn mode(&self) -> f64 {
        self.cdf
            .points()
            .windows(2)
            .max_by(|a, b| {
                let da = (a[1].1 - a[0].1) / (a[1].0 - a[0].0).max(f64::MIN_POSITIVE);
                let db = (b[1].1 - b[0].1) / (b[1].0 - b[0].0).max(f64::MIN_POSITIVE);
                da.total_cmp(&db)
            })
            .map(|w| 0.5 * (w[0].0 + w[1].0))
            .expect("skeleton has ≥1 segment")
    }

    /// Kolmogorov–Smirnov distance to a reference CDF (the headline accuracy
    /// metric in every experiment).
    pub fn ks_to<C: CdfFn + ?Sized>(&self, reference: &C) -> f64 {
        self.cdf.sup_diff(reference, metrics::DEFAULT_GRID)
    }

    /// 1-D Wasserstein distance to a reference CDF.
    pub fn wasserstein_to<C: CdfFn + ?Sized>(&self, reference: &C) -> f64 {
        metrics::wasserstein1(&self.cdf, reference, metrics::DEFAULT_GRID)
    }

    /// Integrated absolute density error against a reference density.
    pub fn l1_density_to(&self, reference_pdf: impl Fn(f64) -> f64) -> f64 {
        let domain = self.cdf.domain();
        metrics::l1_density_error(|x| self.pdf(x), reference_pdf, domain, metrics::DEFAULT_GRID)
    }
}

impl CdfFn for DensityEstimate {
    fn cdf(&self, x: f64) -> f64 {
        DensityEstimate::cdf(self, x)
    }

    fn domain(&self) -> (f64, f64) {
        self.cdf.domain()
    }

    fn inv_cdf(&self, u: f64) -> f64 {
        self.cdf.inv_cdf(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::dist::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_estimate() -> DensityEstimate {
        DensityEstimate::from_cdf(PiecewiseCdf::from_points(vec![(0.0, 0.0), (10.0, 1.0)]))
    }

    #[test]
    fn queries() {
        let e = uniform_estimate();
        assert_eq!(e.cdf(5.0), 0.5);
        assert!((e.pdf(5.0) - 0.1).abs() < 1e-12);
        assert_eq!(e.quantile(0.3), 3.0);
        assert!((e.selectivity(2.0, 4.0) - 0.2).abs() < 1e-12);
        assert_eq!(e.selectivity(4.0, 2.0), 0.0);
    }

    #[test]
    fn synthesized_samples_match_skeleton() {
        let e = uniform_estimate();
        let mut rng = StdRng::seed_from_u64(8);
        let samples = e.synthesize_samples(500, &mut rng);
        assert_eq!(samples.len(), 500);
        let ks = dde_stats::Ecdf::new(samples).ks_distance_to(&Uniform::new(0.0, 10.0));
        assert!(ks < 0.01, "ks = {ks}"); // stratified: ~1/m
    }

    #[test]
    fn scores_against_truth() {
        let e = uniform_estimate();
        assert!(e.ks_to(&Uniform::new(0.0, 10.0)) < 1e-12);
        assert!(e.wasserstein_to(&Uniform::new(0.0, 10.0)) < 1e-9);
        // Against a shifted uniform the error is visible.
        assert!(e.ks_to(&Uniform::new(5.0, 15.0)) > 0.4);
    }

    #[test]
    fn histogram_roundtrip() {
        let e = uniform_estimate();
        let h = e.to_histogram(10);
        for i in 0..10 {
            assert!((h.mass(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn moments_of_uniform() {
        let e = uniform_estimate(); // U(0, 10)
        assert!((e.mean() - 5.0).abs() < 1e-12);
        assert!((e.variance() - 100.0 / 12.0).abs() < 1e-9);
        assert!((e.std_dev() - (100.0f64 / 12.0).sqrt()).abs() < 1e-9);
        // Differential entropy of U(0,10) = ln(10).
        assert!((e.entropy() - 10.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn moments_of_asymmetric_skeleton() {
        // 80% of mass uniform on [0,1], 20% uniform on [1,9]:
        // mean = 0.8·0.5 + 0.2·5 = 1.4.
        let e = DensityEstimate::from_cdf(PiecewiseCdf::from_points(vec![
            (0.0, 0.0),
            (1.0, 0.8),
            (9.0, 1.0),
        ]));
        assert!((e.mean() - 1.4).abs() < 1e-12);
        // E[X²] = 0.8/3 + 0.2·(1+9+81)/3 = 0.2667 + 6.0667 = 6.3333.
        let var = 0.8 / 3.0 + 0.2 * 91.0 / 3.0 - 1.4 * 1.4;
        assert!((e.variance() - var).abs() < 1e-9);
        // Mode sits in the dense first segment.
        assert!((e.mode() - 0.5).abs() < 1e-12);
        // Concentrated data has lower entropy than U(0,9) would.
        assert!(e.entropy() < 9.0f64.ln());
    }

    #[test]
    fn kde_prefers_real_samples() {
        let cdf = PiecewiseCdf::from_points(vec![(0.0, 0.0), (10.0, 1.0)]);
        let e = DensityEstimate::with_samples(cdf, vec![5.0; 40]);
        let mut rng = StdRng::seed_from_u64(2);
        // All real samples at 5.0 → KDE peaks there even though the skeleton
        // is uniform. (Silverman would degenerate on identical points; the
        // sample list has slight jitter in realistic runs, so jitter here.)
        let cdf2 = e.skeleton().clone();
        let jittered: Vec<f64> = (0..40).map(|i| 5.0 + (i as f64 - 20.0) * 0.001).collect();
        let e = DensityEstimate::with_samples(cdf2, jittered);
        let kde = e.to_kde(100, &mut rng);
        assert!(kde.pdf(5.0) > kde.pdf(1.0) * 5.0);
    }
}
