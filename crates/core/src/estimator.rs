//! The estimator interface and its report type.

use crate::estimate::DensityEstimate;
use dde_ring::{LookupError, MessageStats, Network, RingId};
use rand::rngs::StdRng;

/// Why an estimation run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// Too few probes succeeded to build a skeleton.
    InsufficientProbes {
        /// Probes that succeeded.
        got: usize,
        /// Probes required.
        need: usize,
    },
    /// The initiating peer is gone.
    InitiatorDead,
    /// The network holds no data at all.
    NoData,
    /// An unrecoverable routing failure.
    Routing(LookupError),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::InsufficientProbes { got, need } => {
                write!(f, "only {got}/{need} probes succeeded")
            }
            EstimateError::InitiatorDead => write!(f, "initiating peer departed"),
            EstimateError::NoData => write!(f, "network holds no data"),
            EstimateError::Routing(e) => write!(f, "routing failure: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<LookupError> for EstimateError {
    fn from(e: LookupError) -> Self {
        match e {
            LookupError::InitiatorDead => EstimateError::InitiatorDead,
            other => EstimateError::Routing(other),
        }
    }
}

/// The outcome of one estimation run: the estimate plus exactly what it cost.
#[derive(Debug, Clone)]
pub struct EstimationReport {
    /// The density/CDF estimate.
    pub estimate: DensityEstimate,
    /// Message/hop cost of this run only (delta of the network counters).
    pub cost: MessageStats,
    /// Peers successfully probed / visited / walked to.
    pub peers_contacted: usize,
    /// Estimated global item count (`N̂`), when the method produces one.
    pub estimated_total: Option<f64>,
    /// Probes/samples the method set out to collect (`k`).
    pub probes_requested: usize,
    /// Probes/samples that actually succeeded. Under faults or churn this
    /// may fall short of `probes_requested`; the estimate is then built
    /// from the partial set rather than erroring.
    pub probes_succeeded: usize,
}

impl EstimationReport {
    /// Total messages this run sent.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn messages(&self) -> u64 {
        self.cost.total_messages()
    }

    /// Total bytes this run moved.
    ///
    /// Determinism: pure function of `self` and its arguments — no RNG, clock, or ambient state.
    pub fn bytes(&self) -> u64 {
        self.cost.total_bytes()
    }
}

/// A global-density estimation strategy runnable against a network.
///
/// Implementations must charge **all** their traffic to the network's
/// [`MessageStats`]; the driver snapshots the counters around the call to
/// attribute cost.
///
/// Estimators are `Send + Sync`: they are plain configuration (all run
/// state lives in the network and the per-run RNG), which lets the parallel
/// experiment runner share them across worker threads.
pub trait DensityEstimator: Send + Sync {
    /// Short name used in experiment tables (e.g. `"df-dde"`).
    fn name(&self) -> &'static str;

    /// Runs one estimation from `initiator` against `net`.
    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError>;
}

/// Snapshots the network's counters, runs `f`, and returns `(result, delta)`.
///
/// Shared plumbing for all estimator implementations.
pub(crate) fn with_cost<T>(
    net: &mut Network,
    f: impl FnOnce(&mut Network) -> Result<T, EstimateError>,
) -> Result<(T, MessageStats), EstimateError> {
    let before = net.stats().clone();
    let out = f(net)?;
    let delta = net.stats().since(&before);
    Ok((out, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = EstimateError::InsufficientProbes { got: 3, need: 8 };
        assert_eq!(e.to_string(), "only 3/8 probes succeeded");
        let e: EstimateError = LookupError::InitiatorDead.into();
        assert_eq!(e, EstimateError::InitiatorDead);
        let e: EstimateError = LookupError::NoRoute.into();
        assert!(matches!(e, EstimateError::Routing(LookupError::NoRoute)));
    }
}
