//! Exact aggregation by a full ring walk — the accuracy gold standard and
//! the `O(P)`-message cost yardstick every cheap estimator is compared to.

use crate::estimate::DensityEstimate;
use crate::estimator::{with_cost, DensityEstimator, EstimateError, EstimationReport};
use dde_ring::{MessageKind, Network, RingId};
use dde_stats::PiecewiseCdf;
use rand::rngs::StdRng;

/// Walks the entire ring, collecting every peer's count and summary, and
/// assembles the exact global CDF (exact at all summary boundaries).
#[derive(Debug, Clone, Default)]
pub struct ExactAggregation {
    /// Cap on support points of the assembled CDF.
    pub support_cap: usize,
}

impl ExactAggregation {
    /// Creates the aggregator with the default support cap.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn new() -> Self {
        Self { support_cap: 16_384 }
    }
}

impl DensityEstimator for ExactAggregation {
    fn name(&self) -> &'static str {
        "exact-walk"
    }

    fn estimate(
        &self,
        net: &mut Network,
        initiator: RingId,
        _rng: &mut StdRng,
    ) -> Result<EstimationReport, EstimateError> {
        if !net.is_alive(initiator) {
            return Err(EstimateError::InitiatorDead);
        }
        let (lo, hi) = net.placement().domain();
        let ((points, n_total, visited), cost) = with_cost(net, |net| {
            // Walk the ring via successor pointers, gathering summaries.
            let mut summaries = Vec::new();
            let mut cur = initiator;
            let limit = net.len() * 2 + 8;
            let mut visited = 0usize;
            loop {
                let node = net.node(cur).expect("walk reached dead node");
                let summary = node.store.summary(net.summary_buckets());
                let succs = node.successors;
                if cur != initiator {
                    // Fetching this peer's statistic: request + reply.
                    net.stats_mut().record(MessageKind::Probe, 8);
                    net.stats_mut().record(MessageKind::ProbeReply, 16 + summary.wire_size());
                }
                summaries.push((summary.total(), summary));
                visited += 1;
                // Find the next alive successor (timeouts on dead ones).
                let mut next = None;
                for s in succs {
                    if net.is_alive(s) {
                        next = Some(s);
                        break;
                    }
                    net.stats_mut().record(MessageKind::LookupTimeout, 8);
                }
                let Some(next) = next else { break };
                if next == initiator || visited > limit {
                    break;
                }
                cur = next;
            }

            let n_total: u64 = summaries.iter().map(|(n, _)| n).sum();
            if n_total == 0 {
                return Err(EstimateError::NoData);
            }

            // Support: union of all boundaries, thinned to the cap.
            let mut support: Vec<f64> = summaries
                .iter()
                .flat_map(|(_, s)| s.boundaries().iter().copied())
                .filter(|x| x.is_finite() && *x > lo && *x < hi)
                .collect();
            support.sort_by(f64::total_cmp);
            support.dedup();
            if support.len() > self.support_cap {
                let step = support.len() as f64 / self.support_cap as f64;
                support =
                    (0..self.support_cap).map(|i| support[(i as f64 * step) as usize]).collect();
                support.dedup();
            }

            // Exact cumulative counts: C(x) = Σᵢ cᵢ(x).
            let mut points: Vec<(f64, f64)> = Vec::with_capacity(support.len() + 2);
            points.push((lo, 0.0));
            for x in support {
                let c: f64 = summaries.iter().map(|(_, s)| s.count_le(x)).sum();
                points.push((x, c / n_total as f64));
            }
            points.push((hi, 1.0));
            Ok((points, n_total, visited))
        })?;

        let cdf = PiecewiseCdf::from_noisy_points(points)
            .ok_or(EstimateError::InsufficientProbes { got: 0, need: 2 })?;
        Ok(EstimationReport {
            estimate: DensityEstimate::from_cdf(cdf),
            cost,
            peers_contacted: visited,
            estimated_total: Some(n_total as f64),
            probes_requested: visited,
            probes_succeeded: visited,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::Placement;
    use dde_stats::dist::DistributionKind;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::{Rng, SeedableRng};

    fn build_net(peers: usize, items: usize, kind: &DistributionKind, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let dist = kind.build(0.0, 100.0);
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| dist.sample(&mut data_rng)).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn visits_every_peer_exactly_once() {
        let mut net = build_net(64, 5_000, &DistributionKind::Uniform, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let initiator = net.random_peer(&mut rng).unwrap();
        let rep = ExactAggregation::new().estimate(&mut net, initiator, &mut rng).unwrap();
        assert_eq!(rep.peers_contacted, 64);
        assert_eq!(rep.estimated_total, Some(5_000.0));
        // Cost is Θ(P): one probe+reply per edge of the walk.
        assert_eq!(rep.cost.count(MessageKind::Probe), 63);
    }

    #[test]
    fn matches_ground_truth_closely() {
        for kind in [
            DistributionKind::Uniform,
            DistributionKind::Pareto { shape: 1.2 },
            DistributionKind::Bimodal,
        ] {
            let mut net = build_net(128, 40_000, &kind, 2);
            net.set_summary_buckets(16);
            let truth = kind.build(0.0, 100.0);
            let mut rng = StdRng::seed_from_u64(2);
            let initiator = net.random_peer(&mut rng).unwrap();
            let rep = ExactAggregation::new().estimate(&mut net, initiator, &mut rng).unwrap();
            // Error sources: sampling noise of the dataset itself plus
            // within-bucket interpolation — both small.
            let ks = rep.estimate.ks_to(truth.as_ref());
            assert!(ks < 0.02, "{}: ks = {ks}", kind.label());
        }
    }

    #[test]
    fn empty_data_errors() {
        let mut net = build_net(8, 0, &DistributionKind::Uniform, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let initiator = net.random_peer(&mut rng).unwrap();
        assert!(matches!(
            ExactAggregation::new().estimate(&mut net, initiator, &mut rng),
            Err(EstimateError::NoData)
        ));
    }

    #[test]
    fn dead_initiator_errors() {
        let mut net = build_net(8, 100, &DistributionKind::Uniform, 4);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            ExactAggregation::new().estimate(&mut net, RingId(1), &mut rng),
            Err(EstimateError::InitiatorDead)
        ));
    }
}
