//! # dde-core
//!
//! Distribution-free data density estimation in ring-based P2P networks —
//! the core contribution of the ICDE 2012 paper this repository reproduces.
//!
//! ## The problem
//!
//! Data items are spread across the peers of a ring overlay
//! ([`dde_ring::Network`]). Any peer wants an estimate of the **global**
//! distribution of the data over its domain — accurately, cheaply (contacting
//! a small subset of peers), without assuming anything about the
//! distribution's shape, and without the bias that naive peer sampling
//! suffers when data volume per peer is skewed.
//!
//! ## The method ([`DfDde`])
//!
//! Inspired by the *inversion method* for random variate generation
//! (`x = F⁻¹(u)` turns uniform `u` into a sample of any `F`):
//!
//! 1. **Phase 1 — sample the global CDF.** Probe `k` uniformly random *ring
//!    positions* (each probe routes in `O(log P)` hops). A probe lands on a
//!    peer with probability equal to its arc fraction — a quantity the peer
//!    itself knows exactly. Horvitz–Thompson reweighting by that inclusion
//!    probability turns the `k` replies into unbiased estimates of the global
//!    item count and of the global cumulative counts, assembled into a
//!    monotone [`CdfSkeleton`].
//! 2. **Phase 2 — inversion sampling.** Unbiased samples of the global data
//!    distribution come from `F̂⁻¹(u)` — synthesized locally from the
//!    skeleton, or fetched as *real tuples* by routing to the peer owning
//!    quantile `u`. Density is read off the skeleton, a histogram, or a KDE
//!    over the samples.
//!
//! Because step 1 corrects with *known* inclusion probabilities and step 2 is
//! exact inversion, nothing anywhere assumes a distribution family — hence
//! *distribution-free*.
//!
//! ## Baselines (for the paper's comparisons)
//!
//! * [`ExactAggregation`] — full ring walk; exact but `O(P)` messages;
//! * [`UniformPeerSampling`] — uniform random peers, equal-weight pooling
//!   (the classic *biased* estimator) or count-weighted pooling (ablation);
//! * [`RandomWalkSampling`] — Metropolis–Hastings walks, the decentralized
//!   way to sample peers ~uniformly, same pooling options;
//! * [`GossipAggregation`] — Push-Sum histogram gossip: converges to the
//!   truth but costs `rounds × P` messages.
//!
//! ## Dynamics
//!
//! [`ContinuousEstimator`] keeps an estimate fresh under churn by refreshing
//! a sliding window of probes (the "dynamic networks" aspect of the title).
//!
//! ## Example
//!
//! ```
//! use dde_core::{DensityEstimator, DfDde, DfDdeConfig};
//! use dde_ring::{Network, Placement, RingId};
//! use rand::{Rng, SeedableRng};
//!
//! // A 64-peer ring storing 5000 values of a skewed workload.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let ids: Vec<RingId> = (0..64).map(|_| RingId(rng.gen())).collect();
//! let mut net = Network::build(ids, Placement::range(0.0, 100.0));
//! let data: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>().powi(3) * 100.0).collect();
//! net.bulk_load(&data);
//!
//! // Any peer estimates the global distribution with 48 probes.
//! let initiator = net.random_peer(&mut rng).unwrap();
//! let report = DfDde::new(DfDdeConfig::with_probes(48))
//!     .estimate(&mut net, initiator, &mut rng)
//!     .unwrap();
//!
//! // Cubed uniforms concentrate low: the median sits far below 50.
//! assert!(report.estimate.quantile(0.5) < 30.0);
//! assert!(report.messages() < 1000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod baseline;
pub mod continuous;
pub mod dfdde;
pub mod estimate;
pub mod estimator;
pub mod exact;
pub mod piggyback;
pub mod retry;
pub mod skeleton;

pub use aggregate::{AggregateEstimator, AggregateReport};
pub use baseline::gossip::{GossipAggregation, GossipConfig};
pub use baseline::random_walk::{RandomWalkConfig, RandomWalkSampling};
pub use baseline::uniform_peer::{PoolWeighting, UniformPeerConfig, UniformPeerSampling};
pub use continuous::{ContinuousConfig, ContinuousEstimator};
pub use dfdde::{DfDde, DfDdeConfig, ProbeStrategy, SampleMode};
pub use estimate::DensityEstimate;
pub use estimator::{DensityEstimator, EstimateError, EstimationReport};
pub use exact::ExactAggregation;
pub use piggyback::ProbePlan;
pub use retry::RetryPolicy;
pub use skeleton::{CdfSkeleton, Weighting};
