//! Piggybacked Phase-1 probing for serving workloads.
//!
//! Under sustained foreground traffic most probe targets are *already being
//! visited*: a lookup that resolves at peer `X` has paid the full routing
//! cost of reaching `X`, and `X`'s probe statistic can ride back on that
//! in-flight reply for the price of the incremental payload alone
//! ([`dde_ring::Network::piggyback_probe`]). A [`ProbePlan`] makes that
//! sound: it draws the Phase-1 probe *points* up front — exactly the way
//! [`DfDde::run_probes`] would, one uniform point per stratum — and then
//! lets the workload driver satisfy any of them opportunistically. Because
//! the points themselves are drawn uniformly (never chosen by the traffic),
//! the inclusion probability of each peer is unchanged and the
//! Horvitz–Thompson correction in [`crate::CdfSkeleton`] stays valid; only
//! the *transport* differs. Dedicated probes (with the configured retry
//! policy, retries staying within-stratum) cover whatever the traffic did
//! not, so the estimate is complete even at zero load.
//!
//! The equivalence claim — a piggybacked estimate agrees with a dedicated
//! one within the DKW band on identical snapshots — is asserted by
//! `crates/sim/tests/piggyback_equivalence.rs`.

use crate::dfdde::{DfDde, ProbeStrategy};
use crate::estimator::EstimateError;
use dde_ring::{Network, ProbeReply, RingId};
use rand::rngs::StdRng;
use rand::Rng;

/// A planned set of Phase-1 probe points whose replies may be satisfied by
/// piggybacking on foreground lookups before dedicated probes are issued.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// The planned probe points, index = stratum.
    points: Vec<RingId>,
    /// Collected replies, aligned with `points`.
    replies: Vec<Option<ProbeReply>>,
    /// How many replies arrived by piggyback (vs dedicated probes).
    piggybacked: usize,
}

impl ProbePlan {
    /// Draws one probe point per stratum from `rng`, exactly as
    /// [`DfDde::run_probes`]'s first attempts would.
    ///
    /// Determinism: draws randomness only from the caller-supplied RNG
    /// stream; identical inputs and RNG state produce identical output.
    pub fn plan(estimator: &DfDde, rng: &mut StdRng) -> Self {
        let cfg = estimator.config();
        let k = cfg.probes;
        let stratum = (u128::from(u64::MAX) + 1) / k.max(1) as u128;
        let points: Vec<RingId> = (0..k)
            .map(|j| match cfg.strategy {
                ProbeStrategy::IidUniform => RingId(rng.gen()),
                ProbeStrategy::Stratified => {
                    let offset = u128::from(rng.gen::<u64>()) % stratum;
                    RingId(((j as u128 % k as u128) * stratum + offset) as u64)
                }
            })
            .collect();
        Self { replies: vec![None; points.len()], points, piggybacked: 0 }
    }

    /// Offers a foreground lookup's resolved `owner` to the plan: every
    /// still-uncovered point that `owner` believes it owns is harvested as a
    /// piggybacked reply. Returns how many points this call covered.
    ///
    /// Determinism: draws no randomness; harvest order is the plan's fixed
    /// stratum order, so identical network state yields identical replies.
    pub fn offer_owner(&mut self, net: &mut Network, owner: RingId) -> usize {
        let mut harvested = 0;
        for (slot, &point) in self.replies.iter_mut().zip(&self.points) {
            if slot.is_some() {
                continue;
            }
            if let Some(reply) = net.piggyback_probe(owner, point) {
                *slot = Some(reply);
                harvested += 1;
            }
        }
        self.piggybacked += harvested;
        harvested
    }

    /// Points not yet covered by a reply. Deterministic read of plan state.
    pub fn pending(&self) -> usize {
        self.replies.iter().filter(|r| r.is_none()).count()
    }

    /// Replies that arrived by piggyback. Deterministic read of plan state.
    pub fn piggybacked(&self) -> usize {
        self.piggybacked
    }

    /// Total planned probe points. Deterministic read of plan state.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan holds no points at all. Deterministic read of plan
    /// state.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Issues dedicated probes for every still-uncovered point (first
    /// attempt at the planned point, retries redrawn within the stratum,
    /// waiting time charged through the retry policy — the same accounting
    /// as [`DfDde::run_probes`]) and returns all replies in stratum order.
    /// A probe whose attempts run out is skipped; the skeleton degrades
    /// gracefully.
    ///
    /// Determinism: randomness comes only from the caller-supplied RNG
    /// stream (retry redraws), in fixed stratum order — identical inputs,
    /// network state, and RNG state produce identical replies and billing.
    pub fn complete(
        mut self,
        estimator: &DfDde,
        net: &mut Network,
        initiator: RingId,
        rng: &mut StdRng,
    ) -> Result<Vec<ProbeReply>, EstimateError> {
        let cfg = estimator.config();
        let retry = cfg.retry;
        let k = self.points.len().max(1);
        let stratum = (u128::from(u64::MAX) + 1) / k as u128;
        for (j, slot) in self.replies.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            for attempt in 0..retry.max_attempts.max(1) {
                let point = if attempt == 0 {
                    self.points[j]
                } else {
                    match cfg.strategy {
                        ProbeStrategy::IidUniform => RingId(rng.gen()),
                        ProbeStrategy::Stratified => {
                            let offset = u128::from(rng.gen::<u64>()) % stratum;
                            RingId(((j as u128 % k as u128) * stratum + offset) as u64)
                        }
                    }
                };
                match net.probe(initiator, point) {
                    Ok(reply) => {
                        *slot = Some(reply);
                        break;
                    }
                    Err(dde_ring::LookupError::InitiatorDead) => {
                        return Err(EstimateError::InitiatorDead)
                    }
                    Err(_) => {
                        net.stats_mut().record_delay(retry.failed_attempt_cost(attempt));
                    }
                }
            }
        }
        Ok(self.replies.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfdde::DfDdeConfig;
    use dde_ring::{MessageKind, Placement};
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids: Vec<RingId> = (0..64).map(|_| RingId(rng.gen())).collect();
        let mut net = Network::build(ids, Placement::range(0.0, 100.0));
        let data: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>() * 100.0).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn plan_draws_one_point_per_stratum() {
        let est = DfDde::new(DfDdeConfig::with_probes(16));
        let mut rng = StdRng::seed_from_u64(1);
        let plan = ProbePlan::plan(&est, &mut rng);
        assert_eq!(plan.len(), 16);
        assert_eq!(plan.pending(), 16);
        let stratum = (u128::from(u64::MAX) + 1) / 16;
        for (j, p) in plan.points.iter().enumerate() {
            let lo = (j as u128 * stratum) as u64;
            assert!(u128::from(p.0) >= j as u128 * stratum, "point {p} below stratum {j} ({lo})");
            assert!(u128::from(p.0) < (j as u128 + 1) * stratum, "point {p} above stratum {j}");
        }
    }

    #[test]
    fn offered_owner_covers_only_its_own_arc_and_charges_piggyback() {
        let mut net = small_net(7);
        let est = DfDde::new(DfDdeConfig::with_probes(32));
        let mut rng = StdRng::seed_from_u64(2);
        let mut plan = ProbePlan::plan(&est, &mut rng);
        // Offer every owner once: all points must end covered, all by
        // piggyback, with zero dedicated probe messages.
        let owners: Vec<RingId> = net.ids().collect();
        let before = net.stats().clone();
        for owner in owners {
            plan.offer_owner(&mut net, owner);
        }
        assert_eq!(plan.pending(), 0);
        assert_eq!(plan.piggybacked(), 32);
        let d = net.stats().since(&before);
        assert_eq!(d.count(MessageKind::ProbePiggyback), 32);
        assert_eq!(d.count(MessageKind::Probe), 0);
        assert_eq!(d.lookups(), 0, "piggybacking must not route");
    }

    #[test]
    fn complete_falls_back_to_dedicated_probes() {
        let mut net = small_net(9);
        let est = DfDde::new(DfDdeConfig::with_probes(24));
        let mut rng = StdRng::seed_from_u64(3);
        let plan = ProbePlan::plan(&est, &mut rng);
        let initiator = net.ids().next().unwrap();
        let before = net.stats().clone();
        let replies = plan.complete(&est, &mut net, initiator, &mut rng).unwrap();
        assert_eq!(replies.len(), 24);
        let d = net.stats().since(&before);
        assert_eq!(d.count(MessageKind::Probe), 24);
        assert_eq!(d.count(MessageKind::ProbePiggyback), 0);
    }

    #[test]
    fn mixed_transport_builds_the_same_shape_skeleton() {
        let mut net = small_net(11);
        let est = DfDde::new(DfDdeConfig::with_probes(32));
        let mut rng = StdRng::seed_from_u64(4);
        let mut plan = ProbePlan::plan(&est, &mut rng);
        // Cover roughly half the plan via piggyback, the rest dedicated.
        for owner in net.ids().collect::<Vec<_>>().into_iter().step_by(2) {
            plan.offer_owner(&mut net, owner);
        }
        let piggybacked = plan.piggybacked();
        assert!(plan.pending() > 0, "some strata should remain for dedicated probes");
        let initiator = net.ids().next().unwrap();
        let replies = plan.complete(&est, &mut net, initiator, &mut rng).unwrap();
        assert_eq!(replies.len(), 32);
        assert!(piggybacked > 0);
        let skeleton = est.build_skeleton(&replies, (0.0, 100.0)).unwrap();
        assert!(skeleton.n_hat > 0.0);
    }
}
