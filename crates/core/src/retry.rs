//! Retry policy for probe RPCs under faults and churn.
//!
//! The cost-model split (shared with `dde_ring::faults`): the *network*
//! charges messages and delivery delays; the *retry policy* charges waiting
//! time — the per-attempt timeout spent discovering that an attempt is lost
//! plus the exponential backoff before re-issuing. Both land in the same
//! [`dde_ring::MessageStats`] delay-unit counter, so a single simulated-time
//! total covers the whole run with nothing counted twice.

/// Retry behaviour for one logical probe (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical probe; `1` disables retries.
    pub max_attempts: usize,
    /// Base backoff in simulated-time cost units; retry `i` (1-based) waits
    /// `base_backoff · 2^(i-1)` before re-issuing.
    pub base_backoff: u64,
    /// Per-attempt timeout in cost units, charged when an attempt is
    /// declared lost.
    pub attempt_timeout: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff: 2, attempt_timeout: 8 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt per probe).
    pub fn none() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// A policy with `max_attempts` attempts and default timing.
    pub fn with_attempts(max_attempts: usize) -> Self {
        Self { max_attempts: max_attempts.max(1), ..Self::default() }
    }

    /// Backoff before retry number `retry` (1-based): exponential in the
    /// retry index, capped to avoid shifting into oblivion.
    pub fn backoff(&self, retry: usize) -> u64 {
        self.base_backoff << retry.saturating_sub(1).min(16)
    }

    /// Simulated-time cost of declaring attempt `attempt` (0-based) lost:
    /// the timeout wait, plus the backoff before the next attempt when one
    /// remains.
    pub fn failed_attempt_cost(&self, attempt: usize) -> u64 {
        let timeout = self.attempt_timeout;
        if attempt + 1 < self.max_attempts {
            timeout + self.backoff(attempt + 1)
        } else {
            timeout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy { max_attempts: 5, base_backoff: 2, attempt_timeout: 8 };
        assert_eq!(p.backoff(1), 2);
        assert_eq!(p.backoff(2), 4);
        assert_eq!(p.backoff(3), 8);
        // Capped shift: no overflow panic for absurd retry counts.
        assert_eq!(p.backoff(100), 2 << 16);
    }

    #[test]
    fn failed_attempt_cost_includes_backoff_only_when_retrying() {
        let p = RetryPolicy { max_attempts: 3, base_backoff: 2, attempt_timeout: 8 };
        assert_eq!(p.failed_attempt_cost(0), 8 + 2); // will retry
        assert_eq!(p.failed_attempt_cost(1), 8 + 4); // will retry
        assert_eq!(p.failed_attempt_cost(2), 8); // final attempt: no backoff
    }

    #[test]
    fn none_disables_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.failed_attempt_cost(0), p.attempt_timeout);
    }

    #[test]
    fn with_attempts_clamps_to_at_least_one() {
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(6).max_attempts, 6);
    }

    #[test]
    fn exhaustion_cost_is_timeouts_plus_all_but_last_backoff() {
        // Full exhaustion of the default policy {4, 2, 8}:
        // (8+2) + (8+4) + (8+8) + 8 = 46 — the closed form the fault
        // integration tests (crates/core/tests/retry_accounting.rs) pin
        // against the live delay counter.
        let p = RetryPolicy::default();
        let total: u64 = (0..p.max_attempts).map(|a| p.failed_attempt_cost(a)).sum();
        let expected = p.max_attempts as u64 * p.attempt_timeout
            + (1..p.max_attempts).map(|r| p.backoff(r)).sum::<u64>();
        assert_eq!(total, expected);
        assert_eq!(total, 46);
    }
}
