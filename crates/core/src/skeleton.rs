//! CDF-skeleton construction from probe replies — the statistical heart of
//! the paper's method.
//!
//! A probe at a uniform random ring position lands on peer `i` with
//! probability `sᵢ` = its arc fraction, which the peer knows exactly (its own
//! id and predecessor define it). For any per-peer quantity `fᵢ`, the
//! Hansen–Hurwitz / Horvitz–Thompson estimator over `k` with-replacement
//! draws,
//!
//! ```text
//!   (1/k) · Σⱼ f_{p(j)} / s_{p(j)},
//! ```
//!
//! is an **unbiased** estimator of `Σᵢ fᵢ` — with no assumption whatsoever
//! about how data is distributed across peers. Applying it to `fᵢ = nᵢ`
//! (local counts) estimates the global item count `N`; applying it to
//! `fᵢ = cᵢ(x)` (local count of items ≤ x, read off the peer's equi-depth
//! summary) estimates the global cumulative count `C(x)`. The ratio
//! `F̂(x) = Ĉ(x)/N̂` is the global CDF estimate, evaluated at the union of all
//! probed summaries' bucket boundaries and assembled into a monotone
//! piecewise-linear skeleton.
//!
//! The `Unweighted` mode drops the `1/s` correction — exactly the bias the
//! paper's "free from sampling bias" claim is about; experiment T3 measures
//! the difference.

use dde_ring::ProbeReply;
use dde_stats::PiecewiseCdf;

/// Whether probe replies are reweighted by inclusion probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Horvitz–Thompson: divide by the peer's known arc fraction (unbiased).
    HorvitzThompson,
    /// No correction (the naive, biased estimator — ablation only).
    Unweighted,
}

/// A global-CDF skeleton estimated from probe replies, with diagnostics.
#[derive(Debug, Clone)]
pub struct CdfSkeleton {
    /// The estimated global CDF.
    pub cdf: PiecewiseCdf,
    /// Estimated global item count `N̂`.
    pub n_hat: f64,
    /// Standard error of `N̂` (per-draw sample variance / √k).
    pub n_stderr: f64,
    /// Probe replies actually used (replies without a known predecessor are
    /// dropped — their inclusion probability is unknown).
    pub probes_used: usize,
}

impl CdfSkeleton {
    /// Builds a skeleton from probe replies.
    ///
    /// `domain` pins the CDF's endpoints; `support_cap` bounds the number of
    /// interior support points (uniformly thinned if the union of summary
    /// boundaries exceeds it). Returns `None` when fewer than 2 usable
    /// replies exist or the estimated total is not positive.
    ///
    /// Determinism: pure function of its inputs — no RNG, clock, or ambient state.
    pub fn from_probes(
        replies: &[ProbeReply],
        domain: (f64, f64),
        support_cap: usize,
        weighting: Weighting,
    ) -> Option<CdfSkeleton> {
        let (lo, hi) = domain;
        debug_assert!(lo < hi);
        // Usable replies: inclusion probability must be known.
        let usable: Vec<(&ProbeReply, f64)> = replies
            .iter()
            .filter_map(|r| {
                let pred = r.predecessor?;
                let s = r.peer.arc_fraction_from(pred);
                (s > 0.0).then_some((r, s))
            })
            .collect();
        if usable.len() < 2 {
            return None;
        }
        let k = usable.len() as f64;

        let weight = |s: f64| match weighting {
            Weighting::HorvitzThompson => 1.0 / s,
            Weighting::Unweighted => 1.0,
        };

        // N̂ and its standard error.
        let draws: Vec<f64> = usable.iter().map(|(r, s)| r.count as f64 * weight(*s)).collect();
        let n_hat = draws.iter().sum::<f64>() / k;
        if n_hat <= 0.0 {
            return None;
        }
        let var = draws.iter().map(|d| (d - n_hat).powi(2)).sum::<f64>() / (k - 1.0).max(1.0);
        let n_stderr = (var / k).sqrt();

        // Support: the union of all summary boundaries, thinned to the cap.
        let mut support: Vec<f64> = usable
            .iter()
            .flat_map(|(r, _)| r.summary.boundaries().iter().copied())
            .filter(|x| x.is_finite() && *x > lo && *x < hi)
            .collect();
        // total_cmp: panic-free and a total order even for non-finite input,
        // so the support order is deterministic with no filter coupling.
        support.sort_by(f64::total_cmp);
        support.dedup();
        if support.len() > support_cap {
            let step = support.len() as f64 / support_cap as f64;
            support = (0..support_cap).map(|i| support[(i as f64 * step) as usize]).collect();
            support.dedup();
        }

        // Ĉ(x) at each support point, then F̂ = Ĉ/N̂.
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(support.len() + 2);
        points.push((lo, 0.0));
        for x in support {
            let c_hat: f64 =
                usable.iter().map(|(r, s)| r.summary.count_le(x) * weight(*s)).sum::<f64>() / k;
            points.push((x, c_hat / n_hat));
        }
        points.push((hi, 1.0));

        let cdf = PiecewiseCdf::from_noisy_points(points)?;
        Some(CdfSkeleton { cdf, n_hat, n_stderr, probes_used: usable.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_ring::RingId;
    use dde_stats::equidepth::EquiDepthSummary;
    use dde_stats::CdfFn;

    /// Builds a fake reply: peer owning `(pred, peer]` with `values` stored.
    fn reply(peer: u64, pred: u64, mut values: Vec<f64>) -> ProbeReply {
        values.sort_by(f64::total_cmp);
        ProbeReply {
            peer: RingId(peer),
            predecessor: Some(RingId(pred)),
            count: values.len() as u64,
            sum: values.iter().sum(),
            sum_sq: values.iter().map(|x| x * x).sum(),
            summary: EquiDepthSummary::from_sorted(&values, 8),
            hops: 0,
        }
    }

    const Q: u64 = u64::MAX / 4;

    /// Four peers, quarter arcs each, uniform data: every quarter of [0,100]
    /// holds 25 items.
    fn uniform_replies() -> Vec<ProbeReply> {
        let vals = |a: usize| -> Vec<f64> { (0..25).map(|i| a as f64 * 25.0 + i as f64).collect() };
        vec![
            reply(Q, 4 * Q - 1, vals(0)), // wraps: pred near top
            reply(2 * Q, Q, vals(1)),
            reply(3 * Q, 2 * Q, vals(2)),
            reply(4 * Q - 1, 3 * Q, vals(3)),
        ]
    }

    #[test]
    fn equal_arcs_recover_uniform_cdf_and_total() {
        let sk = CdfSkeleton::from_probes(
            &uniform_replies(),
            (0.0, 100.0),
            1024,
            Weighting::HorvitzThompson,
        )
        .unwrap();
        assert_eq!(sk.probes_used, 4);
        assert!((sk.n_hat - 100.0).abs() < 1.0, "n_hat = {}", sk.n_hat);
        for x in [10.0, 25.0, 50.0, 75.0, 90.0] {
            assert!((sk.cdf.cdf(x) - x / 100.0).abs() < 0.03, "cdf({x}) = {}", sk.cdf.cdf(x));
        }
    }

    #[test]
    fn ht_corrects_unequal_arcs() {
        // Two peers: one owns 3/4 of the ring with 10 items, the other 1/4
        // with 90 items. Probing each exactly once (as if one uniform probe
        // hit each), HT must recover N = 100; unweighted sees 50.
        let big_arc = reply(3 * Q, 4 * Q - 1, (0..10).map(|i| i as f64 * 7.5).collect());
        let small_arc = reply(4 * Q - 1, 3 * Q, (0..90).map(|i| 75.0 + i as f64 * 0.27).collect());
        let replies = vec![big_arc, small_arc];

        let ht = CdfSkeleton::from_probes(&replies, (0.0, 100.0), 1024, Weighting::HorvitzThompson)
            .unwrap();
        // HT: (10/0.75 + 90/0.25)/2 = (13.33 + 360)/2 = 186.7 — unbiased only
        // in expectation over the probe distribution, not per-draw. Verify
        // instead that weighting changed the answer in the right direction:
        let raw =
            CdfSkeleton::from_probes(&replies, (0.0, 100.0), 1024, Weighting::Unweighted).unwrap();
        assert!((raw.n_hat - 50.0).abs() < 1e-9);
        assert!(ht.n_hat > raw.n_hat); // up-weights the dense small arc

        // The CDF shapes differ materially: HT pushes mass toward the dense
        // region [75, 100].
        assert!(ht.cdf.cdf(75.0) < raw.cdf.cdf(75.0));
    }

    #[test]
    fn unbiasedness_over_probe_distribution() {
        // Analytic check of the estimator itself: peers with arc fractions
        // s = [0.75, 0.25] and counts [10, 90]. E[n̂ per draw] =
        // Σ s_i · (n_i/s_i) = Σ n_i = 100 — exactly N, independent of skew.
        let s = [0.75, 0.25];
        let n = [10.0, 90.0];
        let expectation: f64 = s.iter().zip(&n).map(|(si, ni)| si * (ni / si)).sum();
        assert_eq!(expectation, 100.0);
    }

    #[test]
    fn drops_replies_without_predecessor() {
        let mut replies = uniform_replies();
        replies[0].predecessor = None;
        let sk = CdfSkeleton::from_probes(&replies, (0.0, 100.0), 1024, Weighting::HorvitzThompson)
            .unwrap();
        assert_eq!(sk.probes_used, 3);
    }

    #[test]
    fn too_few_replies_is_none() {
        let replies = vec![uniform_replies().remove(0)];
        assert!(CdfSkeleton::from_probes(&replies, (0.0, 100.0), 1024, Weighting::HorvitzThompson)
            .is_none());
        assert!(CdfSkeleton::from_probes(&[], (0.0, 100.0), 64, Weighting::Unweighted).is_none());
    }

    #[test]
    fn support_cap_is_respected() {
        let sk = CdfSkeleton::from_probes(
            &uniform_replies(),
            (0.0, 100.0),
            4,
            Weighting::HorvitzThompson,
        )
        .unwrap();
        // lo + capped interior + hi.
        assert!(sk.cdf.points().len() <= 6, "{} points", sk.cdf.points().len());
    }

    #[test]
    fn duplicate_probes_are_separate_draws() {
        // Hitting the same peer twice (with replacement) must not crash and
        // keeps the estimator consistent.
        let mut replies = uniform_replies();
        replies.push(replies[0].clone());
        let sk = CdfSkeleton::from_probes(&replies, (0.0, 100.0), 1024, Weighting::HorvitzThompson)
            .unwrap();
        assert_eq!(sk.probes_used, 5);
        assert!(sk.n_hat > 0.0);
    }

    #[test]
    fn stderr_is_zero_for_identical_draws() {
        // All peers identical in weighted count → zero variance.
        let sk = CdfSkeleton::from_probes(
            &uniform_replies(),
            (0.0, 100.0),
            1024,
            Weighting::HorvitzThompson,
        )
        .unwrap();
        assert!(sk.n_stderr < 1e-6, "stderr = {}", sk.n_stderr);
    }
}
