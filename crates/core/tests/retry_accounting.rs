//! Integration tests for `core::retry` against a live faulty network: cost
//! accounting on exhaustion, within-stratum re-issue, and graceful skeleton
//! degradation from a partial reply set.

use dde_core::{DfDde, DfDdeConfig, RetryPolicy};
use dde_ring::{FaultPlan, MessageKind, Network, Placement, RingId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulated-time cost of exhausting one logical probe under `policy`:
/// `Σ failed_attempt_cost(a)` over all attempts.
fn exhaustion_cost(policy: &RetryPolicy) -> u64 {
    (0..policy.max_attempts).map(|a| policy.failed_attempt_cost(a)).sum()
}

/// Every probe attempt times out (all peers sick), so every logical probe
/// exhausts its budget. The delay counter must hold *exactly* the retry
/// policy's waiting time — `k · Σ failed_attempt_cost` — and the fault
/// counter exactly one timeout per attempt: the network charges messages,
/// the policy charges waits, nothing is counted twice.
#[test]
fn exhaustion_charges_exact_timeout_and_backoff_sum() {
    // Two peers: the initiator owns a ~5-point arc of the 2^64 ring, so
    // every probe position is remote and must cross the sick link.
    let mut net = Network::build(vec![RingId(5), RingId(10)], Placement::range(0.0, 100.0));
    net.set_fault_plan(FaultPlan::new(1).with_sick(1.0, 1 << 32));

    let k = 8;
    let policy = RetryPolicy::default();
    let est = DfDde::new(DfDdeConfig { retry: policy, ..DfDdeConfig::with_probes(k) });
    let delay_before = net.stats().total_delay();
    let sick_before = net.stats().count(MessageKind::FaultSick);

    let mut rng = StdRng::seed_from_u64(7);
    let replies = est.run_probes(&mut net, RingId(10), &mut rng).expect("initiator alive");

    assert!(replies.is_empty(), "all probes must exhaust, got {} replies", replies.len());
    // Default policy {4 attempts, backoff 2, timeout 8}: 10 + 12 + 16 + 8 = 46.
    assert_eq!(exhaustion_cost(&policy), 46);
    assert_eq!(
        net.stats().total_delay() - delay_before,
        k as u64 * 46,
        "waiting time must be exactly k probes x exhaustion cost"
    );
    assert_eq!(
        net.stats().count(MessageKind::FaultSick) - sick_before,
        (k * policy.max_attempts) as u64,
        "exactly one timeout per attempt"
    );
}

/// Re-issued attempts must stay inside their probe's ring stratum: with four
/// peers at the four quarter points and `k = 4`, each stratum has a distinct
/// owner, so even under loss (forcing re-issues) the reply set must cover
/// all four peers — a retried probe leaking into a neighbouring stratum
/// would double-cover one owner and miss another.
#[test]
fn retries_reissue_within_their_stratum() {
    let q = 1u64 << 62;
    let ids = vec![RingId(0), RingId(q), RingId(2 * q), RingId(3 * q)];
    let mut net = Network::build(ids, Placement::range(0.0, 100.0));
    net.set_fault_plan(FaultPlan::new(3).with_loss(0.4));

    let est = DfDde::new(DfDdeConfig::with_probes(4));
    let delay_before = net.stats().total_delay();
    let mut rng = StdRng::seed_from_u64(11);
    let replies = est.run_probes(&mut net, RingId(0), &mut rng).expect("initiator alive");

    assert_eq!(replies.len(), 4, "all four probes succeed within the attempt budget");
    let mut peers: Vec<RingId> = replies.iter().map(|r| r.peer).collect();
    peers.sort();
    // Stratum j = [j·2^62, (j+1)·2^62) is owned by peer (j+1)·2^62 mod 2^64.
    assert_eq!(
        peers,
        vec![RingId(0), RingId(q), RingId(2 * q), RingId(3 * q)],
        "each stratum's probe must land on that stratum's owner, retries included"
    );
    assert!(
        net.stats().total_delay() > delay_before,
        "seed 11 at 40% loss must force at least one charged retry"
    );
}

/// A probe whose attempts run out is skipped, not fabricated: under heavy
/// loss with a small retry budget the reply set is partial, and the skeleton
/// built from it still exists and is a monotone CDF over the domain.
#[test]
fn partial_reply_set_still_yields_monotone_skeleton() {
    let seq = dde_stats::rng::SeedSequence::new(5);
    let mut id_rng = seq.stream(dde_stats::rng::Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..64).map(|_| RingId(rand::Rng::gen(&mut id_rng))).collect();
    ids.sort();
    ids.dedup();
    let mut net = Network::build(ids, Placement::range(0.0, 100.0));
    let mut data_rng = seq.stream(dde_stats::rng::Component::Dataset, 0);
    let data: Vec<f64> = (0..5_000).map(|_| rand::Rng::gen::<f64>(&mut data_rng) * 100.0).collect();
    net.bulk_load(&data);
    net.set_fault_plan(FaultPlan::new(9).with_loss(0.7));

    let k = 16;
    let est = DfDde::new(DfDdeConfig {
        retry: RetryPolicy::with_attempts(2),
        ..DfDdeConfig::with_probes(k)
    });
    let initiator = net.ids().next().expect("nonempty");
    let mut rng = StdRng::seed_from_u64(13);
    let replies = est.run_probes(&mut net, initiator, &mut rng).expect("initiator alive");

    assert!(
        replies.len() >= 2 && replies.len() < k,
        "seed 13 at 70% loss with 2 attempts must yield a partial set, got {}",
        replies.len()
    );
    let skeleton = est.build_skeleton(&replies, (0.0, 100.0)).expect("partial set suffices");
    assert_eq!(skeleton.probes_used, replies.len());
    let mut prev = f64::NEG_INFINITY;
    for i in 0..=64 {
        let x = 100.0 * i as f64 / 64.0;
        let c = dde_stats::CdfFn::cdf(&skeleton.cdf, x);
        assert!((-1e-9..=1.0 + 1e-9).contains(&c), "cdf({x}) = {c}");
        assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
        prev = c;
    }
}
