//! Per-file rule checking: needle scan, `#[cfg(test)]` regions, the
//! `ddelint::allow` grammar, and the D6 doc-contract rule.

use crate::lexer::{lex, Lexed};
use crate::policy;
use crate::rules::{Boundary, RuleId, NEEDLES};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {} — `{}`",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.rule.name(),
            self.message,
            self.snippet
        )
    }
}

/// A parsed `ddelint::allow(rule, reason)` escape.
#[derive(Debug)]
struct Allow {
    rule: RuleId,
    /// Lines this allow covers: its own line, plus the next code-bearing
    /// line when the allow stands alone on its line.
    lines: Vec<usize>,
    /// Where the allow itself sits (for A1 reporting).
    line: usize,
    col: usize,
    at: usize,
    used: bool,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts the trimmed source line containing `byte`, capped for display.
fn snippet_at(src: &str, lexed: &Lexed, byte: usize) -> String {
    let (line, _) = lexed.pos(byte);
    let (start, end) = lexed.line_span(line);
    let text = src[start..end].trim();
    if text.len() > 90 {
        let mut cut = 87;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &text[..cut])
    } else {
        text.to_string()
    }
}

/// Byte ranges of `#[cfg(test)]`-gated items (modules or functions), found
/// by brace-matching in the code mask so braces inside literals can't
/// confuse the span.
fn test_regions(mask: &str) -> Vec<(usize, usize)> {
    let bytes = mask.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(rel) = mask[from..].find("#[cfg(test)]") {
        let attr = from + rel;
        let mut i = attr + "#[cfg(test)]".len();
        // Walk to the gated item's opening brace; stop at `;` (a gated
        // `use`/`mod foo;` has no body to skip).
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        if let Some(start) = open {
            let mut depth = 0usize;
            let mut j = start;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((attr, j + 1));
            from = j + 1;
        } else {
            from = i.max(attr + 1);
        }
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], byte: usize) -> bool {
    regions.iter().any(|&(a, b)| byte >= a && byte < b)
}

/// Parses every `ddelint::allow(rule, reason)` escape in the file's
/// comments. Malformed escapes become `A0` violations immediately.
fn parse_allows(src: &str, lexed: &Lexed, path: &str, out: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        // Escapes live in plain comments only; doc comments are prose and may
        // quote the allow grammar without being parsed as escapes.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let mut search = 0;
        while let Some(rel) = comment.text[search..].find("ddelint::allow") {
            let key = search + rel;
            let at = comment.start + key;
            let (line, col) = lexed.pos(at);
            let after = &comment.text[key + "ddelint::allow".len()..];
            search = key + "ddelint::allow".len();
            let mut bad = |msg: String| {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    col,
                    rule: RuleId::A0,
                    message: msg,
                    snippet: snippet_at(src, lexed, at),
                });
            };
            let Some(body) = after.strip_prefix('(').and_then(|rest| {
                // Find the matching close paren, tolerating parens in the
                // reason text.
                let mut depth = 1usize;
                for (i, c) in rest.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(&rest[..i]);
                            }
                        }
                        _ => {}
                    }
                }
                None
            }) else {
                bad("allow must be written `ddelint::allow(rule, reason)`".to_string());
                continue;
            };
            let Some((rule_txt, reason)) = body.split_once(',') else {
                bad(format!(
                    "allow `({})` is missing a reason — every escape must say why",
                    body.trim()
                ));
                continue;
            };
            let rule_txt = rule_txt.trim();
            let Some(rule) = RuleId::parse(rule_txt) else {
                bad(format!("unknown rule `{rule_txt}` in allow"));
                continue;
            };
            if !rule.allowable() {
                bad(format!("rule {} cannot be allowed away", rule.code()));
                continue;
            }
            let reason = reason.trim().trim_matches('"').trim();
            if reason.is_empty() {
                bad(format!("allow for {} has an empty reason", rule.code()));
                continue;
            }
            // Coverage: the allow's own line, plus — when nothing but the
            // comment occupies that line — the next line carrying code.
            let mut lines = vec![line];
            let (ls, le) = lexed.line_span(line);
            let own_line_code = lexed.mask[ls..le].trim();
            if own_line_code.is_empty() {
                let mut next = line + 1;
                while next <= lexed.line_count() {
                    let (ns, ne) = lexed.line_span(next);
                    if !lexed.mask[ns..ne].trim().is_empty() {
                        lines.push(next);
                        break;
                    }
                    next += 1;
                }
            }
            allows.push(Allow { rule, lines, line, col, at, used: false });
        }
    }
    allows
}

/// Scans the code mask for the textual needles D1–D5.
fn scan_needles(
    src: &str,
    lexed: &Lexed,
    path: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let mask = lexed.mask.as_bytes();
    for needle in NEEDLES {
        if !policy::applies(needle.rule, path) {
            continue;
        }
        let pat = needle.text.as_bytes();
        let mut from = 0;
        while let Some(rel) = lexed.mask[from..].find(needle.text) {
            let at = from + rel;
            from = at + 1;
            let head_ok = match needle.boundary {
                Boundary::Ident => at == 0 || !is_ident_byte(mask[at - 1]),
                Boundary::Exact => true,
            };
            let end = at + pat.len();
            let tail_ok = match needle.boundary {
                Boundary::Ident => end >= mask.len() || !is_ident_byte(mask[end]),
                Boundary::Exact => true,
            };
            if !head_ok || !tail_ok {
                continue;
            }
            if policy::test_exempt(needle.rule) && in_regions(regions, at) {
                continue;
            }
            let (line, col) = lexed.pos(at);
            out.push(Violation {
                path: path.to_string(),
                line,
                col,
                rule: needle.rule,
                message: format!("`{}` — {}", needle.text, needle.rule.describe()),
                snippet: snippet_at(src, lexed, at),
            });
        }
    }
}

/// D6: every `pub fn` in an estimator module carries a doc comment naming
/// its determinism contract (any doc line mentioning "determinis…").
fn check_d6(
    src: &str,
    lexed: &Lexed,
    path: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    if !policy::applies(RuleId::D6, path) {
        return;
    }
    let mask = lexed.mask.as_bytes();
    let mut from = 0;
    while let Some(rel) = lexed.mask[from..].find("pub fn") {
        let at = from + rel;
        from = at + 1;
        let head_ok = at == 0 || !is_ident_byte(mask[at - 1]);
        let end = at + "pub fn".len();
        let tail_ok = end < mask.len() && mask[end] == b' ';
        if !head_ok || !tail_ok || in_regions(regions, at) {
            continue;
        }
        let (line, col) = lexed.pos(at);
        // Walk upward over the item's contiguous header: doc comments and
        // attributes directly above the `pub fn` line.
        let mut docs = String::new();
        let mut up = line;
        while up > 1 {
            up -= 1;
            let (ls, le) = lexed.line_span(up);
            let code = lexed.mask[ls..le].trim();
            let text = src[ls..le].trim();
            if text.starts_with("///") {
                docs.push_str(text);
                docs.push('\n');
            } else if code.starts_with("#[") || (code.is_empty() && text.starts_with("//")) {
                // Attribute or an ordinary comment inside the header — keep
                // climbing (allow comments live here too).
            } else {
                break;
            }
        }
        let lower = docs.to_lowercase();
        let message = if docs.is_empty() {
            Some("pub fn has no doc comment; document its determinism contract")
        } else if !lower.contains("determinis") {
            Some("doc comment does not name the fn's determinism contract")
        } else {
            None
        };
        if let Some(message) = message {
            out.push(Violation {
                path: path.to_string(),
                line,
                col,
                rule: RuleId::D6,
                message: message.to_string(),
                snippet: snippet_at(src, lexed, at),
            });
        }
    }
}

/// Checks one file, returning its violations sorted by position.
///
/// `path` must be workspace-relative with `/` separators — rule scoping is
/// path-driven, so the same contents lint differently under different paths
/// (which is what the fixture tests exploit).
pub fn check_source(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let regions = test_regions(&lexed.mask);
    let mut raw = Vec::new();
    let mut allows = parse_allows(src, &lexed, path, &mut raw);
    scan_needles(src, &lexed, path, &regions, &mut raw);
    check_d6(src, &lexed, path, &regions, &mut raw);

    // Apply allows: a violation on a covered line with a matching rule is
    // suppressed and marks the allow used.
    let mut kept: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            if matches!(v.rule, RuleId::A0 | RuleId::A1) {
                return true;
            }
            for allow in &mut allows {
                if allow.rule == v.rule && allow.lines.contains(&v.line) {
                    allow.used = true;
                    return false;
                }
            }
            true
        })
        .collect();

    for allow in &allows {
        if !allow.used {
            kept.push(Violation {
                path: path.to_string(),
                line: allow.line,
                col: allow.col,
                rule: RuleId::A1,
                message: format!(
                    "allow for {}[{}] suppressed nothing — remove the stale escape",
                    allow.rule.code(),
                    allow.rule.name()
                ),
                snippet: snippet_at(src, &lexed, allow.at),
            });
        }
    }

    kept.sort_by_key(|a| (a.line, a.col, a.rule));
    kept
}
