//! Rule checking: the per-file passes (needle scan, `#[cfg(test)]` regions,
//! the `ddelint::allow` grammar, D3 alias resolution, the D6 doc-contract
//! rule) and the workspace-level orchestration that layers the cross-file
//! rules (D8 taint, D9 exhaustiveness, D10 sans-IO) on top.
//!
//! A [`FileCheck`] holds one file's lexed mask, parsed items, allows, and
//! accumulated raw violations. [`check_workspace`] builds one per file,
//! runs the per-file passes, hands the set to the graph-based passes, and
//! only then applies allows — so a `ddelint::allow(det-taint, ...)` works
//! exactly like an allow for a needle rule, and a stale one still trips A1.

use crate::graph::SymbolGraph;
use crate::lexer::{lex, Lexed};
use crate::parse::{in_regions, parse, test_regions, ParsedFile};
use crate::policy;
use crate::rules::{Boundary, RuleId, NEEDLES};
use crate::{proto, taint};

use std::collections::BTreeSet;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {} — `{}`",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.rule.name(),
            self.message,
            self.snippet
        )
    }
}

/// A parsed `ddelint::allow(rule, reason)` escape.
#[derive(Debug)]
struct Allow {
    rule: RuleId,
    /// Lines this allow covers: its own line, plus the next code-bearing
    /// line when the allow stands alone on its line.
    lines: Vec<usize>,
    /// Where the allow itself sits (for A1 reporting).
    line: usize,
    col: usize,
    at: usize,
    used: bool,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts the trimmed source line containing `byte`, capped for display.
pub(crate) fn snippet_at(src: &str, lexed: &Lexed, byte: usize) -> String {
    let (line, _) = lexed.pos(byte);
    let (start, end) = lexed.line_span(line);
    let text = src[start..end].trim();
    if text.len() > 90 {
        let mut cut = 87;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &text[..cut])
    } else {
        text.to_string()
    }
}

/// Parses every `ddelint::allow(rule, reason)` escape in the file's
/// comments. Malformed escapes become `A0` violations immediately.
fn parse_allows(src: &str, lexed: &Lexed, path: &str, out: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        // Escapes live in plain comments only; doc comments are prose and may
        // quote the allow grammar without being parsed as escapes.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let mut search = 0;
        while let Some(rel) = comment.text[search..].find("ddelint::allow") {
            let key = search + rel;
            let at = comment.start + key;
            let (line, col) = lexed.pos(at);
            let after = &comment.text[key + "ddelint::allow".len()..];
            search = key + "ddelint::allow".len();
            let mut bad = |msg: String| {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    col,
                    rule: RuleId::A0,
                    message: msg,
                    snippet: snippet_at(src, lexed, at),
                });
            };
            let Some(body) = after.strip_prefix('(').and_then(|rest| {
                // Find the matching close paren, tolerating parens in the
                // reason text.
                let mut depth = 1usize;
                for (i, c) in rest.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(&rest[..i]);
                            }
                        }
                        _ => {}
                    }
                }
                None
            }) else {
                bad("allow must be written `ddelint::allow(rule, reason)`".to_string());
                continue;
            };
            let Some((rule_txt, reason)) = body.split_once(',') else {
                bad(format!(
                    "allow `({})` is missing a reason — every escape must say why",
                    body.trim()
                ));
                continue;
            };
            let rule_txt = rule_txt.trim();
            let Some(rule) = RuleId::parse(rule_txt) else {
                bad(format!("unknown rule `{rule_txt}` in allow"));
                continue;
            };
            if !rule.allowable() {
                bad(format!("rule {} cannot be allowed away", rule.code()));
                continue;
            }
            let reason = reason.trim().trim_matches('"').trim();
            if reason.is_empty() {
                bad(format!("allow for {} has an empty reason", rule.code()));
                continue;
            }
            // Coverage: the allow's own line, plus — when nothing but the
            // comment occupies that line — the next line carrying code.
            let mut lines = vec![line];
            let (ls, le) = lexed.line_span(line);
            let own_line_code = lexed.mask[ls..le].trim();
            if own_line_code.is_empty() {
                let mut next = line + 1;
                while next <= lexed.line_count() {
                    let (ns, ne) = lexed.line_span(next);
                    if !lexed.mask[ns..ne].trim().is_empty() {
                        lines.push(next);
                        break;
                    }
                    next += 1;
                }
            }
            allows.push(Allow { rule, lines, line, col, at, used: false });
        }
    }
    allows
}

/// One file mid-lint: lexed, parsed, allows collected, raw violations
/// accumulating. The workspace passes append to `raw` via [`FileCheck::push`];
/// [`FileCheck::finish`] applies allows and reports stale ones.
pub struct FileCheck {
    /// Workspace-relative path (rule scoping is path-driven).
    pub path: String,
    /// Original source text.
    pub src: String,
    /// Lexed mask and comment list.
    pub lexed: Lexed,
    /// Parsed items (fns, uses, enums).
    pub parsed: ParsedFile,
    regions: Vec<(usize, usize)>,
    allows: Vec<Allow>,
    raw: Vec<Violation>,
}

impl FileCheck {
    /// Lexes, parses, and runs all per-file passes on one file.
    pub fn new(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let regions = test_regions(&lexed.mask);
        let mut raw = Vec::new();
        let allows = parse_allows(src, &lexed, path, &mut raw);
        let mut fc = Self {
            path: path.to_string(),
            src: src.to_string(),
            lexed,
            parsed,
            regions,
            allows,
            raw,
        };
        fc.scan_needles();
        fc.check_d3_aliases();
        fc.check_d6();
        fc
    }

    /// Whether `byte` sits inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, byte: usize) -> bool {
        in_regions(&self.regions, byte)
    }

    /// Lines covered by an allow for `rule` (for taint-source defusing).
    pub fn allowed_lines(&self, rule: RuleId) -> BTreeSet<usize> {
        self.allows
            .iter()
            .filter(|a| a.rule == rule)
            .flat_map(|a| a.lines.iter().copied())
            .collect()
    }

    /// Appends a raw violation (allows are applied at [`FileCheck::finish`]).
    pub fn push(&mut self, v: Violation) {
        self.raw.push(v);
    }

    /// Scans the code mask for the textual needles (D1–D5, D7).
    fn scan_needles(&mut self) {
        let mask = self.lexed.mask.as_bytes();
        for needle in NEEDLES {
            if !policy::applies(needle.rule, &self.path) {
                continue;
            }
            let pat = needle.text.as_bytes();
            let mut from = 0;
            while let Some(rel) = self.lexed.mask[from..].find(needle.text) {
                let at = from + rel;
                from = at + 1;
                let head_ok = match needle.boundary {
                    Boundary::Ident => at == 0 || !is_ident_byte(mask[at - 1]),
                    Boundary::Exact => true,
                };
                let end = at + pat.len();
                let tail_ok = match needle.boundary {
                    Boundary::Ident => end >= mask.len() || !is_ident_byte(mask[end]),
                    Boundary::Exact => true,
                };
                if !head_ok || !tail_ok {
                    continue;
                }
                if policy::test_exempt(needle.rule) && in_regions(&self.regions, at) {
                    continue;
                }
                let (line, col) = self.lexed.pos(at);
                self.raw.push(Violation {
                    path: self.path.clone(),
                    line,
                    col,
                    rule: needle.rule,
                    message: format!("`{}` — {}", needle.text, needle.rule.describe()),
                    snippet: snippet_at(&self.src, &self.lexed, at),
                });
            }
        }
    }

    /// D3 through the symbol table: a `use ... as Alias` whose target is an
    /// unordered map is flagged at every *usage* of the alias, not just at
    /// the declaration the needle scan already catches — so allowing the
    /// declaration line cannot quietly bless a whole file of `Map::new()`.
    fn check_d3_aliases(&mut self) {
        if !policy::applies(RuleId::D3, &self.path) {
            return;
        }
        let mask = self.lexed.mask.as_bytes();
        for alias in &self.parsed.uses {
            let Some(target) = alias.segments.last() else { continue };
            if target != "HashMap" && target != "HashSet" {
                continue;
            }
            if alias.name == *target {
                continue; // Unaliased import: usages carry the needle name.
            }
            let decl_line = self.lexed.line_of(alias.at);
            let mut from = 0;
            while let Some(rel) = self.lexed.mask[from..].find(alias.name.as_str()) {
                let at = from + rel;
                from = at + 1;
                let end = at + alias.name.len();
                let head_ok = at == 0 || !is_ident_byte(mask[at - 1]);
                let tail_ok = end >= mask.len() || !is_ident_byte(mask[end]);
                if !head_ok || !tail_ok {
                    continue;
                }
                if self.lexed.line_of(at) == decl_line {
                    continue; // The declaration itself is the needle's catch.
                }
                let (line, col) = self.lexed.pos(at);
                self.raw.push(Violation {
                    path: self.path.clone(),
                    line,
                    col,
                    rule: RuleId::D3,
                    message: format!(
                        "`{}` is `{}` under an alias — {}",
                        alias.name,
                        alias.segments.join("::"),
                        RuleId::D3.describe()
                    ),
                    snippet: snippet_at(&self.src, &self.lexed, at),
                });
            }
        }
    }

    /// D6: every `pub fn` in an estimator module carries a doc comment
    /// naming its determinism contract (any doc line mentioning
    /// "determinis…").
    fn check_d6(&mut self) {
        if !policy::applies(RuleId::D6, &self.path) {
            return;
        }
        let mask = self.lexed.mask.as_bytes();
        let mut from = 0;
        while let Some(rel) = self.lexed.mask[from..].find("pub fn") {
            let at = from + rel;
            from = at + 1;
            let head_ok = at == 0 || !is_ident_byte(mask[at - 1]);
            let end = at + "pub fn".len();
            let tail_ok = end < mask.len() && mask[end] == b' ';
            if !head_ok || !tail_ok || in_regions(&self.regions, at) {
                continue;
            }
            let (line, col) = self.lexed.pos(at);
            // Walk upward over the item's contiguous header: doc comments and
            // attributes directly above the `pub fn` line.
            let mut docs = String::new();
            let mut up = line;
            while up > 1 {
                up -= 1;
                let (ls, le) = self.lexed.line_span(up);
                let code = self.lexed.mask[ls..le].trim();
                let text = self.src[ls..le].trim();
                if text.starts_with("///") {
                    docs.push_str(text);
                    docs.push('\n');
                } else if code.starts_with("#[") || (code.is_empty() && text.starts_with("//")) {
                    // Attribute or an ordinary comment inside the header —
                    // keep climbing (allow comments live here too).
                } else {
                    break;
                }
            }
            let lower = docs.to_lowercase();
            let message = if docs.is_empty() {
                Some("pub fn has no doc comment; document its determinism contract")
            } else if !lower.contains("determinis") {
                Some("doc comment does not name the fn's determinism contract")
            } else {
                None
            };
            if let Some(message) = message {
                self.raw.push(Violation {
                    path: self.path.clone(),
                    line,
                    col,
                    rule: RuleId::D6,
                    message: message.to_string(),
                    snippet: snippet_at(&self.src, &self.lexed, at),
                });
            }
        }
    }

    /// Applies allows, reports stale ones (A1), and returns this file's
    /// violations sorted by position.
    pub fn finish(mut self) -> Vec<Violation> {
        let allows = &mut self.allows;
        let mut kept: Vec<Violation> = self
            .raw
            .into_iter()
            .filter(|v| {
                if matches!(v.rule, RuleId::A0 | RuleId::A1) {
                    return true;
                }
                for allow in allows.iter_mut() {
                    if allow.rule == v.rule && allow.lines.contains(&v.line) {
                        allow.used = true;
                        return false;
                    }
                }
                true
            })
            .collect();

        for allow in allows.iter() {
            if !allow.used {
                kept.push(Violation {
                    path: self.path.clone(),
                    line: allow.line,
                    col: allow.col,
                    rule: RuleId::A1,
                    message: format!(
                        "allow for {}[{}] suppressed nothing — remove the stale escape",
                        allow.rule.code(),
                        allow.rule.name()
                    ),
                    snippet: snippet_at(&self.src, &self.lexed, allow.at),
                });
            }
        }

        kept.sort_by_key(|a| (a.line, a.col, a.rule));
        kept
    }
}

/// Checks one file in isolation (per-file rules only), returning its
/// violations sorted by position.
///
/// `path` must be workspace-relative with `/` separators — rule scoping is
/// path-driven, so the same contents lint differently under different paths
/// (which is what the fixture tests exploit). The cross-file rules (D8, D9,
/// D10) need the whole corpus; use [`check_workspace`] for those.
pub fn check_source(path: &str, src: &str) -> Vec<Violation> {
    FileCheck::new(path, src).finish()
}

/// Checks a whole corpus of files: per-file rules, then the symbol-graph
/// passes (D8 taint, D9 exhaustiveness, D10 sans-IO), then allow
/// application. Violations come back grouped per file in input order, each
/// file's sorted by position — deterministic in the input.
pub fn check_workspace(inputs: &[(String, String)]) -> Vec<Violation> {
    let mut files: Vec<FileCheck> =
        inputs.iter().map(|(path, src)| FileCheck::new(path, src)).collect();
    let graph = SymbolGraph::build(&files);
    taint::check_d8(&mut files, &graph);
    proto::check_d9(&mut files);
    proto::check_d10(&mut files);
    files.into_iter().flat_map(FileCheck::finish).collect()
}
