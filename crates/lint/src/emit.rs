//! Machine-readable report formats: plain JSON and SARIF 2.1.0.
//!
//! Both emitters are hand-rolled (the workspace builds offline; no serde)
//! and deterministic: rules in declaration order, results in the order the
//! checker produced them, no timestamps. CI uploads the SARIF artifact to
//! GitHub code scanning so violations annotate the PR diff.

use crate::check::Violation;
use crate::rules::RuleId;

/// All rules in declaration order, for rule tables.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::D1,
    RuleId::D2,
    RuleId::D3,
    RuleId::D4,
    RuleId::D5,
    RuleId::D6,
    RuleId::D7,
    RuleId::D8,
    RuleId::D9,
    RuleId::D10,
    RuleId::A0,
    RuleId::A1,
];

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders violations as the `ddelint` JSON report.
///
/// Deterministic: field order is fixed and no environment (time, host,
/// absolute paths) leaks in — the golden-fixture test byte-compares output.
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\n  \"tool\": \"ddelint\",\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"name\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}",
            esc(&v.path),
            v.line,
            v.col,
            v.rule.code(),
            v.rule.name(),
            esc(&v.message),
            esc(&v.snippet),
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", violations.len()));
    out
}

/// Renders violations as a minimal SARIF 2.1.0 log (one run, one driver,
/// every rule in the driver's rule table, one result per violation).
///
/// Deterministic for the same input corpus — see [`to_json`].
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"ddelint\",\n          \
         \"informationUri\": \"https://example.invalid/ddelint\",\n          \"rules\": [",
    );
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.code(),
            rule.name(),
            esc(rule.describe()),
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}\n          ]\n        }}",
            v.rule.code(),
            esc(&format!("{}[{}] {}", v.rule.code(), v.rule.name(), v.message)),
            esc(&v.path),
            v.line,
            v.col,
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}
