//! The workspace symbol graph: every `fn` item in every linted file, plus
//! heuristically resolved call edges between them.
//!
//! Resolution is deliberately conservative — a wrong edge turns into a false
//! taint report, a missing edge into a missed one, and for a tier-0 gate the
//! former is worse. The rules:
//!
//! - **Method calls** (`x.name(...)`) resolve only when exactly one `impl`
//!   fn in the whole workspace bears that name *and* the name is not a
//!   common standard-library method (`len`, `iter`, `clone`, ... — the
//!   [`METHOD_STOPLIST`]); otherwise no edge.
//! - **Qualified calls** (`a::b::name(...)`) resolve through the caller
//!   file's `use` aliases, then match the qualifying segment against the
//!   callee's `impl` type, enclosing module, file stem, or crate name.
//!   `Self::name(...)` takes the caller's own `impl` type as qualifier.
//! - **Bare calls** (`name(...)`) prefer a same-file fn, then same-crate,
//!   then a `use`-imported one; cross-crate bare names never edge.
//!
//! All containers are `BTreeMap`/sorted vecs — the linter holds itself to
//! its own D3 discipline so report order is deterministic.

use std::collections::{BTreeMap, BTreeSet};

use crate::check::FileCheck;
use crate::parse::{Call, FnItem};

/// Common standard-library method names that must never resolve to a
/// workspace `impl` fn that happens to share the name: `results.iter()`
/// must not edge into `Bencher::iter`.
pub const METHOD_STOPLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exp",
    "expect",
    "extend",
    "fill",
    "fill_bytes",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from",
    "from_seed",
    "gen",
    "gen_bool",
    "gen_range",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "log2",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "new",
    "next",
    "next_u32",
    "next_u64",
    "ok",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "record",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "sample",
    "seed_from_u64",
    "shuffle",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// One node: the fn at `files[file].parsed.fns[item]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Calling fn.
    pub from: NodeId,
    /// Called fn.
    pub to: NodeId,
    /// Byte offset of the call site in the caller's file.
    pub at: usize,
}

/// A fn node's location.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
}

/// The crate-ish component of a workspace-relative path: `core` for
/// `crates/core/src/dfdde.rs`, `rand` for `shims/rand/src/lib.rs`, the first
/// path component otherwise (`tests`, `xtask`, ...).
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or(""),
        Some(first) => first,
        None => "",
    }
}

/// The file stem: `dfdde` for `crates/core/src/dfdde.rs`.
pub fn file_stem(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs")
}

/// The workspace symbol graph. Build once per lint run with [`SymbolGraph::build`].
pub struct SymbolGraph {
    /// All fn nodes, in (file, item) order.
    pub nodes: Vec<Node>,
    /// All resolved edges, sorted and deduplicated.
    pub edges: Vec<Edge>,
    /// Callers of each node: reverse adjacency as indexes into `edges`.
    callers: BTreeMap<NodeId, Vec<usize>>,
    /// Fn name → node ids bearing it.
    by_name: BTreeMap<String, Vec<NodeId>>,
}

impl SymbolGraph {
    /// Builds the graph over the given files. Deterministic in the input.
    pub fn build(files: &[FileCheck]) -> Self {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.parsed.fns.iter().enumerate() {
                let id = NodeId(nodes.len());
                nodes.push(Node { file: fi, item: ii });
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        let graph = Self { nodes, edges: Vec::new(), callers: BTreeMap::new(), by_name };

        let mut edges = BTreeSet::new();
        for (fi, file) in files.iter().enumerate() {
            // The caller file's alias map: local name → full path segments.
            let aliases: BTreeMap<&str, &[String]> =
                file.parsed.uses.iter().map(|u| (u.name.as_str(), u.segments.as_slice())).collect();
            for (ii, f) in file.parsed.fns.iter().enumerate() {
                let from = graph.node_of(fi, ii).expect("every parsed fn has a node");
                for call in &f.calls {
                    for to in graph.resolve(call, fi, f, files, &aliases) {
                        if to != from {
                            edges.insert(Edge { from, to, at: call.at });
                        }
                    }
                }
            }
        }
        let edges: Vec<Edge> = edges.into_iter().collect();
        let mut callers: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            callers.entry(e.to).or_default().push(i);
        }
        Self { edges, callers, ..graph }
    }

    /// The node for `files[file].parsed.fns[item]`, if present.
    pub fn node_of(&self, file: usize, item: usize) -> Option<NodeId> {
        // Nodes are appended in (file, item) order; binary search on that key.
        self.nodes.binary_search_by_key(&(file, item), |n| (n.file, n.item)).ok().map(NodeId)
    }

    /// The fn item behind a node.
    pub fn fn_of<'a>(&self, files: &'a [FileCheck], id: NodeId) -> &'a FnItem {
        let n = self.nodes[id.0];
        &files[n.file].parsed.fns[n.item]
    }

    /// The file index behind a node.
    pub fn file_of(&self, id: NodeId) -> usize {
        self.nodes[id.0].file
    }

    /// Edges whose callee is `id`.
    pub fn callers_of(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.callers.get(&id).into_iter().flatten().map(|&i| &self.edges[i])
    }

    /// Nodes named `name`.
    pub fn named(&self, name: &str) -> &[NodeId] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Resolves one call site to candidate callee nodes (possibly none).
    fn resolve(
        &self,
        call: &Call,
        caller_file: usize,
        caller: &FnItem,
        files: &[FileCheck],
        aliases: &BTreeMap<&str, &[String]>,
    ) -> Vec<NodeId> {
        let name = call.segments.last().map_or("", String::as_str);
        let candidates = self.named(name);
        if candidates.is_empty() {
            return Vec::new();
        }
        if call.is_method {
            if METHOD_STOPLIST.contains(&name) {
                return Vec::new();
            }
            let impl_fns: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|&id| self.fn_of(files, id).impl_type.is_some())
                .collect();
            return if impl_fns.len() == 1 { impl_fns } else { Vec::new() };
        }
        if call.segments.len() >= 2 {
            // Expand the leading segment through the caller file's uses, then
            // qualify by the segment directly before the name.
            let mut segs: Vec<String> = call.segments.clone();
            if let Some(full) = aliases.get(segs[0].as_str()) {
                let mut expanded: Vec<String> = full.to_vec();
                expanded.extend(segs[1..].iter().cloned());
                segs = expanded;
            }
            let mut qual = segs[segs.len() - 2].as_str();
            if qual == "Self" {
                qual = caller.impl_type.as_deref().unwrap_or("");
            }
            if matches!(qual, "crate" | "self" | "super" | "") {
                // `crate::name(...)`: fall through to bare-call resolution
                // within the caller's crate.
                return self.resolve_bare(name, caller_file, files, aliases);
            }
            return candidates
                .iter()
                .copied()
                .filter(|&id| {
                    let f = self.fn_of(files, id);
                    let path = files[self.file_of(id)].path.as_str();
                    f.impl_type.as_deref() == Some(qual)
                        || f.modules.iter().any(|m| m == qual)
                        || file_stem(path) == qual
                        || crate_of(path) == qual
                })
                .collect();
        }
        self.resolve_bare(name, caller_file, files, aliases)
    }

    fn resolve_bare(
        &self,
        name: &str,
        caller_file: usize,
        files: &[FileCheck],
        aliases: &BTreeMap<&str, &[String]>,
    ) -> Vec<NodeId> {
        let candidates = self.named(name);
        let same_file: Vec<NodeId> =
            candidates.iter().copied().filter(|&id| self.file_of(id) == caller_file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let caller_crate = crate_of(&files[caller_file].path);
        let same_crate: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&id| crate_of(&files[self.file_of(id)].path) == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if let Some(full) = aliases.get(name) {
            // `use rand::thread_rng;` then `thread_rng()` — qualify by the
            // segment before the imported name.
            let qual = full.len().checked_sub(2).map_or("", |i| full[i].as_str());
            return candidates
                .iter()
                .copied()
                .filter(|&id| {
                    let f = self.fn_of(files, id);
                    let path = files[self.file_of(id)].path.as_str();
                    qual.is_empty()
                        || f.impl_type.as_deref() == Some(qual)
                        || f.modules.iter().any(|m| m == qual)
                        || file_stem(path) == qual
                        || crate_of(path) == qual
                })
                .collect();
        }
        Vec::new()
    }

    /// A stable display label for a node: `path::[Type::]name`.
    pub fn label(&self, files: &[FileCheck], id: NodeId) -> String {
        let f = self.fn_of(files, id);
        let path = &files[self.file_of(id)].path;
        match &f.impl_type {
            Some(t) => format!("{path}::{t}::{}", f.name),
            None => format!("{path}::{}", f.name),
        }
    }

    /// Renders the graph as Graphviz DOT, clustered by crate. Deterministic.
    pub fn to_dot(&self, files: &[FileCheck]) -> String {
        let mut out =
            String::from("digraph ddelint {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        // Group node declarations by crate for readability.
        let mut by_crate: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            by_crate.entry(crate_of(&files[n.file].path)).or_default().push(NodeId(i));
        }
        for (krate, ids) in &by_crate {
            out.push_str(&format!("  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";\n"));
            for &id in ids {
                out.push_str(&format!("    n{} [label=\"{}\"];\n", id.0, self.label(files, id)));
            }
            out.push_str("  }\n");
        }
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert((e.from, e.to)) {
                out.push_str(&format!("  n{} -> n{};\n", e.from.0, e.to.0));
            }
        }
        out.push_str("}\n");
        out
    }
}
