//! A comment/string/raw-string-aware Rust tokenizer.
//!
//! `ddelint` must never report `thread_rng` inside a doc example, a string
//! literal, or a commented-out line, and must never mistake `"http://x"` for
//! a comment. Instead of a full parser (no `syn`: the workspace builds
//! offline and the linter has to stay dependency-free), [`lex`] performs one
//! byte-exact pass that classifies every byte of the source as *code*,
//! *comment*, or *literal* and produces:
//!
//! - a **code mask**: a same-length copy of the source in which every comment
//!   and every literal *interior* is blanked to spaces (newlines preserved),
//!   so byte offsets, line numbers, and columns in the mask are identical to
//!   the original file and substring search on the mask can never match text
//!   that the compiler treats as data;
//! - the list of **comments** with their byte offsets, for the
//!   `ddelint::allow(...)` grammar and the D6 doc-comment rule.
//!
//! Handled Rust lexical edge cases (each pinned by a unit test in
//! `crates/lint/tests/tokenizer.rs`): nested block comments, `//` inside
//! string literals, raw strings with arbitrary `#` fences (including fences
//! that contain shorter quote-hash runs), byte strings and byte chars,
//! escaped quotes, and the char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// Where a comment sits in the file and what it says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Byte offset of the first character (`/` of `//` or `/*`).
    pub start: usize,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug)]
pub struct Lexed {
    /// The code mask: same byte length as the input, comments and literal
    /// interiors blanked to spaces (string delimiters are kept so `expect("")`
    /// stays distinguishable from `expect("reason")`), newlines preserved.
    pub mask: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (line 0 starts at 0).
    line_starts: Vec<usize>,
}

impl Lexed {
    /// Maps a byte offset to a 1-based `(line, column)` pair.
    pub fn pos(&self, byte: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&byte) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, byte - self.line_starts[line] + 1)
    }

    /// The 1-based line number containing `byte`.
    pub fn line_of(&self, byte: usize) -> usize {
        self.pos(byte).0
    }

    /// Byte range of 1-based line `line` in the mask/source (excludes `\n`).
    pub fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map_or(self.mask.len(), |next| next.saturating_sub(1));
        (start, end)
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a code mask plus comment list. See the module docs.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut mask = b.to_vec();
    let mut comments = Vec::new();
    // Blank `mask[from..to]` to spaces, preserving newlines (and CR).
    let blank = |mask: &mut Vec<u8>, from: usize, to: usize| {
        for m in &mut mask[from..to] {
            if *m != b'\n' && *m != b'\r' {
                *m = b' ';
            }
        }
    };

    let mut i = 0;
    // The previous unblanked code byte, for the raw-string prefix heuristic:
    // in `r"..."` the `r` starts a literal only when not ending an identifier.
    let mut prev_code: u8 = 0;
    while i < n {
        let c = b[i];
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            // Line comment (incl. /// and //! doc forms): to end of line.
            let mut j = i + 2;
            while j < n && b[j] != b'\n' {
                j += 1;
            }
            comments.push(Comment { start: i, text: src[i..j].to_string() });
            blank(&mut mask, i, j);
            i = j;
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            // Block comment; Rust block comments nest.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            comments.push(Comment { start: i, text: src[i..j].to_string() });
            blank(&mut mask, i, j);
            i = j;
        } else if c == b'"' {
            // Ordinary string literal: blank the interior, keep the quotes.
            let mut j = i + 1;
            while j < n && b[j] != b'"' {
                j += if b[j] == b'\\' { 2 } else { 1 };
            }
            blank(&mut mask, i + 1, j.min(n));
            i = (j + 1).min(n);
            prev_code = b'"';
        } else if (c == b'r' || c == b'b') && !is_ident(prev_code) && prev_code != b'"' {
            // Possible raw/byte literal prefix: r"…", r#"…"#, b"…", br#"…"#,
            // b'…'. When the lookahead does not form a literal, fall through
            // and treat the byte as ordinary code (an identifier head).
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            let mut hashes = 0usize;
            let raw = j < n && b[j] == b'r';
            if raw {
                j += 1;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if j < n && b[j] == b'"' && (raw || b[i] == b'b') {
                let body = j + 1;
                let close = if raw {
                    // Scan for `"` followed by exactly the fence's hash count.
                    let mut k = body;
                    loop {
                        if k >= n {
                            break n;
                        }
                        if b[k] == b'"'
                            && k + hashes < n + 1
                            && b[k + 1..].len() >= hashes
                            && b[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
                        {
                            break k;
                        }
                        k += 1;
                    }
                } else {
                    // b"…": escapes as in ordinary strings.
                    let mut k = body;
                    while k < n && b[k] != b'"' {
                        k += if b[k] == b'\\' { 2 } else { 1 };
                    }
                    k
                };
                blank(&mut mask, body, close.min(n));
                i = (close + 1 + hashes).min(n);
                prev_code = b'"';
            } else if b[i] == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                // Byte char b'x' / b'\n'.
                let mut k = i + 2;
                while k < n && b[k] != b'\'' {
                    k += if b[k] == b'\\' { 2 } else { 1 };
                }
                blank(&mut mask, i + 2, k.min(n));
                i = (k + 1).min(n);
                prev_code = b'\'';
            } else {
                prev_code = c;
                i += 1;
            }
        } else if c == b'\'' {
            // Char literal or lifetime. `'\…'` and `'x'` are literals;
            // anything else (`'a` in `&'a str`, `'static`) is a lifetime and
            // stays code.
            if i + 1 < n && b[i + 1] == b'\\' {
                let mut k = i + 2;
                while k < n && b[k] != b'\'' {
                    k += if b[k] == b'\\' { 2 } else { 1 };
                }
                blank(&mut mask, i + 1, k.min(n));
                i = (k + 1).min(n);
                prev_code = b'\'';
            } else if i + 2 < n && b[i + 1] != b'\'' && b[i + 2] == b'\'' {
                blank(&mut mask, i + 1, i + 2);
                i += 3;
                prev_code = b'\'';
            } else if i + 1 < n && !b[i + 1].is_ascii() {
                // Multibyte char literal like '∞'.
                let ch_len = src[i + 1..].chars().next().map_or(1, char::len_utf8);
                let close = i + 1 + ch_len;
                if close < n && b[close] == b'\'' {
                    blank(&mut mask, i + 1, close);
                    i = close + 1;
                    prev_code = b'\'';
                } else {
                    i += 1;
                }
            } else {
                prev_code = c;
                i += 1;
            }
        } else {
            if !c.is_ascii_whitespace() {
                prev_code = c;
            }
            i += 1;
        }
    }

    let mut line_starts = vec![0usize];
    for (off, &byte) in b.iter().enumerate() {
        if byte == b'\n' {
            line_starts.push(off + 1);
        }
    }
    Lexed {
        mask: String::from_utf8(mask).unwrap_or_else(|_| src.to_string()),
        comments,
        line_starts,
    }
}
