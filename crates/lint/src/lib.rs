//! `ddelint` — the workspace determinism/hygiene linter.
//!
//! Every guarantee this reproduction ships — byte-identical `--jobs N`
//! replay, 1-minimal DST repros, DKW-band accuracy assertions — rests on a
//! convention: all randomness flows through `SeedSequence`, no wall-clock or
//! ambient entropy feeds experiment results, no unordered-map iteration in
//! deterministic paths. This crate turns that convention into machine-checked
//! law. It is dependency-free (no `syn`; the workspace builds offline): a
//! byte-exact [`lexer`] classifies code vs comments vs literals, [`parse`]
//! lifts the mask into items (fns, uses, enums, call sites), [`graph`]
//! builds the workspace symbol graph, [`rules`] defines the rule set,
//! [`policy`] scopes each rule to paths, and [`check`] applies the per-file
//! rules (D1–D7) plus the cross-file passes — [`taint`] (D8 determinism
//! taint), [`proto`] (D9 message-exhaustiveness, D10 sans-IO boundary) —
//! with inline `// ddelint::allow(rule, reason)` escapes. [`emit`] renders
//! JSON and SARIF for CI code scanning.
//!
//! Run it as `cargo run -p lint -- check`. The rule set, the allow grammar,
//! and the procedure for adding a rule are documented in TESTING.md
//! §"Tier 0 — static analysis".

pub mod check;
pub mod emit;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod policy;
pub mod proto;
pub mod rules;
pub mod taint;

pub use check::{check_source, check_workspace, FileCheck, Violation};
pub use graph::SymbolGraph;
pub use rules::RuleId;

use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `root` that the policy lints,
/// returned as sorted workspace-relative `/`-separated paths. The walk is
/// deterministic (sorted directory entries) so report order is stable.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for entry in entries {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if entry.is_dir() {
                if policy::linted(&format!("{rel}/")) && !rel.starts_with('.') {
                    stack.push(entry);
                }
            } else if rel.ends_with(".rs") && policy::linted(&rel) {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Reads every linted file under `root` into `(path, source)` pairs, in
/// sorted path order.
pub fn read_tree(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    collect_files(root)?
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))?;
            Ok((rel, src))
        })
        .collect()
}

/// Lints the whole tree under `root` — per-file rules plus the cross-file
/// symbol-graph passes — returning all violations in (path, line, col)
/// order.
pub fn check_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(check_workspace(&read_tree(root)?))
}

/// Builds the workspace symbol graph for `root` and renders it as DOT
/// (`ddelint graph --dot`).
pub fn graph_dot(root: &Path) -> std::io::Result<String> {
    let files: Vec<FileCheck> =
        read_tree(root)?.iter().map(|(path, src)| FileCheck::new(path, src)).collect();
    Ok(SymbolGraph::build(&files).to_dot(&files))
}
