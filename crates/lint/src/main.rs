//! The `ddelint` binary: `cargo run -p lint -- check`.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::rules::RuleId;

const USAGE: &str = "\
ddelint — workspace determinism/hygiene linter

USAGE:
    ddelint check [--root PATH]   lint every .rs file, exit 1 on violations
    ddelint rules                 print the rule table
";

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    // Ascend from the current directory to the first Cargo.toml declaring a
    // [workspace]; `cargo run -p lint` starts in the invocation directory,
    // which may be a crate subdirectory.
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    match command.as_deref() {
        Some("rules") => {
            let all = [
                RuleId::D1,
                RuleId::D2,
                RuleId::D3,
                RuleId::D4,
                RuleId::D5,
                RuleId::D6,
                RuleId::D7,
                RuleId::A0,
                RuleId::A1,
            ];
            for rule in all {
                println!("{} [{}] — {}", rule.code(), rule.name(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("unknown argument `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(root) = workspace_root(root) else {
                eprintln!("ddelint: no workspace root found (pass --root PATH)");
                return ExitCode::FAILURE;
            };
            match lint::check_tree(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("ddelint: clean");
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        println!("{v}");
                    }
                    println!("ddelint: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("ddelint: I/O error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
