//! The `ddelint` binary: `cargo run -p lint -- check`.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::emit::{self, ALL_RULES};

const USAGE: &str = "\
ddelint — workspace determinism/hygiene linter

USAGE:
    ddelint check [--root PATH] [--format text|json|sarif] [--out PATH]
                                  lint every .rs file, exit 1 on violations
    ddelint graph [--root PATH] --dot
                                  dump the workspace symbol graph as DOT
    ddelint rules                 print the rule table
";

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    // Ascend from the current directory to the first Cargo.toml declaring a
    // [workspace]; `cargo run -p lint` starts in the invocation directory,
    // which may be a crate subdirectory.
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Writes `text` to stdout, treating a closed pipe (`... | head`) as done.
fn to_stdout(text: &str) -> std::io::Result<()> {
    use std::io::Write;
    match std::io::stdout().write_all(text.as_bytes()) {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => other,
    }
}

/// Writes `text` to `out` (or stdout when `None`).
fn deliver(out: Option<&PathBuf>, text: &str) -> std::io::Result<()> {
    match out {
        Some(path) => std::fs::write(path, text),
        None => to_stdout(text),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    match command.as_deref() {
        Some("rules") => {
            for rule in ALL_RULES {
                println!("{} [{}] — {}", rule.code(), rule.name(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        Some("graph") => {
            let mut root = None;
            let mut dot = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    "--dot" => dot = true,
                    other => {
                        eprintln!("unknown argument `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if !dot {
                eprintln!("ddelint graph: pass --dot (the only supported dump)\n{USAGE}");
                return ExitCode::FAILURE;
            }
            let Some(root) = workspace_root(root) else {
                eprintln!("ddelint: no workspace root found (pass --root PATH)");
                return ExitCode::FAILURE;
            };
            match lint::graph_dot(&root).and_then(|dot| to_stdout(&dot)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("ddelint: I/O error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let mut root = None;
            let mut format = String::from("text");
            let mut out: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    "--format" => {
                        format = args.next().unwrap_or_default();
                        if !matches!(format.as_str(), "text" | "json" | "sarif") {
                            eprintln!("--format must be text, json, or sarif\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    }
                    "--out" => out = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("unknown argument `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(root) = workspace_root(root) else {
                eprintln!("ddelint: no workspace root found (pass --root PATH)");
                return ExitCode::FAILURE;
            };
            let violations = match lint::check_tree(&root) {
                Ok(v) => v,
                Err(err) => {
                    eprintln!("ddelint: I/O error: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let delivered = match format.as_str() {
                "json" => deliver(out.as_ref(), &emit::to_json(&violations)),
                "sarif" => deliver(out.as_ref(), &emit::to_sarif(&violations)),
                _ => {
                    let mut text = String::new();
                    for v in &violations {
                        text.push_str(&format!("{v}\n"));
                    }
                    if violations.is_empty() {
                        text.push_str("ddelint: clean\n");
                    } else {
                        text.push_str(&format!("ddelint: {} violation(s)\n", violations.len()));
                    }
                    deliver(out.as_ref(), &text)
                }
            };
            if let Err(err) = delivered {
                eprintln!("ddelint: write error: {err}");
                return ExitCode::FAILURE;
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
