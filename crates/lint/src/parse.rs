//! A lightweight Rust *item* parser on top of the [`crate::lexer`] code mask.
//!
//! `ddelint` v2 needs more than needles: the determinism-taint rule (D8)
//! follows entropy through call chains, the message-exhaustiveness rule (D9)
//! enumerates enum variants, and the sans-IO boundary rule (D10) classifies
//! method calls. None of that needs a real Rust parser — it needs *items*:
//! which functions exist, what their signatures mention, what they call,
//! which enums declare which variants, and what `use` declarations alias.
//!
//! [`parse`] extracts exactly that, in one deterministic pass over the code
//! mask (so items inside comments or string literals can never exist). The
//! parser is heuristic by design — it tracks brace depth, `mod`/`impl`
//! context, and `fn` body spans, and records *candidate* call sites (an
//! identifier directly followed by `(`, or `.name(` method sugar). The
//! symbol graph ([`crate::graph`]) decides what those candidates resolve to.

use crate::lexer::Lexed;

/// One `use` leaf: the name it binds locally and the path it came from.
///
/// `use std::collections::HashMap as Map;` yields
/// `{ name: "Map", segments: ["std", "collections", "HashMap"] }`; group
/// imports (`use a::{B, C as D}`) are expanded into one record per leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The locally bound name (the alias, or the path's last segment).
    pub name: String,
    /// Full path segments of the imported item.
    pub segments: Vec<String>,
    /// Byte offset of the binding (for reporting).
    pub at: usize,
}

/// A candidate call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written: `["rand", "thread_rng"]`, `["helper"]`.
    /// For method calls, the single method name.
    pub segments: Vec<String>,
    /// Whether this was `.name(...)` method sugar.
    pub is_method: bool,
    /// For method calls: the receiver identifier directly before the dot
    /// (`net` in `net.probe(...)`), when the receiver is a plain identifier.
    pub receiver: Option<String>,
    /// Byte offset of the called name (for reporting).
    pub at: usize,
}

/// One `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`Network` for `impl Network`).
    pub impl_type: Option<String>,
    /// Enclosing in-file module path (`["tests"]` for `mod tests`).
    pub modules: Vec<String>,
    /// Whether the declaration starts with `pub`.
    pub is_pub: bool,
    /// Signature text *after* the name (generics, params, return type) up to
    /// the body brace — what D8's seed-threading absolution inspects.
    pub sig: String,
    /// Byte offset of the `fn` keyword (for reporting).
    pub at: usize,
    /// Body byte span in the mask (empty for bodyless trait declarations).
    pub body: (usize, usize),
    /// Candidate call sites in the body.
    pub calls: Vec<Call>,
}

/// One variant of a parsed `enum`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Byte offset of the variant name (for reporting).
    pub at: usize,
}

/// One `enum` item and its variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Declared variants, in order.
    pub variants: Vec<Variant>,
}

/// Everything [`parse`] extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// `use` bindings, in file order.
    pub uses: Vec<UseAlias>,
    /// Functions, in file order.
    pub fns: Vec<FnItem>,
    /// Enums, in file order.
    pub enums: Vec<EnumItem>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte ranges of `#[cfg(test)]`-gated items (modules or functions), found by
/// brace-matching in the code mask so braces inside literals can't confuse
/// the span.
pub fn test_regions(mask: &str) -> Vec<(usize, usize)> {
    let bytes = mask.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(rel) = mask[from..].find("#[cfg(test)]") {
        let attr = from + rel;
        let mut i = attr + "#[cfg(test)]".len();
        // Walk to the gated item's opening brace; stop at `;` (a gated
        // `use`/`mod foo;` has no body to skip).
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        if let Some(start) = open {
            let mut depth = 0usize;
            let mut j = start;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((attr, j + 1));
            from = j + 1;
        } else {
            from = i.max(attr + 1);
        }
    }
    regions
}

/// Whether `byte` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], byte: usize) -> bool {
    regions.iter().any(|&(a, b)| byte >= a && byte < b)
}

/// A token over the code mask: identifiers and single punctuation bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(u8),
}

struct Tokens<'a> {
    mask: &'a str,
    /// (token, byte offset) pairs.
    toks: Vec<(Tok<'a>, usize)>,
}

fn tokenize(mask: &str) -> Tokens<'_> {
    let b = mask.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push((Tok::Ident(&mask[start..i]), start));
        } else if c.is_ascii() {
            toks.push((Tok::Punct(c), i));
            i += 1;
        } else {
            i += 1;
        }
    }
    Tokens { mask, toks }
}

/// Matches the brace opened at token index `open` (must be `{`), returning
/// the token index of the closing `}` (or the last token).
fn match_brace(toks: &[(Tok<'_>, usize)], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].0 {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len() - 1
}

/// Expands one `use` declaration body (text between `use` and `;`) into
/// leaves. Handles `::`-paths, `as` aliases, and nested `{...}` groups.
fn expand_use(text: &str, prefix: &[String], at: usize, out: &mut Vec<UseAlias>) {
    let text = text.trim().trim_start_matches("::");
    // Split off a group suffix: `a::b::{...}`.
    if let Some(brace) = text.find('{') {
        let head = text[..brace].trim().trim_end_matches("::");
        let mut pre = prefix.to_vec();
        pre.extend(head.split("::").map(str::trim).filter(|s| !s.is_empty()).map(String::from));
        let inner = text[brace + 1..].rsplit_once('}').map_or("", |(i, _)| i);
        // Split the group on top-level commas only.
        let mut depth = 0usize;
        let mut part = String::new();
        let mut parts = Vec::new();
        for c in inner.chars() {
            match c {
                '{' => {
                    depth += 1;
                    part.push(c);
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    part.push(c);
                }
                ',' if depth == 0 => {
                    parts.push(std::mem::take(&mut part));
                }
                _ => part.push(c),
            }
        }
        parts.push(part);
        for p in parts {
            if !p.trim().is_empty() {
                expand_use(&p, &pre, at, out);
            }
        }
        return;
    }
    // Plain path, possibly aliased.
    let (path, alias) = match text.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim())),
        None => (text, None),
    };
    let segments: Vec<String> = prefix
        .iter()
        .cloned()
        .chain(path.split("::").map(str::trim).filter(|s| !s.is_empty()).map(String::from))
        .collect();
    let Some(last) = segments.last() else { return };
    if last == "*" {
        return; // Glob imports carry no binding we can resolve.
    }
    let name = alias.unwrap_or(last).to_string();
    if name == "self" {
        // `use a::b::{self}` binds `b`.
        let mut segments = segments;
        segments.pop();
        if let Some(last) = segments.last().cloned() {
            out.push(UseAlias { name: last, segments, at });
        }
        return;
    }
    out.push(UseAlias { name, segments, at });
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "else", "where"];

/// Collects candidate call sites between token indexes `from..to`.
fn collect_calls(toks: &[(Tok<'_>, usize)], from: usize, to: usize, out: &mut Vec<Call>) {
    let mut i = from;
    while i < to {
        let (Tok::Ident(name), at) = toks[i] else {
            i += 1;
            continue;
        };
        // Must be directly followed by `(`.
        if i + 1 >= to || toks[i + 1].0 != Tok::Punct(b'(') {
            i += 1;
            continue;
        }
        if CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // Method sugar: `.name(`.
        if i >= 1 && toks[i - 1].0 == Tok::Punct(b'.') {
            let receiver = if i >= 2 {
                match toks[i - 2].0 {
                    Tok::Ident(r) => Some(r.to_string()),
                    _ => None,
                }
            } else {
                None
            };
            out.push(Call { segments: vec![name.to_string()], is_method: true, receiver, at });
            i += 1;
            continue;
        }
        // Free or path-qualified call: walk `seg:: seg:: name` backwards.
        let mut segs = vec![name.to_string()];
        let mut j = i;
        while j >= 3
            && toks[j - 1].0 == Tok::Punct(b':')
            && toks[j - 2].0 == Tok::Punct(b':')
            && matches!(toks[j - 3].0, Tok::Ident(_))
        {
            if let Tok::Ident(seg) = toks[j - 3].0 {
                segs.insert(0, seg.to_string());
            }
            j -= 3;
        }
        // A struct-literal guard: `Name (` after `struct` etc. is unlikely;
        // tuple-struct construction (`Some(x)`, `RingId(v)`) resolves to no
        // workspace fn and costs nothing.
        out.push(Call { segments: segs, is_method: false, receiver: None, at });
        i += 1;
    }
}

/// Parses `enum` variants between the body tokens `from..to` (exclusive).
fn collect_variants(toks: &[(Tok<'_>, usize)], from: usize, to: usize) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = from;
    let mut expect_variant = true;
    let mut depth = 0usize;
    while i < to {
        match toks[i].0 {
            Tok::Punct(b'{') | Tok::Punct(b'(') | Tok::Punct(b'[') | Tok::Punct(b'<') => depth += 1,
            Tok::Punct(b'}') | Tok::Punct(b')') | Tok::Punct(b']') | Tok::Punct(b'>') => {
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(b',') if depth == 0 => expect_variant = true,
            // Attribute: skip the `[...]` block.
            Tok::Punct(b'#') if depth == 0 && i + 1 < to && toks[i + 1].0 == Tok::Punct(b'[') => {
                let mut d = 0usize;
                i += 1;
                while i < to {
                    match toks[i].0 {
                        Tok::Punct(b'[') => d += 1,
                        Tok::Punct(b']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            Tok::Ident(name) if depth == 0 && expect_variant => {
                variants.push(Variant { name: name.to_string(), at: toks[i].1 });
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// The `impl` header's type name: the last path segment before `{`, taking
/// the `for Type` side of trait impls.
fn impl_type_name(toks: &[(Tok<'_>, usize)], mut i: usize, end: usize) -> Option<String> {
    // Prefer the segment after `for` (trait impls name the trait first).
    let mut for_at = None;
    let mut j = i;
    while j < end {
        if toks[j].0 == Tok::Ident("for") {
            for_at = Some(j);
        }
        j += 1;
    }
    if let Some(f) = for_at {
        i = f + 1;
    }
    let mut last = None;
    let mut k = i;
    while k < end {
        match toks[k].0 {
            Tok::Ident(name) => {
                // Skip lifetimes (`'a`): preceded by a quote.
                if k >= 1 && toks[k - 1].0 == Tok::Punct(b'\'') {
                    k += 1;
                    continue;
                }
                last = Some(name.to_string());
            }
            // Generic args of the type we already captured; stop at the
            // first angle after a captured name to avoid `Vec<RingId>`
            // overwriting `Vec` with `RingId`.
            Tok::Punct(b'<') if last.is_some() => break,
            _ => {}
        }
        k += 1;
    }
    last
}

/// Parses one lexed file into its items. Deterministic in the input text.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let tokens = tokenize(&lexed.mask);
    let toks = &tokens.toks;
    let mut out = ParsedFile::default();

    // Context stacks, driven by brace depth.
    let mut depth = 0usize;
    let mut mod_stack: Vec<(String, usize)> = Vec::new();
    let mut impl_stack: Vec<(String, usize)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let (tok, at) = toks[i];
        match tok {
            Tok::Punct(b'{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                while mod_stack.last().is_some_and(|&(_, d)| d == depth) {
                    mod_stack.pop();
                }
                while impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            Tok::Ident("use") => {
                // Capture to the terminating `;`.
                let mut j = i + 1;
                while j < toks.len() && toks[j].0 != Tok::Punct(b';') {
                    j += 1;
                }
                let end_byte = toks.get(j).map_or(lexed.mask.len(), |&(_, b)| b);
                let text = &tokens.mask[toks[i + 1].1.min(end_byte)..end_byte];
                expand_use(text, &[], at, &mut out.uses);
                i = j + 1;
            }
            Tok::Ident("mod") => {
                if let Some(&(Tok::Ident(name), _)) = toks.get(i + 1) {
                    if toks.get(i + 2).map(|t| t.0) == Some(Tok::Punct(b'{')) {
                        mod_stack.push((name.to_string(), depth));
                    }
                }
                i += 1;
            }
            Tok::Ident("impl") => {
                // Find the body `{`; `impl Trait for Type { ... }`.
                let mut j = i + 1;
                while j < toks.len()
                    && toks[j].0 != Tok::Punct(b'{')
                    && toks[j].0 != Tok::Punct(b';')
                {
                    j += 1;
                }
                if toks.get(j).map(|t| t.0) == Some(Tok::Punct(b'{')) {
                    if let Some(name) = impl_type_name(toks, i + 1, j) {
                        impl_stack.push((name, depth));
                    }
                }
                i += 1;
            }
            Tok::Ident("enum") => {
                if let Some(&(Tok::Ident(name), _)) = toks.get(i + 1) {
                    let mut j = i + 2;
                    while j < toks.len()
                        && toks[j].0 != Tok::Punct(b'{')
                        && toks[j].0 != Tok::Punct(b';')
                    {
                        j += 1;
                    }
                    if toks.get(j).map(|t| t.0) == Some(Tok::Punct(b'{')) {
                        let close = match_brace(toks, j);
                        out.enums.push(EnumItem {
                            name: name.to_string(),
                            variants: collect_variants(toks, j + 1, close),
                        });
                        // Don't descend into the enum body looking for items.
                        i = close;
                        continue;
                    }
                }
                i += 1;
            }
            Tok::Ident("fn") => {
                let Some(&(Tok::Ident(name), _)) = toks.get(i + 1) else {
                    i += 1; // `fn(u64) -> u64` type position.
                    continue;
                };
                // `pub` / `pub(crate)` lookback (attributes may intervene but
                // visibility sits directly in the keyword run before `fn`).
                let mut is_pub = false;
                let mut back = i;
                while back > 0 {
                    back -= 1;
                    match toks[back].0 {
                        Tok::Ident("pub") => {
                            is_pub = true;
                            break;
                        }
                        Tok::Ident("const" | "unsafe" | "async" | "extern" | "crate")
                        | Tok::Punct(b'(')
                        | Tok::Punct(b')') => {}
                        _ => break,
                    }
                }
                // Signature runs to the body `{` or a `;`.
                let mut j = i + 2;
                while j < toks.len()
                    && toks[j].0 != Tok::Punct(b'{')
                    && toks[j].0 != Tok::Punct(b';')
                {
                    j += 1;
                }
                let sig_start = toks.get(i + 2).map_or(lexed.mask.len(), |&(_, b)| b);
                let sig_end = toks.get(j).map_or(lexed.mask.len(), |&(_, b)| b);
                let sig = lexed.mask[sig_start.min(sig_end)..sig_end].to_string();
                let (body, calls, next) = if toks.get(j).map(|t| t.0) == Some(Tok::Punct(b'{')) {
                    let close = match_brace(toks, j);
                    let mut calls = Vec::new();
                    collect_calls(toks, j + 1, close, &mut calls);
                    let span =
                        (toks[j].1, toks.get(close).map_or(lexed.mask.len(), |&(_, b)| b + 1));
                    (span, calls, close + 1)
                } else {
                    ((sig_end, sig_end), Vec::new(), j + 1)
                };
                out.fns.push(FnItem {
                    name: name.to_string(),
                    impl_type: impl_stack.last().map(|(n, _)| n.clone()),
                    modules: mod_stack.iter().map(|(n, _)| n.clone()).collect(),
                    is_pub,
                    sig,
                    at,
                    body,
                    calls,
                });
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}
