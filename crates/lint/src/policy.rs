//! Path-scoped rule policy.
//!
//! Paths are workspace-relative with `/` separators. The policy is code, not
//! config: the rule set is repo-specific law, and changing where a rule
//! applies should show up in review as a diff to this file (see TESTING.md
//! §"Tier 0 — static analysis" for the rationale and the procedure for
//! adding a rule).

use crate::rules::RuleId;

/// The four crates whose behaviour must be a pure function of the seed.
const DET_CRATES: &[&str] = &["crates/core/", "crates/ring/", "crates/stats/", "crates/sim/"];

/// Estimator modules whose public API must document a determinism contract
/// (rule D6). Kept explicit so adding a module is a reviewed decision.
pub const D6_FILES: &[&str] = &[
    "crates/core/src/estimator.rs",
    "crates/core/src/dfdde.rs",
    "crates/core/src/continuous.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/aggregate.rs",
    "crates/core/src/skeleton.rs",
    "crates/core/src/piggyback.rs",
    "crates/core/src/baseline/gossip.rs",
    "crates/core/src/baseline/random_walk.rs",
    "crates/core/src/baseline/uniform_peer.rs",
    "crates/stats/src/ecdf.rs",
    "crates/stats/src/gk.rs",
    "crates/stats/src/equidepth.rs",
    "crates/stats/src/piecewise.rs",
    "crates/stats/src/kde.rs",
    "crates/stats/src/histogram.rs",
    "crates/sim/src/workload.rs",
    "crates/ring/src/arena.rs",
    "crates/ring/src/batch.rs",
];

/// Ring hot-path modules where cloning a successor list or a store's sorted
/// vec re-introduces the per-hop heap traffic the hot-path overhaul removed
/// (rule D7). Snapshot to the stack or share via `Arc` instead; genuinely
/// cold sites escape with a reasoned `ddelint::allow(hot-clone, ...)`.
pub const D7_FILES: &[&str] = &[
    "crates/ring/src/network.rs",
    "crates/ring/src/node.rs",
    "crates/ring/src/store.rs",
    "crates/ring/src/membership.rs",
    "crates/ring/src/query.rs",
    "crates/ring/src/replication.rs",
    "crates/ring/src/arena.rs",
    "crates/ring/src/churn.rs",
];

/// Modules that must stay sans-IO (rule D10): the estimator/probe/routing
/// policy layer in `crates/core`. These files may *interrogate* the network
/// and bill message stats, but direct topology/data mutation belongs to the
/// drivers (`sim`, the CLI, and eventually the `dde-node` binary of ROADMAP
/// item 1) — keeping the policy layer a pure `(incoming message, state) →
/// outgoing messages` state machine that the node split can lift verbatim.
pub fn d10_file(path: &str) -> bool {
    path.starts_with("crates/core/src/")
}

/// `Network` methods the sans-IO layer may call (rule D10): reads, probe /
/// lookup message exchanges (the simulated transport), and stats billing.
/// Everything else — membership, builds, rewiring, data mutation, fault-plan
/// edits — is driver territory.
pub const NETWORK_READ_WHITELIST: &[&str] = &[
    // Message exchanges: the simulated transport surface.
    "lookup",
    "lookup_batched",
    "probe",
    "piggyback_probe",
    "sample_tuple",
    "message_lost",
    "reply_lost",
    // Pure reads.
    "len",
    "is_empty",
    "placement",
    "ids",
    "is_alive",
    "node",
    "summary_buckets",
    "replication",
    "true_owner",
    "random_peer",
    "total_items",
    "global_values",
    "global_values_arc",
    "mutation_epoch",
    // Stats billing.
    "stats",
    "stats_mut",
];

/// How one requirement of an exhaustive protocol enum is expressed in code
/// (rule D9). All searches are confined to the named fn's (or const's) byte
/// span in the code mask, so comments and unrelated code cannot satisfy
/// them; `QuotedIn` searches the raw source because repro parsers match on
/// string literals, which the mask blanks.
#[derive(Debug, Clone, Copy)]
pub enum Requirement {
    /// `Enum::Variant` must appear in the body of fn `func` in `file`.
    ArmIn { file: &'static str, func: &'static str, what: &'static str },
    /// `"Variant"` (quoted) must appear in the body of fn `func` in `file`.
    QuotedIn { file: &'static str, func: &'static str, what: &'static str },
    /// `Enum::Variant` must appear in the initializer of `const_name` in `file`.
    ListedIn { file: &'static str, const_name: &'static str, what: &'static str },
    /// `Enum::Variant` must appear as the first argument of a call to one of
    /// `fns` somewhere outside the defining file and outside test regions.
    Billed { fns: &'static [&'static str], what: &'static str },
}

impl Requirement {
    /// Names the missing wiring in a D9 report.
    pub fn describe(self) -> &'static str {
        match self {
            Self::ArmIn { what, .. }
            | Self::QuotedIn { what, .. }
            | Self::ListedIn { what, .. }
            | Self::Billed { what, .. } => what,
        }
    }
}

/// One protocol enum whose variants must be exhaustively wired (rule D9).
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveEnum {
    /// Defining file (violations are reported at the variant declaration).
    pub file: &'static str,
    /// The enum's name.
    pub enum_name: &'static str,
    /// Everything each variant must have.
    pub requirements: &'static [Requirement],
}

/// The protocol enums rule D9 polices. Adding a variant to one of these
/// without wiring every listed site fails `cargo test` at the declaration.
pub const EXHAUSTIVE_ENUMS: &[ExhaustiveEnum] = &[
    ExhaustiveEnum {
        file: "crates/ring/src/messages.rs",
        enum_name: "MessageKind",
        requirements: &[
            Requirement::ArmIn {
                file: "crates/ring/src/messages.rs",
                func: "index",
                what: "a dense-index arm in `MessageKind::index`",
            },
            Requirement::ListedIn {
                file: "crates/ring/src/messages.rs",
                const_name: "ALL",
                what: "an entry in `MessageKind::ALL` (breakdown/registry order)",
            },
            Requirement::Billed {
                fns: &["record", "observe_timeout"],
                what: "a `MessageStats` billing call (`record`/`observe_timeout`) at a use site",
            },
        ],
    },
    ExhaustiveEnum {
        file: "crates/sim/src/dst.rs",
        enum_name: "DstEvent",
        requirements: &[
            Requirement::ArmIn {
                file: "crates/sim/src/dst.rs",
                func: "apply",
                what: "a handler arm in `World::apply` (applies the event under the oracle)",
            },
            Requirement::ArmIn {
                file: "crates/sim/src/dst.rs",
                func: "random_event",
                what: "a generator arm in `random_event` (fuzz coverage)",
            },
            Requirement::ArmIn {
                file: "crates/sim/src/dst.rs",
                func: "fmt",
                what: "a `Display` arm (repro rendering)",
            },
            Requirement::QuotedIn {
                file: "crates/sim/src/dst.rs",
                func: "parse_event",
                what: "a quoted arm in `parse_event` (repro round-trip)",
            },
        ],
    },
];

/// Whether the walker should descend into / lint this path at all.
///
/// Fixtures are deliberate rule violations (the lint test corpus), `target`
/// and `.git` are build products, and the shims vendor an external API
/// surface (they *define* `thread_rng`; holding them to the workspace's
/// conventions would mean diverging from the upstream API they mirror).
pub fn linted(path: &str) -> bool {
    !path.starts_with("target/")
        && !path.contains("/target/")
        && !path.starts_with(".git/")
        && !path.contains("tests/fixtures/")
}

fn in_shims(path: &str) -> bool {
    path.starts_with("shims/")
}

fn in_det_crate(path: &str) -> bool {
    DET_CRATES.iter().any(|c| path.starts_with(c))
}

fn in_det_src(path: &str) -> bool {
    DET_CRATES.iter().any(|c| {
        let mut src = String::with_capacity(c.len() + 4);
        src.push_str(c);
        src.push_str("src/");
        path.starts_with(&src)
    })
}

/// Whether `rule` applies to the file at `path` (before `#[cfg(test)]`
/// region and allow-comment filtering, which are positional, not per-file).
pub fn applies(rule: RuleId, path: &str) -> bool {
    if in_shims(path) {
        // Shims mirror external crates; only the allow-grammar rules apply
        // (an allow comment in a shim must still be well-formed).
        return matches!(rule, RuleId::A0 | RuleId::A1);
    }
    match rule {
        // The one sanctioned entropy module is stats::rng — everything else,
        // including test code and examples, derives from SeedSequence.
        RuleId::D1 => path != "crates/stats/src/rng.rs",
        // Wall-clock reads need a site-level allow everywhere; the timing
        // paths in sim::exec and crates/bench carry them inline.
        RuleId::D2 => true,
        RuleId::D3 => in_det_crate(path) || path.starts_with("tests/"),
        RuleId::D4 => true,
        // D5 is scoped to library-crate src; `#[cfg(test)]` regions inside
        // those files are excluded positionally in check.rs.
        RuleId::D5 => in_det_src(path),
        RuleId::D6 => D6_FILES.contains(&path),
        RuleId::D7 => D7_FILES.contains(&path),
        // D8 reports where determinism is law: deterministic-crate src and
        // the integration-test tree. Taint still *propagates* through
        // everything (including shims — that's where `thread_rng` is
        // defined); benches and the CLI may time and jitter freely.
        RuleId::D8 => in_det_src(path) || path.starts_with("tests/"),
        // D9 reports at the protocol enum's defining file.
        RuleId::D9 => EXHAUSTIVE_ENUMS.iter().any(|e| e.file == path),
        RuleId::D10 => d10_file(path),
        RuleId::A0 | RuleId::A1 => true,
    }
}

/// Whether violations of `rule` are exempt inside `#[cfg(test)]` regions.
///
/// D5 (unwrap hygiene), D6 (public-API docs), D7 (hot-path clones), D8
/// (taint — in-file unit tests drive helpers off arbitrary state), and D10
/// (tests exercise mutation deliberately) are test-exempt; ambient entropy,
/// wall-clock, unordered maps, and unsafe would break deterministic replay
/// of the test suite itself.
pub fn test_exempt(rule: RuleId) -> bool {
    matches!(rule, RuleId::D5 | RuleId::D6 | RuleId::D7 | RuleId::D8 | RuleId::D10)
}
