//! Path-scoped rule policy.
//!
//! Paths are workspace-relative with `/` separators. The policy is code, not
//! config: the rule set is repo-specific law, and changing where a rule
//! applies should show up in review as a diff to this file (see TESTING.md
//! §"Tier 0 — static analysis" for the rationale and the procedure for
//! adding a rule).

use crate::rules::RuleId;

/// The four crates whose behaviour must be a pure function of the seed.
const DET_CRATES: &[&str] = &["crates/core/", "crates/ring/", "crates/stats/", "crates/sim/"];

/// Estimator modules whose public API must document a determinism contract
/// (rule D6). Kept explicit so adding a module is a reviewed decision.
pub const D6_FILES: &[&str] = &[
    "crates/core/src/estimator.rs",
    "crates/core/src/dfdde.rs",
    "crates/core/src/continuous.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/aggregate.rs",
    "crates/core/src/skeleton.rs",
    "crates/core/src/baseline/gossip.rs",
    "crates/core/src/baseline/random_walk.rs",
    "crates/core/src/baseline/uniform_peer.rs",
    "crates/stats/src/ecdf.rs",
    "crates/stats/src/gk.rs",
    "crates/stats/src/equidepth.rs",
    "crates/stats/src/piecewise.rs",
    "crates/stats/src/kde.rs",
    "crates/stats/src/histogram.rs",
];

/// Ring hot-path modules where cloning a successor list or a store's sorted
/// vec re-introduces the per-hop heap traffic the hot-path overhaul removed
/// (rule D7). Snapshot to the stack or share via `Arc` instead; genuinely
/// cold sites escape with a reasoned `ddelint::allow(hot-clone, ...)`.
pub const D7_FILES: &[&str] = &[
    "crates/ring/src/network.rs",
    "crates/ring/src/node.rs",
    "crates/ring/src/store.rs",
    "crates/ring/src/membership.rs",
    "crates/ring/src/query.rs",
    "crates/ring/src/replication.rs",
];

/// Whether the walker should descend into / lint this path at all.
///
/// Fixtures are deliberate rule violations (the lint test corpus), `target`
/// and `.git` are build products, and the shims vendor an external API
/// surface (they *define* `thread_rng`; holding them to the workspace's
/// conventions would mean diverging from the upstream API they mirror).
pub fn linted(path: &str) -> bool {
    !path.starts_with("target/")
        && !path.contains("/target/")
        && !path.starts_with(".git/")
        && !path.contains("tests/fixtures/")
}

fn in_shims(path: &str) -> bool {
    path.starts_with("shims/")
}

fn in_det_crate(path: &str) -> bool {
    DET_CRATES.iter().any(|c| path.starts_with(c))
}

fn in_det_src(path: &str) -> bool {
    DET_CRATES.iter().any(|c| {
        let mut src = String::with_capacity(c.len() + 4);
        src.push_str(c);
        src.push_str("src/");
        path.starts_with(&src)
    })
}

/// Whether `rule` applies to the file at `path` (before `#[cfg(test)]`
/// region and allow-comment filtering, which are positional, not per-file).
pub fn applies(rule: RuleId, path: &str) -> bool {
    if in_shims(path) {
        // Shims mirror external crates; only the allow-grammar rules apply
        // (an allow comment in a shim must still be well-formed).
        return matches!(rule, RuleId::A0 | RuleId::A1);
    }
    match rule {
        // The one sanctioned entropy module is stats::rng — everything else,
        // including test code and examples, derives from SeedSequence.
        RuleId::D1 => path != "crates/stats/src/rng.rs",
        // Wall-clock reads need a site-level allow everywhere; the timing
        // paths in sim::exec and crates/bench carry them inline.
        RuleId::D2 => true,
        RuleId::D3 => in_det_crate(path) || path.starts_with("tests/"),
        RuleId::D4 => true,
        // D5 is scoped to library-crate src; `#[cfg(test)]` regions inside
        // those files are excluded positionally in check.rs.
        RuleId::D5 => in_det_src(path),
        RuleId::D6 => D6_FILES.contains(&path),
        RuleId::D7 => D7_FILES.contains(&path),
        RuleId::A0 | RuleId::A1 => true,
    }
}

/// Whether violations of `rule` are exempt inside `#[cfg(test)]` regions.
///
/// D5 (unwrap hygiene), D6 (public-API docs), and D7 (hot-path clones) are
/// test-exempt — tests may clone freely and stay readable; ambient entropy,
/// wall-clock, unordered maps, and unsafe would break deterministic replay
/// of the test suite itself.
pub fn test_exempt(rule: RuleId) -> bool {
    matches!(rule, RuleId::D5 | RuleId::D6 | RuleId::D7)
}
