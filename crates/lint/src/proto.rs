//! D9 (message-exhaustiveness) and D10 (sans-IO boundary) — the structural
//! protocol-conformance rules.
//!
//! **D9.** The policy declares, per protocol enum ([`policy::EXHAUSTIVE_ENUMS`]),
//! the places every variant must appear: a handler arm in a named fn, a
//! listing in a registry const, a `MessageStats` billing call somewhere
//! outside the defining file, a quoted repro-parser arm. Adding a variant
//! without wiring all of them fails `cargo test` at the variant's
//! declaration line. The checks are textual-within-structure: each
//! requirement searches the code mask *inside the byte span* of the named
//! fn (found by the item parser), so a mention in a comment or an unrelated
//! fn can never satisfy it. Repro parsers match on string literals, which
//! the mask blanks — `QuotedIn` is the one requirement that searches the
//! raw source, still confined to the fn's span.
//!
//! **D10.** Estimator/probe/routing-policy modules ([`policy::D10_FILES`])
//! must stay sans-IO: they may interrogate the [`Network`] and bill stats,
//! but direct topology/data mutation (`net.insert(...)`, `net.build(...)`,
//! `net.bulk_join(...)`) belongs to drivers. Method calls on a `net` /
//! `network` receiver (and `Network::` paths) outside
//! [`policy::NETWORK_READ_WHITELIST`] are violations — the static
//! pre-enforcement of ROADMAP item 1's `(incoming message, state) →
//! outgoing messages` discipline.

use crate::check::{snippet_at, FileCheck, Violation};
use crate::policy::{self, Requirement};
use crate::rules::RuleId;

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds ident-bounded `needle` occurrences in `hay`, returning offsets.
fn ident_hits(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        from = at + 1;
        let head = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let tail = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if head && tail {
            hits.push(at);
        }
    }
    hits
}

/// Whether `hay` (a fn body or const initializer in the mask) references
/// `Enum::Variant` — the ident-bounded variant name directly preceded by
/// `::`, so a local named like a variant cannot satisfy an arm requirement.
fn has_qualified_variant(hay: &str, variant: &str) -> bool {
    ident_hits(hay, variant).iter().any(|&at| at >= 2 && &hay[at - 2..at] == "::")
}

/// The byte span of the initializer of `const NAME` in the mask (from its
/// `[` or `{` to the matching close), or `None`.
fn const_span(mask: &str, name: &str) -> Option<(usize, usize)> {
    let bytes = mask.as_bytes();
    for at in ident_hits(mask, name) {
        // Expect `const NAME` — look back over whitespace for `const`.
        let head = mask[..at].trim_end();
        if !head.ends_with("const") {
            continue;
        }
        // Walk forward to the `=`, tolerating `;` inside the type's array
        // brackets (`const ALL: [MessageKind; KIND_COUNT] = [...]`).
        let mut i = at + name.len();
        let mut ty_depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'[' | b'<' | b'(' => ty_depth += 1,
                b']' | b'>' | b')' => ty_depth = ty_depth.saturating_sub(1),
                b'=' if ty_depth == 0 => break,
                b';' if ty_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            continue;
        }
        while i < bytes.len() && bytes[i] != b'[' && bytes[i] != b'{' && bytes[i] != b';' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b';' {
            continue;
        }
        let open = bytes[i];
        let close = if open == b'[' { b']' } else { b'}' };
        let start = i;
        let mut depth = 0usize;
        while i < bytes.len() {
            if bytes[i] == open {
                depth += 1;
            } else if bytes[i] == close {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i + 1));
                }
            }
            i += 1;
        }
    }
    None
}

/// Union of body spans of every fn named `func` in `file` (match arms for
/// one enum may live in `fmt` impls for several types in the same file).
fn fn_bodies(file: &FileCheck, func: &str) -> Vec<(usize, usize)> {
    file.parsed
        .fns
        .iter()
        .filter(|f| f.name == func && f.body.1 > f.body.0)
        .map(|f| f.body)
        .collect()
}

/// Runs the D9 pass over all files, appending violations to the enum's
/// defining file at each unwired variant's declaration line.
pub fn check_d9(files: &mut [FileCheck]) {
    for spec in policy::EXHAUSTIVE_ENUMS {
        let Some(def_idx) = files.iter().position(|f| f.path == spec.file) else {
            continue; // Defining file absent (partial fixture corpus) — no law to enforce.
        };
        let variants: Vec<(String, usize)> = files[def_idx]
            .parsed
            .enums
            .iter()
            .filter(|e| e.name == spec.enum_name)
            .flat_map(|e| e.variants.iter().map(|v| (v.name.clone(), v.at)))
            .collect();
        for (variant, at) in variants {
            let mut missing: Vec<String> = Vec::new();
            for req in spec.requirements {
                let ok = match req {
                    Requirement::ArmIn { file, func, .. } => {
                        files.iter().filter(|f| f.path == *file).any(|f| {
                            fn_bodies(f, func)
                                .iter()
                                .any(|&(a, b)| has_qualified_variant(&f.lexed.mask[a..b], &variant))
                        })
                    }
                    Requirement::QuotedIn { file, func, .. } => {
                        let quoted = format!("\"{variant}\"");
                        files.iter().filter(|f| f.path == *file).any(|f| {
                            fn_bodies(f, func).iter().any(|&(a, b)| f.src[a..b].contains(&quoted))
                        })
                    }
                    Requirement::ListedIn { file, const_name, .. } => {
                        files.iter().filter(|f| f.path == *file).any(|f| {
                            const_span(&f.lexed.mask, const_name).is_some_and(|(a, b)| {
                                has_qualified_variant(&f.lexed.mask[a..b], &variant)
                            })
                        })
                    }
                    Requirement::Billed { fns, .. } => files.iter().any(|f| {
                        if f.path == spec.file {
                            return false; // Billing must happen at use sites.
                        }
                        let qualified = format!("{}::{}", spec.enum_name, variant);
                        ident_hits(&f.lexed.mask, &qualified).iter().any(|&hit| {
                            if f.in_test_region(hit) {
                                return false;
                            }
                            let head = f.lexed.mask[..hit].trim_end();
                            let Some(head) = head.strip_suffix('(') else {
                                return false;
                            };
                            let head = head.trim_end();
                            fns.iter().any(|b| {
                                head.ends_with(b)
                                    && !head.as_bytes()[..head.len() - b.len()]
                                        .last()
                                        .copied()
                                        .is_some_and(is_ident_byte)
                            })
                        })
                    }),
                };
                if !ok {
                    missing.push(req.describe().to_string());
                }
            }
            if missing.is_empty() {
                continue;
            }
            let (line, col) = files[def_idx].lexed.pos(at);
            let message = format!(
                "variant `{}::{}` is not fully wired: missing {}",
                spec.enum_name,
                variant,
                missing.join("; ")
            );
            let snippet = snippet_at(&files[def_idx].src, &files[def_idx].lexed, at);
            let path = files[def_idx].path.clone();
            files[def_idx].push(Violation { path, line, col, rule: RuleId::D9, message, snippet });
        }
    }
}

/// Runs the D10 pass, appending violations to each offending file.
pub fn check_d10(files: &mut [FileCheck]) {
    for file in files.iter_mut() {
        if !policy::applies(RuleId::D10, &file.path) {
            continue;
        }
        let mut found: Vec<(usize, String)> = Vec::new();
        for f in &file.parsed.fns {
            if file.in_test_region(f.at) {
                continue;
            }
            for call in &f.calls {
                let name = call.segments.last().map_or("", String::as_str);
                let flagged = if call.is_method {
                    matches!(call.receiver.as_deref(), Some("net" | "network"))
                        && !policy::NETWORK_READ_WHITELIST.contains(&name)
                } else {
                    call.segments.len() >= 2
                        && call.segments[call.segments.len() - 2] == "Network"
                        && !policy::NETWORK_READ_WHITELIST.contains(&name)
                };
                if flagged {
                    found.push((
                        call.at,
                        format!(
                            "direct `Network` mutation `{name}` in a sans-IO module — \
                             return an intent and let the driver apply it \
                             (see DESIGN.md §7 / ROADMAP item 1)"
                        ),
                    ));
                }
            }
        }
        for (at, message) in found {
            let (line, col) = file.lexed.pos(at);
            let snippet = snippet_at(&file.src, &file.lexed, at);
            let path = file.path.clone();
            file.push(Violation { path, line, col, rule: RuleId::D10, message, snippet });
        }
    }
}
