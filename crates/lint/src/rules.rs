//! The `ddelint` rule set: ids, names, needles, and messages.
//!
//! Rules are lexical by design — each one is a set of *needles* searched in
//! the code mask produced by [`crate::lexer::lex`] (so comments and string
//! literals can never match), plus a path scope decided by
//! [`crate::policy`]. D6 (doc-determinism) is the one structural rule; its
//! logic lives in [`crate::check`].

/// Identifier of one lint rule. `A0`/`A1` police the allow grammar itself so
/// that escapes stay honest (no blanket allows, no stale allows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// No ambient entropy: `thread_rng` / `from_entropy` / `rand::random`
    /// outside `stats::rng`.
    D1,
    /// No wall-clock reads (`Instant::now` / `SystemTime`) in deterministic
    /// paths without a site-level allow proving the value never feeds results.
    D2,
    /// No `HashMap`/`HashSet` in deterministic crates: iteration order is
    /// randomized per process, which breaks byte-identical replay.
    D3,
    /// No `unsafe` anywhere without an allow carrying a reason.
    D4,
    /// No bare `unwrap()` / empty `expect("")` in library-crate non-test
    /// code.
    D5,
    /// Every `pub fn` in the core/stats estimator modules documents its
    /// determinism contract.
    D6,
    /// No `.clone()` of successor lists or sorted store vecs in the ring
    /// hot-path modules — the per-hop allocations the perf overhaul removed
    /// (snapshot to the stack, or share via `Arc`, instead).
    D7,
    /// Determinism taint: no fn in a deterministic path may *transitively*
    /// reach a D1/D2 entropy or wall-clock source through the call graph,
    /// unless it threads an explicit seed/RNG parameter or the flow carries
    /// a reasoned allow. Catches helpers that launder `thread_rng()` two
    /// calls deep.
    D8,
    /// Message exhaustiveness: every variant of a policed protocol enum
    /// (`MessageKind`, `DstEvent`) must be wired everywhere the policy says
    /// — handler arm, registry listing, stats billing, repro parser.
    D9,
    /// Sans-IO boundary: estimator/probe/routing-policy modules may not
    /// directly mutate the `Network` outside the read/probe/billing
    /// whitelist — drivers own mutation.
    D10,
    /// Malformed `ddelint::allow` (unknown rule id or missing/empty reason).
    A0,
    /// An allow that suppressed nothing — stale escapes must be removed.
    A1,
}

/// How a needle must sit in the code mask to count as a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Both ends must not touch identifier characters (`unsafe`, `HashMap`,
    /// and path needles like `Instant::now` — `my_rand::random` cannot match
    /// because `rand` would sit against the `_`, while a leading `::` as in
    /// `std::time::Instant::now` still matches).
    Ident,
    /// Exact substring (`.unwrap()`, `.expect("")` — already self-delimited).
    Exact,
}

/// One searchable pattern belonging to a rule.
#[derive(Debug, Clone, Copy)]
pub struct Needle {
    /// The rule this needle reports as.
    pub rule: RuleId,
    /// Substring searched in the code mask.
    pub text: &'static str,
    /// Boundary discipline for the match.
    pub boundary: Boundary,
}

impl RuleId {
    /// Short mnemonic accepted (alongside the `Dn` form) in allow comments.
    pub fn name(self) -> &'static str {
        match self {
            Self::D1 => "ambient-rng",
            Self::D2 => "wallclock",
            Self::D3 => "unordered-map",
            Self::D4 => "unsafe",
            Self::D5 => "unwrap",
            Self::D6 => "doc-determinism",
            Self::D7 => "hot-clone",
            Self::D8 => "det-taint",
            Self::D9 => "message-exhaustive",
            Self::D10 => "sans-io",
            Self::A0 => "bad-allow",
            Self::A1 => "unused-allow",
        }
    }

    /// The `Dn`/`An` code.
    pub fn code(self) -> &'static str {
        match self {
            Self::D1 => "D1",
            Self::D2 => "D2",
            Self::D3 => "D3",
            Self::D4 => "D4",
            Self::D5 => "D5",
            Self::D6 => "D6",
            Self::D7 => "D7",
            Self::D8 => "D8",
            Self::D9 => "D9",
            Self::D10 => "D10",
            Self::A0 => "A0",
            Self::A1 => "A1",
        }
    }

    /// One-line human description, shown by `ddelint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Self::D1 => "ambient entropy (thread_rng/from_entropy/rand::random) outside stats::rng",
            Self::D2 => "wall-clock read (Instant::now/SystemTime) in a deterministic path",
            Self::D3 => "HashMap/HashSet in a deterministic crate (BTree or sorted-vec only)",
            Self::D4 => "unsafe code without an allow carrying a reason",
            Self::D5 => "bare unwrap()/expect(\"\") in library-crate non-test code",
            Self::D6 => "pub fn in an estimator module lacking a determinism-contract doc comment",
            Self::D7 => "successor-list/sorted-store clone on a ring hot path (snapshot or Arc-share instead)",
            Self::D8 => "fn transitively reaches ambient entropy/wall-clock without threading a seed parameter",
            Self::D9 => "protocol enum variant missing a handler arm, registry entry, billing call, or parser arm",
            Self::D10 => "direct Network mutation in a sans-IO module (outside the read/probe/billing whitelist)",
            Self::A0 => "malformed ddelint::allow (unknown rule or missing/empty reason)",
            Self::A1 => "ddelint::allow that suppressed no violation",
        }
    }

    /// Parses either the `Dn` code or the mnemonic name.
    pub fn parse(s: &str) -> Option<Self> {
        let all = [
            Self::D1,
            Self::D2,
            Self::D3,
            Self::D4,
            Self::D5,
            Self::D6,
            Self::D7,
            Self::D8,
            Self::D9,
            Self::D10,
            Self::A0,
            Self::A1,
        ];
        all.into_iter().find(|r| r.code() == s || r.name() == s)
    }

    /// All rules that can be targeted by an allow comment. `A0`/`A1` cannot
    /// be allowed away — escapes for the escape mechanism would defeat it.
    pub fn allowable(self) -> bool {
        !matches!(self, Self::A0 | Self::A1)
    }
}

/// The needle table for the textual rules D1–D5 and D7. D6 has no needles;
/// it is driven by doc-comment structure in [`crate::check`].
pub const NEEDLES: &[Needle] = &[
    Needle { rule: RuleId::D1, text: "thread_rng", boundary: Boundary::Ident },
    Needle { rule: RuleId::D1, text: "from_entropy", boundary: Boundary::Ident },
    Needle { rule: RuleId::D1, text: "rand::random", boundary: Boundary::Ident },
    Needle { rule: RuleId::D2, text: "Instant::now", boundary: Boundary::Ident },
    Needle { rule: RuleId::D2, text: "SystemTime", boundary: Boundary::Ident },
    Needle { rule: RuleId::D3, text: "HashMap", boundary: Boundary::Ident },
    Needle { rule: RuleId::D3, text: "HashSet", boundary: Boundary::Ident },
    Needle { rule: RuleId::D4, text: "unsafe", boundary: Boundary::Ident },
    Needle { rule: RuleId::D5, text: ".unwrap()", boundary: Boundary::Exact },
    Needle { rule: RuleId::D5, text: ".expect(\"\")", boundary: Boundary::Exact },
    Needle { rule: RuleId::D7, text: ".successors.clone()", boundary: Boundary::Exact },
    Needle { rule: RuleId::D7, text: ".sorted.clone()", boundary: Boundary::Exact },
];
