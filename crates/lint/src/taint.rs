//! D8 — determinism taint. Follows entropy and wall-clock reads through the
//! [`crate::graph`] call graph so a helper cannot launder `thread_rng()` two
//! calls deep.
//!
//! **Sources.** A fn *seeds* taint when it (a) is named `thread_rng` /
//! `from_entropy` (the ambient-entropy definitions the shims mirror), or
//! (b) its body contains a D1/D2 needle. A needle source is defused only by
//! the same site-level `ddelint::allow(D1|D2, reason)` that suppresses the
//! needle violation itself, and only where that rule applies — the allow is
//! a reviewed semantic assertion ("this value never feeds results"), so it
//! stops the flow; a *policy* exemption (shims, `stats::rng`) is positional
//! and does not.
//!
//! **Propagation.** Taint flows caller-ward along resolved edges,
//! unconditionally, recording one witness path per tainted fn.
//!
//! **Reporting.** A tainted fn in D8 scope (deterministic-crate `src/` and
//! the integration-test tree, outside `#[cfg(test)]` regions) is a
//! violation, reported at the call site that imports the taint. Two outs:
//! a fn whose *signature* threads an explicit seed/RNG parameter
//! (`SeedSequence`, `Component`, `rng`, `seed`, ...) is absolved of
//! *transitive* taint — but never of a direct call to a source — and an
//! inline `ddelint::allow(det-taint, reason)` at the call site escapes with
//! review. A fn that is itself a needle source is not re-reported (D1/D2
//! already fires there when the rule applies).

use std::collections::{BTreeMap, BTreeSet};

use crate::check::{snippet_at, FileCheck, Violation};
use crate::graph::{NodeId, SymbolGraph};
use crate::policy;
use crate::rules::{Boundary, RuleId, NEEDLES};

/// What kind of nondeterminism a source leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// Ambient entropy (D1 needles, or the `thread_rng`/`from_entropy` defs).
    Entropy,
    /// Wall-clock reads (D2 needles).
    Wallclock,
}

impl SourceKind {
    fn noun(self) -> &'static str {
        match self {
            Self::Entropy => "ambient entropy",
            Self::Wallclock => "wall-clock time",
        }
    }
}

/// Fn names that *define* an entropy source (the shim API surface).
const SOURCE_FNS: &[&str] = &["thread_rng", "from_entropy"];

/// Identifier-bounded markers in a fn signature that mark it as explicitly
/// threading its randomness: taint arriving *transitively* stops here.
const SEED_MARKERS: &[&str] =
    &["SeedSequence", "Component", "Rng", "StdRng", "RngCore", "rng", "seed", "seeds", "entropy"];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Ident-bounded substring search.
fn contains_ident(hay: &str, needle: &str) -> bool {
    find_ident(hay, needle).is_some()
}

fn find_ident(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        from = at + 1;
        let head = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let tail = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if head && tail {
            return Some(at);
        }
    }
    None
}

/// How a node became tainted.
#[derive(Debug, Clone, Copy)]
struct Taint {
    kind: SourceKind,
    /// The callee that carried the taint in (self for sources).
    via: NodeId,
    /// Call-site byte in this node's file (source byte for sources).
    at: usize,
    /// Whether this node is itself a source (vs transitively tainted).
    is_source: bool,
}

/// Runs the D8 pass, appending violations to the owning files.
pub fn check_d8(files: &mut [FileCheck], graph: &SymbolGraph) {
    // 1. Find sources.
    let mut taints: BTreeMap<NodeId, Taint> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let id = NodeId(i);
        let file = &files[node.file];
        let f = &file.parsed.fns[node.item];
        if SOURCE_FNS.contains(&f.name.as_str()) {
            taints.insert(
                id,
                Taint { kind: SourceKind::Entropy, via: id, at: f.at, is_source: true },
            );
            continue;
        }
        let body = &file.lexed.mask[f.body.0..f.body.1];
        for needle in NEEDLES {
            let kind = match needle.rule {
                RuleId::D1 => SourceKind::Entropy,
                RuleId::D2 => SourceKind::Wallclock,
                _ => continue,
            };
            let ok = match needle.boundary {
                Boundary::Ident => find_ident(body, needle.text),
                Boundary::Exact => body.find(needle.text),
            };
            let Some(rel) = ok else { continue };
            let at = f.body.0 + rel;
            // A site-level allow (where the rule applies) defuses the source.
            if policy::applies(needle.rule, &file.path) {
                let line = file.lexed.line_of(at);
                if file.allowed_lines(needle.rule).contains(&line) {
                    continue;
                }
            }
            taints.insert(id, Taint { kind, via: id, at, is_source: true });
            break;
        }
    }

    // 2. Propagate caller-ward (breadth-first, deterministic order).
    let mut frontier: BTreeSet<NodeId> = taints.keys().copied().collect();
    while let Some(&id) = frontier.iter().next() {
        frontier.remove(&id);
        let t = taints[&id];
        let kind = t.kind;
        let callee = graph.fn_of(files, id);
        // Absolved fns do not forward transitive taint: their randomness is
        // caller-provided by contract. A reviewed `allow(det-taint, ...)` at
        // the importing call site stops the flow the same way (the allow is
        // the "path carries a reasoned allow" escape — callers stay clean).
        // Sources always forward.
        if !t.is_source {
            if sig_absolves(&callee.sig) {
                continue;
            }
            let file = &files[graph.file_of(id)];
            let line = file.lexed.line_of(t.at);
            if file.allowed_lines(RuleId::D8).contains(&line) {
                continue;
            }
        }
        let edges: Vec<_> = graph.callers_of(id).copied().collect();
        for e in edges {
            if taints.contains_key(&e.from) {
                continue;
            }
            taints.insert(e.from, Taint { kind, via: id, at: e.at, is_source: false });
            frontier.insert(e.from);
        }
    }

    // 3. Report tainted fns in scope.
    for (&id, taint) in &taints {
        if taint.is_source {
            continue; // D1/D2 already report the site where they apply.
        }
        let node = graph.nodes[id.0];
        let path = files[node.file].path.clone();
        if !policy::applies(RuleId::D8, &path) {
            continue;
        }
        let f = &files[node.file].parsed.fns[node.item];
        if files[node.file].in_test_region(f.at) {
            continue;
        }
        // Seed-threading absolution — transitive taint only: a direct call
        // to a source fn is never absolved by the caller's own signature.
        let via_is_source = taints.get(&taint.via).is_some_and(|t| t.is_source);
        if sig_absolves(&f.sig) && !via_is_source {
            continue;
        }
        let witness = witness_chain(files, graph, &taints, id);
        let (line, col) = files[node.file].lexed.pos(taint.at);
        let message = format!("fn `{}` reaches {} via {}", f.name, taint.kind.noun(), witness);
        let snippet = snippet_at(&files[node.file].src, &files[node.file].lexed, taint.at);
        files[node.file].push(Violation { path, line, col, rule: RuleId::D8, message, snippet });
    }
}

/// Whether a fn signature (text after the name) names a seed-threading
/// parameter or type.
fn sig_absolves(sig: &str) -> bool {
    SEED_MARKERS.iter().any(|m| contains_ident(sig, m))
}

/// Renders the call chain from `id` down to its source, e.g.
/// "`jitter` (crates/stats/src/rng.rs:12) → `thread_rng` (shims/rand/src/lib.rs:403)".
fn witness_chain(
    files: &[FileCheck],
    graph: &SymbolGraph,
    taints: &BTreeMap<NodeId, Taint>,
    mut id: NodeId,
) -> String {
    let mut hops = Vec::new();
    // Bounded walk down the via-chain; it terminates at a source (which the
    // previous hop already named), so the source is pushed exactly once.
    for _ in 0..64 {
        let Some(t) = taints.get(&id) else { break };
        if t.is_source {
            break;
        }
        let node = graph.nodes[t.via.0];
        let f = &files[node.file].parsed.fns[node.item];
        let line = files[node.file].lexed.line_of(f.at);
        hops.push(format!("`{}` ({}:{})", f.name, files[node.file].path, line));
        if t.via == id {
            break;
        }
        id = t.via;
    }
    hops.join(" → ")
}
