//! Golden outputs for the machine formats: the JSON and SARIF renderings of
//! a fixed fixture corpus are byte-compared against checked-in files, so any
//! change to the wire format is a visible diff in review (CI uploads the
//! SARIF to code scanning — silent drift there is a broken dashboard).
//!
//! Re-bless after an intentional change with:
//! `GOLDEN_UPDATE=1 cargo test -p lint --test emit_golden`

use lint::{check_workspace, emit};

fn fixture(file: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    std::fs::read_to_string(format!("{dir}{file}")).expect("fixture exists")
}

fn golden_path(file: &str) -> String {
    format!("{}{file}", concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/"))
}

/// One violation per rule family: D3 (alias), D8 (taint chain), D9
/// (unwired variant), D10 (boundary). Paths are synthetic but realistic, so
/// the golden files double as format documentation.
fn corpus() -> Vec<(String, String)> {
    [
        ("crates/ring/src/fixture.rs", "d3_alias_violation.rs"),
        ("crates/stats/src/rng.rs", "d8_source.rs"),
        ("crates/stats/src/ecdf.rs", "d8_violation.rs"),
        ("crates/ring/src/messages.rs", "d9_violation.rs"),
        ("crates/core/src/fixture.rs", "d10_violation.rs"),
    ]
    .into_iter()
    .map(|(path, file)| (path.to_string(), fixture(file)))
    .collect()
}

fn compare(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, got).expect("golden dir is writable");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{name} missing — bless with GOLDEN_UPDATE=1"));
    assert_eq!(got, want, "{name} drifted — bless with GOLDEN_UPDATE=1 if intentional");
}

#[test]
fn json_output_is_byte_stable() {
    compare("violations.json", &emit::to_json(&check_workspace(&corpus())));
}

#[test]
fn sarif_output_is_byte_stable() {
    compare("violations.sarif", &emit::to_sarif(&check_workspace(&corpus())));
}

#[test]
fn empty_reports_are_well_formed() {
    let json = emit::to_json(&[]);
    assert!(json.contains("\"count\": 0"), "{json}");
    let sarif = emit::to_sarif(&[]);
    assert!(sarif.contains("\"results\": []") || sarif.contains("\"results\": [\n"), "{sarif}");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
}
