// Fixture: malformed allows, each a distinct A0 case.
fn f() -> u64 {
    // ddelint::allow(nonsense-rule, "unknown rule id")
    // ddelint::allow(unwrap)
    // ddelint::allow(wallclock, "")
    // ddelint::allow(unused-allow, "meta rules cannot be escaped")
    7
}
