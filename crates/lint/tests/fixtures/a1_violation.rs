// Fixture: a stale allow that suppresses nothing.
fn f() -> u64 {
    // ddelint::allow(ambient-rng, "nothing on the next line draws entropy")
    7
}
