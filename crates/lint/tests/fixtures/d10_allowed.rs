// Fixture: D10 clean — whitelisted reads/probes plus one reviewed mutation
// behind a reasoned allow.
pub fn survey(net: &mut Network, origin: RingId) -> usize {
    let mut seen = net.len();
    if net.is_alive(origin) {
        seen += 1;
    }
    // ddelint::allow(sans-io, "fixture: reviewed repair path — the driver contract is documented at the call site")
    net.rewire_perfectly();
    seen
}
