// Fixture: D10 — direct Network mutation inside a sans-IO module: one
// method call on the `net` receiver, one `Network::` path call.
pub fn probe_then_mutate(net: &mut Network, origin: RingId) -> usize {
    let before = net.len();
    net.bulk_join(4);
    Network::rewire_perfectly(net);
    before
}
