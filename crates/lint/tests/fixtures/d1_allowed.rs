// Fixture: D1 with a well-formed site allow.
fn roll() -> u64 {
    // ddelint::allow(ambient-rng, "fixture: demonstrates the escape grammar")
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
