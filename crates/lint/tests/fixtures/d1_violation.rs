// Fixture: D1 true positive — ambient entropy in a deterministic crate.
fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

fn reseed() -> StdRng {
    StdRng::from_entropy()
}

fn coin() -> bool {
    rand::random()
}
