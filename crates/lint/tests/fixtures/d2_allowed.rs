// Fixture: D2 with a trailing site allow.
fn stamp() -> std::time::Instant {
    std::time::Instant::now() // ddelint::allow(wallclock, "timing-only, never feeds results")
}
