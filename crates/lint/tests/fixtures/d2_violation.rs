// Fixture: D2 true positive — wall-clock read in a deterministic path.
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

fn epoch() -> u64 {
    let t = std::time::SystemTime::now();
    0
}
