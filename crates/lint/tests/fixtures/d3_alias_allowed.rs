// Fixture: the same shape aliased to an *ordered* map is clean — alias
// resolution looks at the target, not the local name.
use std::collections::BTreeMap as Map;

fn tally(keys: &[u64]) -> Map<u64, u64> {
    let mut m = Map::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
