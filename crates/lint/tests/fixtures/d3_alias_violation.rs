// Fixture: D3 alias blindness — the alias resolves to an unordered map, so
// every usage of `Map` is flagged, not just the declaration the needle sees.
use std::collections::HashMap as Map;

fn tally(keys: &[u64]) -> Map<u64, u64> {
    let mut m = Map::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
