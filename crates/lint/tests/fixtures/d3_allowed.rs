// Fixture: D3 with a site allow on the use declaration and the sites.
// ddelint::allow(unordered-map, "fixture: scratch tally, drained via sorted keys before any iteration")
use std::collections::HashSet;

fn dedup(keys: &[u64]) -> usize {
    // ddelint::allow(unordered-map, "fixture: only len() is read, no iteration")
    let s: HashSet<u64> = keys.iter().copied().collect();
    s.len()
}
