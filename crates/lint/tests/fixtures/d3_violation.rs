// Fixture: D3 true positive — unordered map in a deterministic crate.
use std::collections::HashMap;

fn tally(keys: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
