// Fixture: D4 with a reasoned allow.
fn read_len(v: &[u8]) -> usize {
    // ddelint::allow(unsafe, "fixture: no-op unsafe block kept to exercise the rule")
    unsafe { v.len() }
}
