// Fixture: D4 true positive — unsafe without an allow.
fn transmute_len(v: &[u8]) -> usize {
    unsafe { v.len() }
}
