// Fixture: D5 with a reasoned allow.
fn head(v: &[u64]) -> u64 {
    // ddelint::allow(unwrap, "fixture: caller guarantees non-empty by construction")
    *v.first().unwrap()
}
