// Fixture: D5 true positives — bare unwrap and empty expect outside tests.
fn head(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

fn parse(s: &str) -> u64 {
    s.parse().expect("")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
