//! Fixture: D6 satisfied two ways — a contract line, and a reasoned allow.

/// Inserts one sample.
///
/// Determinism: pure function of `self` and `x`; iteration order is the
/// sorted tuple order, never hash order.
pub fn insert(x: f64) {
    let _ = x;
}

// ddelint::allow(doc-determinism, "fixture: trait-impl glue, contract documented on the trait")
pub fn glue(q: f64) -> f64 {
    q
}
