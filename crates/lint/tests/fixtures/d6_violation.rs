//! Fixture: D6 true positives — estimator-module pub fns without contracts.

/// Adds one sample. Docs present, but no contract line.
pub fn insert(x: f64) {
    let _ = x;
}

pub fn undocumented(q: f64) -> f64 {
    q
}
