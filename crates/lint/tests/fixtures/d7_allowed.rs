// Fixture: D7 with a reasoned allow on a genuinely cold path.
fn debug_dump(node: &Node) -> Vec<RingId> {
    // ddelint::allow(hot-clone, "fixture: diagnostics-only path, runs once per report")
    node.successors.clone()
}
