// Fixture: D7 true positives — successor-list and sorted-store clones on a
// ring hot path.
fn snapshot_successors(node: &Node) -> Vec<RingId> {
    node.successors.clone()
}

fn snapshot_store(store: &LocalStore) -> Vec<f64> {
    store.sorted.clone()
}

#[cfg(test)]
mod tests {
    // Test regions may clone freely (D7 is test-exempt).
    fn clone_in_test(node: &Node) -> Vec<RingId> {
        node.successors.clone()
    }
}
