// Fixture: D8 defused — the reviewed allow at the importing call site stops
// the flow, so `tagged` (the caller) stays clean too.
fn laundered_tag() -> u64 {
    // ddelint::allow(det-taint, "fixture: jitter feeds a debug tag, never an estimate")
    crate::rng::ambient_jitter()
}

/// Deterministic in results: the jitter tag is debug-only (see allow above).
pub fn tagged(x: u64) -> u64 {
    x ^ laundered_tag()
}
