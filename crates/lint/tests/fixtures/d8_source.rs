// Fixture: D8 source — an ambient-entropy helper hiding in the one module
// the D1 *needle* rule exempts. The taint pass still seeds here: policy
// exemption is positional, not a semantic review.
pub fn ambient_jitter() -> u64 {
    rand::thread_rng().next_u64()
}
