// Fixture: D8 — entropy laundered two calls deep. `laundered` imports the
// taint directly; `perturb` transitively. `stream_blend` threads an explicit
// seed parameter, so its *transitive* taint is absolved (no third report).
fn laundered() -> u64 {
    crate::rng::ambient_jitter()
}

/// Nondeterministic on purpose (fixture): the D8 drill target.
pub fn perturb(x: u64) -> u64 {
    x ^ laundered()
}

/// Deterministic: pure fn of `seed` and `x` once the chain is absolved.
pub fn stream_blend(seed: u64, x: u64) -> u64 {
    x ^ laundered() ^ seed
}
