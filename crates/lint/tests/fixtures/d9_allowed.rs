// Fixture: D9 with a reasoned allow on the unwired variant's line.
pub enum MessageKind {
    Probe,
    Unbilled, // ddelint::allow(message-exhaustive, "fixture: reserved kind, billed when the transport lands")
}

impl MessageKind {
    const ALL: [MessageKind; 2] = [MessageKind::Probe, MessageKind::Unbilled];

    const fn index(self) -> usize {
        match self {
            MessageKind::Probe => 0,
            MessageKind::Unbilled => 1,
        }
    }
}
