// Fixture: the use site billing `Probe` (but not `Unbilled`) — paired with
// d9_violation.rs in the workspace-rule tests.
fn bill(stats: &mut MessageStats) {
    stats.record(MessageKind::Probe, 0);
}
