// Fixture: D9 — `Unbilled` has a dense-index arm and an `ALL` entry, but no
// `MessageStats` billing call anywhere outside this file.
pub enum MessageKind {
    Probe,
    Unbilled,
}

impl MessageKind {
    const ALL: [MessageKind; 2] = [MessageKind::Probe, MessageKind::Unbilled];

    const fn index(self) -> usize {
        match self {
            MessageKind::Probe => 0,
            MessageKind::Unbilled => 1,
        }
    }
}
