//! Nightly wall-clock budget: the full-workspace `ddelint check` (lexing,
//! item parsing, symbol-graph build, taint propagation, and the protocol
//! wall, over every crate) must finish in under 2 seconds even in a debug
//! build — the lint runs in tier-0 CI on every push, so its latency is part
//! of the edit-compile loop. BENCH_lint.json records the measured headroom.
//!
//! `#[ignore]`d in the default run (timing asserts are machine-sensitive);
//! the nightly workflow runs it with `--ignored` on the pinned 1-core box.

use std::path::Path;

#[test]
#[ignore = "wall-clock budget: nightly runs this with --ignored on pinned hardware"]
fn full_workspace_check_stays_under_two_seconds() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    // Read once outside the timed region; the budget covers analysis, and
    // I/O variance on shared runners would only add noise.
    let tree = lint::read_tree(root).expect("workspace tree is readable");
    assert!(tree.len() >= 40, "tree unexpectedly small ({} files)", tree.len());

    // ddelint::allow(wallclock, "timing-only: bounds the nightly lint-budget assert, never an experiment value")
    let started = std::time::Instant::now();
    let violations = lint::check_workspace(&tree);
    let elapsed = started.elapsed();

    assert!(violations.is_empty(), "main must stay violation-free: {violations:?}");
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "full-workspace lint took {:.3}s (budget 2s, {} files)",
        elapsed.as_secs_f64(),
        tree.len()
    );
}
