//! Unit coverage for the item parser and symbol graph underneath the
//! cross-file rules: use-alias expansion, call-site extraction, impl/mod
//! context, enum variants behind attributes, and the DOT dump.

use lint::check::FileCheck;
use lint::graph::SymbolGraph;
use lint::parse::{parse, ParsedFile};

fn parsed(src: &str) -> ParsedFile {
    parse(&lint::lexer::lex(src))
}

#[test]
fn use_groups_and_aliases_expand() {
    let p = parsed(
        "use std::collections::{BTreeMap, HashMap as Map};\n\
         use crate::estimator::{self, DfDde};\n\
         use super::*;\n",
    );
    let names: Vec<(&str, String)> =
        p.uses.iter().map(|u| (u.name.as_str(), u.segments.join("::"))).collect();
    assert_eq!(
        names,
        vec![
            ("BTreeMap", "std::collections::BTreeMap".to_string()),
            ("Map", "std::collections::HashMap".to_string()),
            ("estimator", "crate::estimator".to_string()),
            ("DfDde", "crate::estimator::DfDde".to_string()),
        ],
        "glob imports are skipped; `self` binds the module"
    );
}

#[test]
fn fns_capture_impl_and_module_context() {
    let p = parsed(
        "impl Network {\n    pub fn probe(&self) -> u64 { helper() }\n}\n\
         mod tests {\n    fn case() {}\n}\n\
         fn helper() -> u64 { 7 }\n",
    );
    assert_eq!(p.fns.len(), 3);
    assert_eq!(p.fns[0].name, "probe");
    assert_eq!(p.fns[0].impl_type.as_deref(), Some("Network"));
    assert!(p.fns[0].is_pub);
    assert!(p.fns[0].sig.contains("&self"), "{}", p.fns[0].sig);
    assert_eq!(p.fns[1].name, "case");
    assert_eq!(p.fns[1].modules, vec!["tests".to_string()]);
    assert_eq!(p.fns[2].impl_type, None);
}

#[test]
fn calls_distinguish_paths_and_method_sugar() {
    let p = parsed(
        "fn f(net: &Network) {\n    \
           rand::thread_rng();\n    \
           net.probe(3);\n    \
           Self::inner();\n    \
           bare();\n\
         }\n",
    );
    let calls = &p.fns[0].calls;
    let rendered: Vec<(String, bool, Option<&str>)> =
        calls.iter().map(|c| (c.segments.join("::"), c.is_method, c.receiver.as_deref())).collect();
    assert_eq!(
        rendered,
        vec![
            ("rand::thread_rng".to_string(), false, None),
            ("probe".to_string(), true, Some("net")),
            ("Self::inner".to_string(), false, None),
            ("bare".to_string(), false, None),
        ]
    );
}

#[test]
fn enum_variants_survive_attributes_and_payloads() {
    let p = parsed(
        "#[derive(Debug)]\n\
         pub enum Ev {\n    \
           #[allow(dead_code)]\n    \
           Join { id: u64 },\n    \
           Fail(u32),\n    \
           Probe,\n\
         }\n",
    );
    assert_eq!(p.enums.len(), 1);
    let names: Vec<&str> = p.enums[0].variants.iter().map(|v| v.name.as_str()).collect();
    assert_eq!(names, vec!["Join", "Fail", "Probe"], "payloads and attrs are not variants");
}

#[test]
fn graph_resolves_qualified_calls_across_files_and_dumps_dot() {
    let files = vec![
        FileCheck::new("crates/stats/src/rng.rs", "pub fn jitter() -> u64 { 4 }\n"),
        FileCheck::new("crates/stats/src/ecdf.rs", "fn blend() -> u64 { crate::rng::jitter() }\n"),
    ];
    let graph = SymbolGraph::build(&files);
    assert_eq!(graph.nodes.len(), 2);
    let jitter = graph.named("jitter")[0];
    let callers: Vec<_> = graph.callers_of(jitter).collect();
    assert_eq!(callers.len(), 1, "crate::rng::jitter resolves to the rng file");
    let dot = graph.to_dot(&files);
    assert!(dot.starts_with("digraph ddelint"), "{dot}");
    assert!(dot.contains("jitter") && dot.contains("blend"), "{dot}");
    assert!(dot.contains("->"), "the call edge is drawn: {dot}");
}
