//! The red/green demo from the acceptance criteria: the real
//! `crates/stats/src/ecdf.rs` lints clean today (green); the same file with a
//! deliberately planted `thread_rng()` is caught by D1 at the planted line
//! (red). This pins the linter to the actual tree, not just to fixtures.

use lint::check_source;
use lint::rules::RuleId;

const ECDF_PATH: &str = "crates/stats/src/ecdf.rs";

fn real_ecdf() -> String {
    let on_disk = concat!(env!("CARGO_MANIFEST_DIR"), "/../../crates/stats/src/ecdf.rs");
    std::fs::read_to_string(on_disk).expect("ecdf.rs exists in the workspace")
}

#[test]
fn green_the_real_ecdf_lints_clean() {
    let v = check_source(ECDF_PATH, &real_ecdf());
    assert!(v.is_empty(), "ecdf.rs must be clean, got: {v:?}");
}

#[test]
fn red_a_planted_thread_rng_is_caught_by_d1() {
    let mut src = real_ecdf();
    let planted = "\nfn sneak_entropy() -> f64 {\n    let mut rng = rand::thread_rng();\n    rng.gen::<f64>()\n}\n";
    src.push_str(planted);
    let v = check_source(ECDF_PATH, &src);
    assert_eq!(v.len(), 1, "exactly the planted site must fire: {v:?}");
    assert_eq!(v[0].rule, RuleId::D1);
    // The planted call sits 3 lines from the end of the appended block; check
    // the reported line matches the actual text at that position.
    let line_text = src.lines().nth(v[0].line - 1).expect("reported line exists");
    assert!(line_text.contains("rand::thread_rng()"), "line {}: {line_text}", v[0].line);
    assert_eq!(v[0].col, line_text.find("thread_rng").expect("needle on line") + 1);
}

#[test]
fn red_goes_green_again_with_a_site_allow() {
    let mut src = real_ecdf();
    src.push_str(
        "\nfn sneak_entropy() -> f64 {\n    // ddelint::allow(ambient-rng, \"demo: red/green test round-trip\")\n    let mut rng = rand::thread_rng();\n    rng.gen::<f64>()\n}\n",
    );
    let v = check_source(ECDF_PATH, &src);
    assert!(v.is_empty(), "allow must restore green: {v:?}");
}
