//! The red/green demo from the acceptance criteria: the real
//! `crates/stats/src/ecdf.rs` lints clean today (green); the same file with a
//! deliberately planted `thread_rng()` is caught by D1 at the planted line
//! (red). This pins the linter to the actual tree, not just to fixtures.
//!
//! The cross-file rules get the same treatment against the *whole* workspace
//! (`read_tree` + one in-memory plant): D8 catches entropy laundered through
//! the exempt RNG module, D9 catches an unwired `MessageKind` variant, and
//! D10 catches a direct `Network` mutation inside an estimator module.

use std::path::Path;

use lint::rules::RuleId;
use lint::{check_source, check_workspace, read_tree, Violation};

const ECDF_PATH: &str = "crates/stats/src/ecdf.rs";

fn real_ecdf() -> String {
    let on_disk = concat!(env!("CARGO_MANIFEST_DIR"), "/../../crates/stats/src/ecdf.rs");
    std::fs::read_to_string(on_disk).expect("ecdf.rs exists in the workspace")
}

#[test]
fn green_the_real_ecdf_lints_clean() {
    let v = check_source(ECDF_PATH, &real_ecdf());
    assert!(v.is_empty(), "ecdf.rs must be clean, got: {v:?}");
}

#[test]
fn red_a_planted_thread_rng_is_caught_by_d1() {
    let mut src = real_ecdf();
    let planted = "\nfn sneak_entropy() -> f64 {\n    let mut rng = rand::thread_rng();\n    rng.gen::<f64>()\n}\n";
    src.push_str(planted);
    let v = check_source(ECDF_PATH, &src);
    assert_eq!(v.len(), 1, "exactly the planted site must fire: {v:?}");
    assert_eq!(v[0].rule, RuleId::D1);
    // The planted call sits 3 lines from the end of the appended block; check
    // the reported line matches the actual text at that position.
    let line_text = src.lines().nth(v[0].line - 1).expect("reported line exists");
    assert!(line_text.contains("rand::thread_rng()"), "line {}: {line_text}", v[0].line);
    assert_eq!(v[0].col, line_text.find("thread_rng").expect("needle on line") + 1);
}

#[test]
fn red_goes_green_again_with_a_site_allow() {
    let mut src = real_ecdf();
    src.push_str(
        "\nfn sneak_entropy() -> f64 {\n    // ddelint::allow(ambient-rng, \"demo: red/green test round-trip\")\n    let mut rng = rand::thread_rng();\n    rng.gen::<f64>()\n}\n",
    );
    let v = check_source(ECDF_PATH, &src);
    assert!(v.is_empty(), "allow must restore green: {v:?}");
}

// ---- whole-workspace drills for the cross-file rules -----------------------

/// The real workspace sources, read from disk relative to this crate.
fn real_tree() -> Vec<(String, String)> {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    read_tree(root).expect("workspace tree is readable")
}

/// Appends `plant` to the in-memory copy of `path` within the tree.
fn plant(tree: &mut [(String, String)], path: &str, plant: &str) {
    let entry = tree
        .iter_mut()
        .find(|(p, _)| p == path)
        .unwrap_or_else(|| panic!("{path} is part of the linted tree"));
    entry.1.push_str(plant);
}

fn rules_of(violations: &[Violation]) -> Vec<RuleId> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn green_the_real_workspace_lints_clean() {
    let v = check_workspace(&real_tree());
    assert!(v.is_empty(), "main must stay violation-free: {v:?}");
}

#[test]
fn red_d8_catches_entropy_laundered_through_the_exempt_rng_module() {
    let mut tree = real_tree();
    // The helper hides in `stats::rng`, where the D1 needle rule does not
    // apply — only the taint pass can see the flow from its importers.
    plant(
        &mut tree,
        "crates/stats/src/rng.rs",
        "\npub fn drill_jitter() -> u64 {\n    rand::thread_rng().next_u64()\n}\n",
    );
    plant(
        &mut tree,
        "crates/stats/src/ecdf.rs",
        "\nfn drill_launder() -> u64 {\n    crate::rng::drill_jitter()\n}\n\n\
         /// Nondeterministic on purpose: the D8 drill target.\n\
         pub fn drill_perturb(x: u64) -> u64 {\n    x ^ drill_launder()\n}\n",
    );
    let v = check_workspace(&tree);
    assert_eq!(rules_of(&v), vec![RuleId::D8, RuleId::D8], "{v:?}");
    // Reported at the importing call sites, with file:line:col pointing at
    // real text and a witness chain naming the source.
    for violation in &v {
        assert_eq!(violation.path, "crates/stats/src/ecdf.rs");
        assert!(violation.message.contains("drill_jitter"), "{}", violation.message);
        let src = &tree.iter().find(|(p, _)| p == &violation.path).unwrap().1;
        let line_text = src.lines().nth(violation.line - 1).expect("reported line exists");
        assert!(
            line_text.contains("drill_jitter()") || line_text.contains("drill_launder()"),
            "line {}: {line_text}",
            violation.line
        );
    }
}

#[test]
fn red_d9_catches_an_unwired_message_kind_variant() {
    let mut tree = real_tree();
    let messages = &mut tree
        .iter_mut()
        .find(|(p, _)| p == "crates/ring/src/messages.rs")
        .expect("messages.rs is part of the linted tree")
        .1;
    let anchor = "pub enum MessageKind {";
    let planted = messages.replace(anchor, "pub enum MessageKind {\n    DrillUnwired,");
    assert_ne!(&planted, messages, "anchor must exist");
    *messages = planted;
    let v = check_workspace(&tree);
    assert_eq!(rules_of(&v), vec![RuleId::D9], "{v:?}");
    assert_eq!(v[0].path, "crates/ring/src/messages.rs");
    assert!(v[0].message.contains("MessageKind::DrillUnwired"), "{}", v[0].message);
    // All three wiring dimensions are missing and each is named.
    for expect in ["MessageKind::index", "MessageKind::ALL", "billing"] {
        assert!(v[0].message.contains(expect), "missing `{expect}` in: {}", v[0].message);
    }
    assert!(v[0].snippet.contains("DrillUnwired"));
}

#[test]
fn red_d10_catches_a_direct_network_mutation_in_an_estimator() {
    let mut tree = real_tree();
    plant(
        &mut tree,
        "crates/core/src/dfdde.rs",
        "\n/// Deterministic: drill-only; never merged.\n\
         pub fn drill_repair(net: &mut Network) {\n    net.set_replication(3);\n}\n",
    );
    let v = check_workspace(&tree);
    assert_eq!(rules_of(&v), vec![RuleId::D10], "{v:?}");
    assert_eq!(v[0].path, "crates/core/src/dfdde.rs");
    assert!(v[0].message.contains("set_replication"), "{}", v[0].message);
    assert!(v[0].snippet.contains("net.set_replication(3)"));
}

#[test]
fn red_d10_goes_green_with_a_reasoned_allow() {
    let mut tree = real_tree();
    plant(
        &mut tree,
        "crates/core/src/dfdde.rs",
        "\n/// Deterministic: drill-only; never merged.\n\
         pub fn drill_repair(net: &mut Network) {\n    \
         // ddelint::allow(sans-io, \"demo: red/green round-trip for the boundary rule\")\n    \
         net.set_replication(3);\n}\n",
    );
    let v = check_workspace(&tree);
    assert!(v.is_empty(), "allow must restore green: {v:?}");
}
