//! Rule behaviour over the fixture corpus: one true-positive and one
//! allowlisted case per rule D1–D6, plus the allow-grammar meta rules A0/A1.

use lint::check_source;
use lint::rules::RuleId;

/// Runs a fixture's contents under a synthetic workspace path (rule scoping
/// is path-driven, so the path chooses which rules are live).
fn check_fixture(file: &str, as_path: &str) -> Vec<lint::Violation> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let src = std::fs::read_to_string(format!("{dir}{file}")).expect("fixture exists");
    check_source(as_path, &src)
}

fn rules_of(violations: &[lint::Violation]) -> Vec<RuleId> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn d1_true_positive_reports_each_needle_with_position() {
    let v = check_fixture("d1_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D1, RuleId::D1, RuleId::D1]);
    // First hit: `rand::thread_rng()` on line 3. The column points at the
    // needle, not the line start.
    assert_eq!((v[0].line, v[0].col), (3, 25));
    assert!(v[0].snippet.contains("thread_rng"));
    assert!(v[1].snippet.contains("from_entropy"));
    assert!(v[2].snippet.contains("rand::random"));
}

#[test]
fn d1_allow_suppresses_and_is_consumed() {
    let v = check_fixture("d1_allowed.rs", "crates/core/src/fixture.rs");
    assert!(v.is_empty(), "allowed fixture must be clean, got: {v:?}");
}

#[test]
fn d1_exempts_only_the_rng_module() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/d1_violation.rs"
    ))
    .expect("fixture exists");
    assert!(check_source("crates/stats/src/rng.rs", &src).is_empty());
    assert_eq!(check_source("crates/stats/src/ecdf.rs", &src).len(), 3);
}

#[test]
fn d2_true_positive_and_trailing_allow() {
    let v = check_fixture("d2_violation.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D2, RuleId::D2]);
    let v = check_fixture("d2_allowed.rs", "crates/sim/src/fixture.rs");
    assert!(v.is_empty(), "trailing same-line allow must cover the site: {v:?}");
}

#[test]
fn d3_true_positive_counts_every_mention() {
    let v = check_fixture("d3_violation.rs", "crates/ring/src/fixture.rs");
    assert!(v.iter().all(|x| x.rule == RuleId::D3));
    assert_eq!(v.len(), 3, "use decl + type + constructor: {v:?}");
    let v = check_fixture("d3_allowed.rs", "crates/ring/src/fixture.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d3_does_not_apply_outside_deterministic_crates() {
    let v = check_fixture("d3_violation.rs", "crates/cli/src/fixture.rs");
    assert!(v.is_empty(), "cli may use HashMap: {v:?}");
}

#[test]
fn d4_true_positive_and_reasoned_allow() {
    let v = check_fixture("d4_violation.rs", "crates/stats/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D4]);
    let v = check_fixture("d4_allowed.rs", "crates/stats/src/fixture.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d5_true_positive_skips_cfg_test_region() {
    let v = check_fixture("d5_violation.rs", "crates/stats/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D5, RuleId::D5]);
    assert!(v[0].snippet.contains("unwrap"));
    assert!(v[1].snippet.contains("expect"));
    // The unwrap inside #[cfg(test)] mod tests produced no third violation.
}

#[test]
fn d5_allow_and_binary_crate_exemption() {
    let v = check_fixture("d5_allowed.rs", "crates/core/src/fixture.rs");
    assert!(v.is_empty(), "{v:?}");
    let v = check_fixture("d5_violation.rs", "crates/bench/src/fixture.rs");
    assert!(v.is_empty(), "D5 is scoped to library crates: {v:?}");
}

#[test]
fn d6_flags_missing_and_contractless_docs() {
    let v = check_fixture("d6_violation.rs", "crates/stats/src/kde.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D6, RuleId::D6]);
    assert!(v[0].message.contains("does not name"), "{}", v[0].message);
    assert!(v[1].message.contains("no doc comment"), "{}", v[1].message);
}

#[test]
fn d6_satisfied_by_contract_line_or_reasoned_allow() {
    let v = check_fixture("d6_allowed.rs", "crates/stats/src/kde.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d6_only_applies_to_listed_estimator_modules() {
    let v = check_fixture("d6_violation.rs", "crates/stats/src/metrics.rs");
    assert!(v.is_empty(), "metrics.rs is not in the D6 module list: {v:?}");
}

#[test]
fn d7_flags_hot_path_clones_outside_tests() {
    let v = check_fixture("d7_violation.rs", "crates/ring/src/network.rs");
    assert_eq!(rules_of(&v), vec![RuleId::D7, RuleId::D7]);
    assert!(v[0].snippet.contains(".successors.clone()"), "{}", v[0].snippet);
    assert!(v[1].snippet.contains(".sorted.clone()"), "{}", v[1].snippet);
    // The clone inside #[cfg(test)] produced no third violation.
}

#[test]
fn d7_reasoned_allow_escapes() {
    let v = check_fixture("d7_allowed.rs", "crates/ring/src/query.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d7_only_applies_to_ring_hot_path_modules() {
    let v = check_fixture("d7_violation.rs", "crates/ring/src/messages.rs");
    assert!(v.is_empty(), "messages.rs is not a D7 hot-path module: {v:?}");
    let v = check_fixture("d7_violation.rs", "crates/sim/src/runner.rs");
    assert!(v.is_empty(), "D7 is scoped to crates/ring: {v:?}");
}

#[test]
fn a0_rejects_each_malformed_allow() {
    let v = check_fixture("a0_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::A0; 4]);
    assert!(v[0].message.contains("unknown rule"));
    assert!(v[1].message.contains("missing a reason"));
    assert!(v[2].message.contains("empty reason"));
    assert!(v[3].message.contains("cannot be allowed away"));
}

#[test]
fn a1_flags_stale_allows() {
    let v = check_fixture("a1_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec![RuleId::A1]);
    assert!(v[0].message.contains("suppressed nothing"));
}

#[test]
fn shims_are_exempt_except_allow_grammar() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/d1_violation.rs"
    ))
    .expect("fixture exists");
    assert!(check_source("shims/rand/src/lib.rs", &src).is_empty());
    let bad_allow = "// ddelint::allow(bogus, \"x\")\nfn f() {}\n";
    assert_eq!(check_source("shims/rand/src/lib.rs", bad_allow).len(), 1);
}

#[test]
fn rule_ids_parse_by_code_and_name() {
    assert_eq!(RuleId::parse("D1"), Some(RuleId::D1));
    assert_eq!(RuleId::parse("wallclock"), Some(RuleId::D2));
    assert_eq!(RuleId::parse("doc-determinism"), Some(RuleId::D6));
    assert_eq!(RuleId::parse("bogus"), None);
}

#[test]
fn violations_render_file_line_col_and_rule() {
    let v = check_fixture("d4_violation.rs", "crates/stats/src/fixture.rs");
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/stats/src/fixture.rs:3:5: D4[unsafe]"),
        "unexpected render: {rendered}"
    );
}
