//! Tokenizer edge-case pins: the lexer must classify comments and literals
//! byte-exactly, or every rule built on the code mask inherits the bug.

use lint::lexer::lex;

/// The mask must be byte-length-identical so positions map 1:1.
fn mask_of(src: &str) -> String {
    let lexed = lex(src);
    assert_eq!(lexed.mask.len(), src.len(), "mask must preserve byte length");
    lexed.mask
}

#[test]
fn line_comment_is_blanked_and_collected() {
    let src = "let x = 1; // thread_rng() here is prose\nlet y = 2;\n";
    let lexed = lex(src);
    assert!(!lexed.mask.contains("thread_rng"));
    assert!(lexed.mask.contains("let y = 2;"));
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("thread_rng"));
}

#[test]
fn double_slash_inside_string_is_not_a_comment() {
    let src = "let url = \"http://example.org // not a comment\";\nlet z = 3;\n";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "no comment should be found: {:?}", lexed.comments);
    assert!(lexed.mask.contains("let z = 3;"));
    assert!(!lexed.mask.contains("example.org"));
}

#[test]
fn nested_block_comments_blank_to_the_outer_close() {
    let src = "a /* outer /* inner */ still comment */ b";
    let mask = mask_of(src);
    assert_eq!(mask.trim(), "a                                       b".trim());
    assert!(!mask.contains("inner"));
    assert!(!mask.contains("still"));
}

#[test]
fn raw_string_with_comment_markers_and_quotes_is_blanked() {
    let src = "let s = r#\"thread_rng() // \"quoted\" inside\"#; unsafe_marker();";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert!(!lexed.mask.contains("thread_rng"));
    // Code after the raw string must survive unblanked.
    assert!(lexed.mask.contains("unsafe_marker();"));
}

#[test]
fn raw_string_fence_ignores_shorter_hash_runs() {
    // The body contains `"#` which must NOT close an `r##` string.
    let src = "let s = r##\"contains \"# inside\"##; let tail = 9;";
    let lexed = lex(src);
    assert!(!lexed.mask.contains("inside"));
    assert!(lexed.mask.contains("let tail = 9;"));
}

#[test]
fn byte_string_and_byte_char_are_literals() {
    let src = "let b = b\"bytes // not comment\"; let c = b'x'; let after = 1;";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert!(!lexed.mask.contains("bytes"));
    assert!(lexed.mask.contains("let after = 1;"));
}

#[test]
fn quote_char_literal_does_not_open_a_string() {
    // `'"'` is a char literal; the following code must remain code.
    let src = "let q = '\"'; let live = thread_rng_marker;";
    let lexed = lex(src);
    assert!(lexed.mask.contains("let live = thread_rng_marker;"));
}

#[test]
fn escaped_quote_does_not_close_the_string() {
    let src = "let s = \"a\\\"b // x\"; let post = 2;";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert!(!lexed.mask.contains("// x"));
    assert!(lexed.mask.contains("let post = 2;"));
}

#[test]
fn lifetimes_stay_code() {
    let src = "fn first<'a>(v: &'a [u64]) -> &'a u64 { &v[0] }";
    let mask = mask_of(src);
    assert_eq!(mask, src, "no literal in this source; mask must be identical");
}

#[test]
fn char_literals_are_blanked_but_delimited() {
    let src = "let c = 'x'; let esc = '\\n'; let post = 4;";
    let lexed = lex(src);
    assert!(!lexed.mask.contains('x'), "char interior must be blanked");
    assert!(lexed.mask.contains("let post = 4;"));
}

#[test]
fn identifier_ending_in_r_before_string_is_not_raw() {
    // `for` ends in `r`; the string after it is an ordinary literal and the
    // loop keyword must stay code.
    let src = "for s in list { take(\"// data\") }";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert!(lexed.mask.contains("for s in list"));
    assert!(!lexed.mask.contains("data"));
}

#[test]
fn positions_are_one_based_line_and_column() {
    let src = "line one\nlet rng = thread_rng();\n";
    let lexed = lex(src);
    let at = src.find("thread_rng").unwrap();
    assert_eq!(lexed.pos(at), (2, 11));
    assert_eq!(lexed.line_of(at), 2);
}
