//! Tier-0 as a tier-1 test: the whole workspace must lint clean, so a rule
//! violation introduced by any future PR fails `cargo test` as well as the CI
//! `ddelint check` step.

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .canonicalize()
        .expect("workspace root resolves");
    let violations = lint::check_tree(&root).expect("tree walk succeeds");
    assert!(
        violations.is_empty(),
        "ddelint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
