//! Cross-file rule behaviour (D8 taint, D9 exhaustiveness, D10 sans-IO)
//! plus the D3 alias-resolution fix, driven through `check_workspace` over
//! fixture corpora with synthetic workspace paths (rule scoping is
//! path-driven, so the paths choose which rules are live).

use lint::rules::RuleId;
use lint::{check_source, check_workspace, Violation};

fn fixture(file: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    std::fs::read_to_string(format!("{dir}{file}")).expect("fixture exists")
}

/// Builds a corpus of (synthetic path, fixture contents) pairs and checks it.
fn check_corpus(pairs: &[(&str, &str)]) -> Vec<Violation> {
    let inputs: Vec<(String, String)> =
        pairs.iter().map(|(path, file)| (path.to_string(), fixture(file))).collect();
    check_workspace(&inputs)
}

fn rules_of(violations: &[Violation]) -> Vec<RuleId> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn d3_alias_flags_every_usage_not_just_the_declaration() {
    let v = check_source("crates/ring/src/fixture.rs", &fixture("d3_alias_violation.rs"));
    assert!(v.iter().all(|x| x.rule == RuleId::D3), "{v:?}");
    // The `use` line fires via the needle; the return type and the
    // constructor fire via alias resolution.
    assert_eq!(v.len(), 3, "decl + 2 alias usages: {v:?}");
    assert!(v[1].message.contains("std::collections::HashMap"), "{}", v[1].message);
    assert!(v[1].snippet.contains("Map<u64, u64>"));
    assert!(v[2].snippet.contains("Map::new()"));
}

#[test]
fn d3_alias_to_an_ordered_map_is_clean() {
    let v = check_source("crates/ring/src/fixture.rs", &fixture("d3_alias_allowed.rs"));
    assert!(v.is_empty(), "BTreeMap alias must be clean: {v:?}");
}

#[test]
fn d8_catches_laundering_two_calls_deep_with_witness_chain() {
    let v = check_corpus(&[
        ("crates/stats/src/rng.rs", "d8_source.rs"),
        ("crates/stats/src/ecdf.rs", "d8_violation.rs"),
    ]);
    assert_eq!(rules_of(&v), vec![RuleId::D8, RuleId::D8], "{v:?}");
    // Direct importer: reported at the call site of the exempt-module helper.
    assert_eq!(v[0].path, "crates/stats/src/ecdf.rs");
    assert!(v[0].message.contains("`laundered` reaches ambient entropy"), "{}", v[0].message);
    assert!(v[0].message.contains("ambient_jitter"), "{}", v[0].message);
    assert!(v[0].snippet.contains("crate::rng::ambient_jitter()"));
    // Transitive importer: the witness names the whole chain.
    assert!(v[1].message.contains("`perturb` reaches ambient entropy"), "{}", v[1].message);
    assert!(
        v[1].message.contains("`laundered`") && v[1].message.contains("ambient_jitter"),
        "witness chain must name both hops: {}",
        v[1].message
    );
    // `stream_blend` threads a seed parameter: transitive taint absolved, so
    // exactly two reports.
}

#[test]
fn d8_source_module_alone_reports_nothing() {
    // The exempt RNG module seeds taint but is not itself D8-reported (and
    // D1 does not apply there) — without an importer the corpus is clean.
    let v = check_corpus(&[("crates/stats/src/rng.rs", "d8_source.rs")]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d8_allow_at_the_import_site_stops_the_flow_for_callers_too() {
    let v = check_corpus(&[
        ("crates/stats/src/rng.rs", "d8_source.rs"),
        ("crates/stats/src/ecdf.rs", "d8_allowed.rs"),
    ]);
    assert!(v.is_empty(), "reviewed allow must silence the chain: {v:?}");
}

#[test]
fn d8_does_not_apply_outside_deterministic_src() {
    let v = check_corpus(&[
        ("crates/stats/src/rng.rs", "d8_source.rs"),
        ("crates/bench/src/fixture.rs", "d8_violation.rs"),
    ]);
    assert!(v.is_empty(), "benches may jitter: {v:?}");
}

#[test]
fn d9_reports_the_unbilled_variant_at_its_declaration() {
    let v = check_corpus(&[
        ("crates/ring/src/messages.rs", "d9_violation.rs"),
        ("crates/ring/src/network.rs", "d9_billing.rs"),
    ]);
    assert_eq!(rules_of(&v), vec![RuleId::D9], "only Unbilled fires: {v:?}");
    assert_eq!(v[0].path, "crates/ring/src/messages.rs");
    assert!(v[0].message.contains("MessageKind::Unbilled"), "{}", v[0].message);
    assert!(v[0].message.contains("billing"), "{}", v[0].message);
    assert!(v[0].snippet.contains("Unbilled"));
    // Line/col point at the variant declaration.
    let src = fixture("d9_violation.rs");
    let line_text = src.lines().nth(v[0].line - 1).expect("line exists");
    assert!(line_text.trim_start().starts_with("Unbilled"), "{line_text}");
}

#[test]
fn d9_missing_index_arm_is_named_separately() {
    // Drop the billing file AND the index arm coverage by feeding only the
    // enum file with its arms intact: billing is the one missing dimension,
    // and the message says which.
    let v = check_corpus(&[("crates/ring/src/messages.rs", "d9_violation.rs")]);
    // Both variants now lack billing (no use-site file in the corpus).
    assert_eq!(rules_of(&v), vec![RuleId::D9, RuleId::D9], "{v:?}");
    assert!(v.iter().all(|x| x.message.contains("billing")), "{v:?}");
    assert!(
        v.iter().all(|x| !x.message.contains("dense-index")),
        "index arms are present in the fixture: {v:?}"
    );
}

#[test]
fn d9_allow_on_the_variant_line_escapes() {
    let v = check_corpus(&[
        ("crates/ring/src/messages.rs", "d9_allowed.rs"),
        ("crates/ring/src/network.rs", "d9_billing.rs"),
    ]);
    assert!(v.is_empty(), "reasoned allow on the variant line: {v:?}");
}

#[test]
fn d10_flags_method_and_path_mutations_with_position() {
    let v = check_corpus(&[("crates/core/src/fixture.rs", "d10_violation.rs")]);
    assert_eq!(rules_of(&v), vec![RuleId::D10, RuleId::D10], "{v:?}");
    assert!(v[0].message.contains("bulk_join"), "{}", v[0].message);
    assert!(v[0].snippet.contains("net.bulk_join(4)"));
    assert!(v[1].message.contains("rewire_perfectly"), "{}", v[1].message);
    assert!(v[1].snippet.contains("Network::rewire_perfectly"));
    // Whitelisted reads (`len`) did not fire.
}

#[test]
fn d10_whitelisted_reads_and_reasoned_allow_are_clean() {
    let v = check_corpus(&[("crates/core/src/fixture.rs", "d10_allowed.rs")]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn d10_does_not_apply_outside_the_sans_io_layer() {
    let v = check_corpus(&[("crates/sim/src/fixture.rs", "d10_violation.rs")]);
    assert!(v.is_empty(), "drivers own mutation: {v:?}");
}
