//! Arena-backed per-peer routing state for the mega-scale regime.
//!
//! Before this module, every [`Node`] owned two heap allocations for routing
//! state alone — a `Vec<RingId>` successor list and a ~1 KiB
//! `Vec<Option<RingId>>` finger table — so a 10⁶-peer network cost two
//! million small allocations before storing a single item, and building one
//! re-derived each finger with an `O(log P)` binary search
//! (`O(P · RING_BITS · log P)` total). This module replaces both:
//!
//! * [`SuccessorList`] — the successor list as an inline
//!   `[RingId; SUCCESSOR_LIST_LEN]` plus a length, heap-free;
//! * [`FingerTable`] — the finger table as an inline
//!   `[RingId; RING_BITS]` plus a presence bitmask, heap-free;
//! * [`RingArena`] — the slab that owns every node record. Together with the
//!   id and order columns kept by [`crate::index::NodeIndex`] this is the
//!   network's columnar store: a dense sorted `Vec<RingId>` for search, a
//!   `Vec<u32>` permutation mapping ring positions to slots, and one
//!   contiguous slab of fixed-size records for state. Forking a network
//!   clones three flat vectors (data stores stay CoW behind their `Arc`s),
//!   and a membership change splices the 12-byte-per-position columns — the
//!   records never move, so churn at 10⁶ peers costs kilobytes of memmove,
//!   not megabytes.
//!
//! [`RingArena::wire_perfect`] rebuilds *perfect* routing state in
//! `O(P · RING_BITS)`: for a fixed finger level `f`, the targets
//! `ids[i] + 2^f` are strictly increasing in `i`, so their owners are found
//! with one monotone sweep over the (virtually doubled) id column instead of
//! a binary search per finger.

use crate::id::{RingId, RING_BITS};
use crate::node::{Node, SUCCESSOR_LIST_LEN};

/// A heap-free successor list: up to [`SUCCESSOR_LIST_LEN`] peer ids, inline.
///
/// Dereferences to a slice, so reads (`iter`, `contains`, `first`, indexing,
/// `len`) look exactly like the `Vec<RingId>` it replaced. Mutations keep a
/// normalization invariant — slots at and beyond `len` are `RingId(0)` — so
/// the derived `PartialEq`/`Hash` compare logical contents and
/// [`RingArena::check_columns`] can detect a corrupted length column.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SuccessorList {
    ids: [RingId; SUCCESSOR_LIST_LEN],
    len: u8,
}

impl SuccessorList {
    /// An empty list.
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self { ids: [RingId(0); SUCCESSOR_LIST_LEN], len: 0 }
    }

    /// Appends `peer`.
    ///
    /// # Panics
    /// Panics if the list is full — construction paths never exceed the
    /// capacity; bounded insertion goes through [`Node::offer_successor`].
    /// Deterministic: appends in call order; no hidden ordering.
    pub fn push(&mut self, peer: RingId) {
        let len = self.len as usize;
        assert!(len < SUCCESSOR_LIST_LEN, "successor list over capacity");
        self.ids[len] = peer;
        self.len += 1;
    }

    /// Keeps only the ids satisfying `pred`, preserving order.
    /// Deterministic: order-preserving filter over inline slots.
    pub fn retain(&mut self, mut pred: impl FnMut(&RingId) -> bool) {
        let len = self.len as usize;
        let mut kept = 0;
        for i in 0..len {
            if pred(&self.ids[i]) {
                self.ids[kept] = self.ids[i];
                kept += 1;
            }
        }
        for slot in &mut self.ids[kept..len] {
            *slot = RingId(0);
        }
        self.len = kept as u8;
    }

    /// Shortens the list to at most `n` ids.
    /// Deterministic: order-preserving shrink; vacated slots normalized.
    pub fn truncate(&mut self, n: usize) {
        let len = self.len as usize;
        if n < len {
            for slot in &mut self.ids[n..len] {
                *slot = RingId(0);
            }
            self.len = n as u8;
        }
    }

    /// Removes and returns the id at `idx`, shifting the tail left.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    /// Deterministic: index-addressed removal with a left shift.
    pub fn remove(&mut self, idx: usize) -> RingId {
        let len = self.len as usize;
        assert!(idx < len, "remove index {idx} out of bounds (len {len})");
        let removed = self.ids[idx];
        self.ids.copy_within(idx + 1..len, idx);
        self.ids[len - 1] = RingId(0);
        self.len -= 1;
        removed
    }

    /// Replays the historical offer semantics (append if absent, stable-sort
    /// by clockwise distance from `me`, truncate to capacity) on a stack
    /// scratch buffer. Distance from a fixed origin is injective, so the
    /// sorted order is unique and an unstable sort is equivalent.
    pub(crate) fn offer_by_distance(&mut self, me: RingId, peer: RingId) {
        let len = self.len as usize;
        let mut scratch = [RingId(0); SUCCESSOR_LIST_LEN + 1];
        scratch[..len].copy_from_slice(&self.ids[..len]);
        let mut m = len;
        if !scratch[..len].contains(&peer) {
            scratch[m] = peer;
            m += 1;
        }
        scratch[..m].sort_unstable_by_key(|&s| me.distance_to(s));
        let keep = m.min(SUCCESSOR_LIST_LEN);
        self.ids[..keep].copy_from_slice(&scratch[..keep]);
        for slot in &mut self.ids[keep..] {
            *slot = RingId(0);
        }
        self.len = keep as u8;
    }

    /// Internal invariant check: length in bounds and vacated slots
    /// normalized to `RingId(0)`.
    fn check_shape(&self) -> Result<(), String> {
        let len = self.len as usize;
        if len > SUCCESSOR_LIST_LEN {
            return Err(format!("successor length column {len} > {SUCCESSOR_LIST_LEN}"));
        }
        if let Some(junk) = self.ids[len..].iter().find(|&&s| s != RingId(0)) {
            return Err(format!("successor slot beyond len {len} holds {junk}"));
        }
        Ok(())
    }
}

impl Default for SuccessorList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SuccessorList {
    type Target = [RingId];

    fn deref(&self) -> &[RingId] {
        &self.ids[..self.len as usize]
    }
}

impl<const N: usize> From<[RingId; N]> for SuccessorList {
    fn from(ids: [RingId; N]) -> Self {
        let mut list = Self::new();
        for id in ids {
            list.push(id);
        }
        list
    }
}

impl FromIterator<RingId> for SuccessorList {
    fn from_iter<I: IntoIterator<Item = RingId>>(iter: I) -> Self {
        let mut list = Self::new();
        for id in iter {
            list.push(id);
        }
        list
    }
}

impl IntoIterator for SuccessorList {
    type Item = RingId;
    type IntoIter = std::iter::Take<std::array::IntoIter<RingId, SUCCESSOR_LIST_LEN>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a SuccessorList {
    type Item = &'a RingId;
    type IntoIter = std::slice::Iter<'a, RingId>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq<Vec<RingId>> for SuccessorList {
    fn eq(&self, other: &Vec<RingId>) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for SuccessorList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A heap-free finger table: [`RING_BITS`] inline targets plus a presence
/// bitmask (`fingers[i] ≈ successor(id + 2^i)`, absent when the last refresh
/// failed).
///
/// Absent slots keep their target normalized to `RingId(0)` so the derived
/// `PartialEq` compares logical contents and [`RingArena::check_columns`]
/// can detect a target/bitmask desync.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FingerTable {
    targets: [RingId; RING_BITS as usize],
    mask: u64,
}

impl FingerTable {
    /// An empty table (every finger absent).
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self { targets: [RingId(0); RING_BITS as usize], mask: 0 }
    }

    /// The finger at level `i`, if set.
    #[inline]
    /// Deterministic: reads the indexed slot.
    pub fn get(&self, i: usize) -> Option<RingId> {
        if self.mask & (1u64 << i) != 0 {
            Some(self.targets[i])
        } else {
            None
        }
    }

    /// Sets or clears the finger at level `i`.
    #[inline]
    /// Deterministic: writes the indexed slot.
    pub fn set(&mut self, i: usize, target: Option<RingId>) {
        match target {
            Some(t) => {
                self.targets[i] = t;
                self.mask |= 1u64 << i;
            }
            None => {
                self.targets[i] = RingId(0);
                self.mask &= !(1u64 << i);
            }
        }
    }

    /// The set fingers in level order (the replacement for the old
    /// `fingers.iter().flatten()`); allocation-free.
    /// Deterministic: yields targets in fixed finger-index order.
    pub fn present(&self) -> impl Iterator<Item = RingId> + '_ {
        let mask = self.mask;
        (0..RING_BITS as usize)
            .filter(move |i| mask & (1u64 << i) != 0)
            .map(move |i| self.targets[i])
    }

    /// Clears every finger pointing at `dead`.
    /// Deterministic: clears matching slots in index order.
    pub fn forget(&mut self, dead: RingId) {
        for i in 0..RING_BITS as usize {
            if self.mask & (1u64 << i) != 0 && self.targets[i] == dead {
                self.set(i, None);
            }
        }
    }

    /// Internal invariant check: absent slots normalized to `RingId(0)`.
    fn check_shape(&self) -> Result<(), String> {
        for i in 0..RING_BITS as usize {
            if self.mask & (1u64 << i) == 0 && self.targets[i] != RingId(0) {
                return Err(format!("finger {i} absent in mask but targets {}", self.targets[i]));
            }
        }
        Ok(())
    }
}

impl Default for FingerTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FingerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries((0..RING_BITS as usize).filter_map(|i| self.get(i).map(|t| (i, t))))
            .finish()
    }
}

/// The slab owning every node record, addressed through the permutation
/// column kept by [`crate::index::NodeIndex`].
///
/// Records are fixed-size (successors and fingers inline, store and replica
/// payloads behind CoW handles), so the slab is one contiguous allocation
/// and positional access never chases a pointer. Records are **slot-stable**:
/// a membership change splices the 12-byte-per-position `(key, order)`
/// columns, never the ~650-byte records themselves, and a freed slot is
/// recycled through a free list (`alloc_slot` / `free_slot`) so a warmed
/// join/leave cycle allocates nothing. Ring order lives entirely in the
/// `order` column; slot indices carry no ordering meaning.
#[derive(Debug, Clone, Default)]
pub struct RingArena {
    slots: Vec<Node>,
    free: Vec<u32>,
}

impl RingArena {
    /// An empty arena.
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `n` records.
    /// Deterministic: constructs fixed contents for the given capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { slots: Vec::with_capacity(n), free: Vec::new() }
    }

    /// Number of live records (slab size minus the free list).
    /// Deterministic: reads the column lengths.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether the arena holds no live records.
    /// Deterministic: reads the column lengths.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record in slot `i`.
    #[inline]
    /// Deterministic: reads the indexed slot.
    pub fn slot(&self, i: usize) -> &Node {
        &self.slots[i]
    }

    /// Mutable access to the record in slot `i`.
    #[inline]
    /// Deterministic: borrows the indexed slot.
    pub fn slot_mut(&mut self, i: usize) -> &mut Node {
        &mut self.slots[i]
    }

    /// Appends a record at the next slab position (bulk construction: ids
    /// arrive pre-sorted, so slot order equals ring order and the order
    /// column is the identity).
    ///
    /// # Panics
    /// Panics if slots have been freed — bulk append on a recycled slab
    /// would desync slot indices from positions.
    /// Deterministic: appends in call order; no hidden ordering.
    pub fn push(&mut self, node: Node) {
        assert!(self.free.is_empty(), "bulk push on an arena with freed slots");
        self.slots.push(node);
    }

    /// Stores `node` in a recycled slot if one is free, else appends;
    /// returns the slot index. Allocation-free once the slab has capacity
    /// and the free list is non-empty.
    /// Deterministic: recycles most-recently-freed first (LIFO).
    pub fn alloc_slot(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = node;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("arena slot count exceeds u32");
                self.slots.push(node);
                s
            }
        }
    }

    /// Retires slot `s` to the free list, returning its record (the slot
    /// itself keeps a zeroed tombstone until recycled).
    /// Deterministic: swaps the indexed slot; LIFO free list.
    pub fn free_slot(&mut self, s: u32) -> Node {
        let node = std::mem::replace(&mut self.slots[s as usize], Node::new(RingId(0)));
        self.free.push(s);
        node
    }

    /// Ensures room for `additional` more live records without reallocating
    /// mid-mutation.
    /// Deterministic: capacity growth only; contents untouched.
    pub fn reserve(&mut self, additional: usize) {
        let fresh = additional.saturating_sub(self.free.len());
        self.slots.reserve(fresh);
        self.free.reserve(additional);
    }

    /// Replaces the record in slot `i`, returning the old one.
    /// Deterministic: swaps the indexed slot.
    pub fn replace(&mut self, i: usize, node: Node) -> Node {
        std::mem::replace(&mut self.slots[i], node)
    }

    /// Resets every record's routing state to the perfect steady state for
    /// the id column `keys` (ring position `i` living in slot `order[i]`),
    /// in `O(P · RING_BITS)`.
    ///
    /// Successors and predecessors read straight off ring order. Fingers use
    /// a monotone sweep per level: for fixed `f` the (un-wrapped) targets
    /// `keys[i] + 2^f` are strictly increasing, so the owning position in
    /// the virtually doubled column `[keys[0], …, keys[p-1], keys[0]+2^64, …]`
    /// only ever advances. Output is bit-identical to the per-finger
    /// `true_owner` binary search it replaced.
    ///
    /// # Panics
    /// Panics if `keys` and `order` disagree in length (the columns are
    /// out of lockstep).
    /// Deterministic: a pure function of the sorted `keys` and `order`
    /// columns.
    pub fn wire_perfect(&mut self, keys: &[RingId], order: &[u32]) {
        let p = keys.len();
        assert_eq!(p, order.len(), "id column and order column out of lockstep");
        if p == 0 {
            return;
        }
        for i in 0..p {
            let node = &mut self.slots[order[i] as usize];
            node.predecessor = Some(keys[(i + p - 1) % p]);
            let mut succs = SuccessorList::new();
            for k in 1..=SUCCESSOR_LIST_LEN.min(p - 1).max(1) {
                succs.push(keys[(i + k) % p]);
            }
            node.successors = succs;
            node.fingers = FingerTable::new();
        }
        let wrap = 1u128 << RING_BITS;
        let virt = |j: usize| -> u128 {
            if j < p {
                u128::from(keys[j].0)
            } else {
                u128::from(keys[j - p].0) + wrap
            }
        };
        for f in 0..RING_BITS as usize {
            let step = 1u128 << f;
            let mut j = 0usize;
            for i in 0..p {
                let target = u128::from(keys[i].0) + step;
                while j < 2 * p && virt(j) < target {
                    j += 1;
                }
                // j == 2p can only mean the target wrapped past the top of
                // the doubled column; ownership wraps to the first peer.
                let owner = keys[if j < 2 * p { j % p } else { 0 }];
                self.slots[order[i] as usize].fingers.set(f, Some(owner));
            }
        }
    }

    /// Column-consistency oracle for the DST harness: the id and order
    /// columns must be in lockstep (same length, strictly sorted ids, each
    /// position's slot live and holding the matching id), the order and free
    /// columns must partition the slab (every slot referenced exactly once),
    /// and every inline list must be shape-valid (length in bounds, vacated
    /// slots normalized). Returns a list of violations (empty = consistent).
    /// Deterministic: scans positions in ring order; messages are stable.
    pub fn check_columns(&self, keys: &[RingId], order: &[u32]) -> Vec<String> {
        let mut violations = Vec::new();
        if keys.len() != order.len() {
            violations.push(format!(
                "id column has {} entries but order column has {}",
                keys.len(),
                order.len()
            ));
            return violations;
        }
        if order.len() + self.free.len() != self.slots.len() {
            violations.push(format!(
                "order ({}) + free ({}) entries do not cover the {}-slot slab",
                order.len(),
                self.free.len(),
                self.slots.len()
            ));
        }
        let mut seen = vec![false; self.slots.len()];
        for &s in &self.free {
            match seen.get_mut(s as usize) {
                Some(flag) if !*flag => *flag = true,
                Some(_) => violations.push(format!("slot {s} freed twice")),
                None => violations.push(format!("free list references slot {s} out of bounds")),
            }
        }
        for (i, (&key, &s)) in keys.iter().zip(order.iter()).enumerate() {
            let node = match seen.get_mut(s as usize) {
                Some(flag) if !*flag => {
                    *flag = true;
                    &self.slots[s as usize]
                }
                Some(_) => {
                    violations.push(format!("position {i} references slot {s} already claimed"));
                    continue;
                }
                None => {
                    violations.push(format!("position {i} references slot {s} out of bounds"));
                    continue;
                }
            };
            if node.id != key {
                violations.push(format!("column desync at {i}: key {key} vs record {}", node.id));
            }
            if i + 1 < keys.len() && keys[i] >= keys[i + 1] {
                violations.push(format!("id column not strictly sorted at {i}"));
            }
            if let Err(e) = node.successors.check_shape() {
                violations.push(format!("{key}: {e}"));
            }
            if let Err(e) = node.fingers.check_shape() {
                violations.push(format!("{key}: {e}"));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_list_mirrors_vec_semantics() {
        let mut list = SuccessorList::new();
        assert!(list.is_empty());
        list.push(RingId(5));
        list.push(RingId(9));
        list.push(RingId(12));
        assert_eq!(list.len(), 3);
        assert_eq!(list.first(), Some(&RingId(5)));
        assert!(list.contains(&RingId(9)));
        assert_eq!(list, vec![RingId(5), RingId(9), RingId(12)]);
        assert_eq!(list.remove(0), RingId(5));
        assert_eq!(list, vec![RingId(9), RingId(12)]);
        list.retain(|&s| s != RingId(12));
        assert_eq!(list, vec![RingId(9)]);
        list.truncate(0);
        assert!(list.is_empty());
        assert_eq!(list, SuccessorList::new());
    }

    #[test]
    fn successor_list_normalizes_vacated_slots() {
        let mut a: SuccessorList = [RingId(3), RingId(7), RingId(11)].into();
        a.remove(1);
        a.check_shape().expect("normalized after remove");
        a.retain(|&s| s != RingId(3));
        a.check_shape().expect("normalized after retain");
        // Logical equality ignores history: a list built directly compares equal.
        let b: SuccessorList = [RingId(11)].into();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn successor_list_push_guards_capacity() {
        let mut list = SuccessorList::new();
        for i in 0..=SUCCESSOR_LIST_LEN as u64 {
            list.push(RingId(i));
        }
    }

    #[test]
    fn offer_by_distance_matches_push_sort_truncate() {
        // Replay of the historical Vec semantics, including on a list that
        // is not distance-sorted (stale joins can produce those).
        let me = RingId(50);
        let mut list: SuccessorList = [RingId(100), RingId(10), RingId(60)].into();
        let mut reference: Vec<RingId> = vec![RingId(100), RingId(10), RingId(60)];
        for peer in [RingId(55), RingId(10), RingId(49), RingId(51), RingId(90), RingId(200)] {
            list.offer_by_distance(me, peer);
            if !reference.contains(&peer) {
                reference.push(peer);
            }
            reference.sort_by_key(|&s| me.distance_to(s));
            reference.truncate(SUCCESSOR_LIST_LEN);
            assert_eq!(list, reference, "after offering {peer}");
        }
    }

    #[test]
    fn finger_table_set_get_present() {
        let mut t = FingerTable::new();
        assert_eq!(t.get(0), None);
        t.set(4, Some(RingId(16)));
        t.set(6, Some(RingId(64)));
        t.set(63, Some(RingId(1)));
        assert_eq!(t.get(4), Some(RingId(16)));
        assert_eq!(t.present().collect::<Vec<_>>(), vec![RingId(16), RingId(64), RingId(1)]);
        t.set(4, None);
        assert_eq!(t.get(4), None);
        t.forget(RingId(64));
        assert_eq!(t.present().collect::<Vec<_>>(), vec![RingId(1)]);
        t.check_shape().expect("normalized");
    }

    #[test]
    fn wire_perfect_matches_binary_search_owners() {
        // Adversarially bunched ids plus wraparound coverage.
        let mut keys: Vec<RingId> = vec![
            RingId(3),
            RingId(5),
            RingId(6),
            RingId(1 << 20),
            RingId(u64::MAX / 2),
            RingId(u64::MAX - 4),
            RingId(u64::MAX - 3),
            RingId(u64::MAX),
        ];
        keys.sort();
        let mut arena = RingArena::new();
        for &k in &keys {
            arena.push(Node::new(k));
        }
        let order: Vec<u32> = (0..keys.len() as u32).collect();
        arena.wire_perfect(&keys, &order);
        let true_owner = |t: RingId| -> RingId {
            let pos = keys.partition_point(|&k| k < t);
            keys[if pos == keys.len() { 0 } else { pos }]
        };
        for (i, &id) in keys.iter().enumerate() {
            let node = arena.slot(i);
            for f in 0..RING_BITS {
                assert_eq!(
                    node.fingers.get(f as usize),
                    Some(true_owner(id.finger_start(f))),
                    "node {id} finger {f}"
                );
            }
            assert_eq!(node.predecessor, Some(keys[(i + keys.len() - 1) % keys.len()]));
            assert_eq!(node.successor(), Some(keys[(i + 1) % keys.len()]));
        }
        assert!(arena.check_columns(&keys, &order).is_empty());
    }

    #[test]
    fn wire_perfect_single_node_points_at_itself() {
        let keys = vec![RingId(42)];
        let mut arena = RingArena::new();
        arena.push(Node::new(RingId(42)));
        arena.wire_perfect(&keys, &[0]);
        let node = arena.slot(0);
        assert_eq!(node.predecessor, Some(RingId(42)));
        assert_eq!(node.successor(), Some(RingId(42)));
        for f in 0..RING_BITS as usize {
            assert_eq!(node.fingers.get(f), Some(RingId(42)));
        }
    }

    #[test]
    fn wire_perfect_follows_a_permuted_order_column() {
        // Ring position i lives in an arbitrary slot; wiring must land on
        // the slot the order column names, not on slab position i.
        let keys = vec![RingId(10), RingId(20), RingId(30)];
        let order = vec![2u32, 0, 1];
        let mut arena = RingArena::new();
        arena.push(Node::new(RingId(20))); // slot 0 = position 1
        arena.push(Node::new(RingId(30))); // slot 1 = position 2
        arena.push(Node::new(RingId(10))); // slot 2 = position 0
        arena.wire_perfect(&keys, &order);
        assert!(arena.check_columns(&keys, &order).is_empty());
        for (i, &s) in order.iter().enumerate() {
            let node = arena.slot(s as usize);
            assert_eq!(node.id, keys[i]);
            assert_eq!(node.successor(), Some(keys[(i + 1) % 3]));
            assert_eq!(node.predecessor, Some(keys[(i + 2) % 3]));
        }
    }

    #[test]
    fn alloc_slot_recycles_freed_slots() {
        let mut arena = RingArena::new();
        let a = arena.alloc_slot(Node::new(RingId(1)));
        let b = arena.alloc_slot(Node::new(RingId(2)));
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.len(), 2);
        let gone = arena.free_slot(a);
        assert_eq!(gone.id, RingId(1));
        assert_eq!(arena.len(), 1);
        // LIFO recycling: the freed slot is reused before the slab grows.
        let c = arena.alloc_slot(Node::new(RingId(3)));
        assert_eq!(c, a);
        assert_eq!(arena.slot(c as usize).id, RingId(3));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn check_columns_flags_desync() {
        let keys = vec![RingId(10), RingId(20)];
        let mut arena = RingArena::new();
        arena.push(Node::new(RingId(10)));
        arena.push(Node::new(RingId(99))); // record disagrees with column
        let violations = arena.check_columns(&keys, &[0, 1]);
        assert!(violations.iter().any(|v| v.contains("column desync")), "{violations:?}");
        assert!(arena.check_columns(&keys[..1], &[0, 1]).iter().any(|v| v.contains("entries")));
        // A position must not reference a freed slot, and the order + free
        // columns must cover the slab exactly.
        let _ = arena.free_slot(1);
        let violations = arena.check_columns(&keys, &[0, 1]);
        assert!(violations.iter().any(|v| v.contains("already claimed")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("cover")), "{violations:?}");
        // With the freed slot accounted for, the shrunken columns are clean.
        assert!(arena.check_columns(&keys[..1], &[0]).is_empty());
    }
}
