//! Arena-backed per-peer routing state for the mega-scale regime.
//!
//! Before this module, every [`Node`] owned two heap allocations for routing
//! state alone — a `Vec<RingId>` successor list and a ~1 KiB
//! `Vec<Option<RingId>>` finger table — so a 10⁶-peer network cost two
//! million small allocations before storing a single item, and building one
//! re-derived each finger with an `O(log P)` binary search
//! (`O(P · RING_BITS · log P)` total). This module replaces both:
//!
//! * [`SuccessorList`] — the successor list as an inline
//!   `[RingId; SUCCESSOR_LIST_LEN]` plus a length, heap-free;
//! * [`FingerTable`] — the finger table as an inline
//!   `[RingId; RING_BITS]` plus a presence bitmask, heap-free;
//! * [`RingArena`] — the slab that owns every node record. Together with the
//!   id column kept by [`crate::index::NodeIndex`] this is the network's
//!   columnar store: a dense sorted `Vec<RingId>` for search, and one
//!   contiguous slab of fixed-size records for state. Forking a network
//!   clones two flat vectors (data stores stay CoW behind their `Arc`s).
//!
//! [`RingArena::wire_perfect`] rebuilds *perfect* routing state in
//! `O(P · RING_BITS)`: for a fixed finger level `f`, the targets
//! `ids[i] + 2^f` are strictly increasing in `i`, so their owners are found
//! with one monotone sweep over the (virtually doubled) id column instead of
//! a binary search per finger.

use crate::id::{RingId, RING_BITS};
use crate::node::{Node, SUCCESSOR_LIST_LEN};

/// A heap-free successor list: up to [`SUCCESSOR_LIST_LEN`] peer ids, inline.
///
/// Dereferences to a slice, so reads (`iter`, `contains`, `first`, indexing,
/// `len`) look exactly like the `Vec<RingId>` it replaced. Mutations keep a
/// normalization invariant — slots at and beyond `len` are `RingId(0)` — so
/// the derived `PartialEq`/`Hash` compare logical contents and
/// [`RingArena::check_columns`] can detect a corrupted length column.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SuccessorList {
    ids: [RingId; SUCCESSOR_LIST_LEN],
    len: u8,
}

impl SuccessorList {
    /// An empty list.
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self { ids: [RingId(0); SUCCESSOR_LIST_LEN], len: 0 }
    }

    /// Appends `peer`.
    ///
    /// # Panics
    /// Panics if the list is full — construction paths never exceed the
    /// capacity; bounded insertion goes through [`Node::offer_successor`].
    /// Deterministic: appends in call order; no hidden ordering.
    pub fn push(&mut self, peer: RingId) {
        let len = self.len as usize;
        assert!(len < SUCCESSOR_LIST_LEN, "successor list over capacity");
        self.ids[len] = peer;
        self.len += 1;
    }

    /// Keeps only the ids satisfying `pred`, preserving order.
    /// Deterministic: order-preserving filter over inline slots.
    pub fn retain(&mut self, mut pred: impl FnMut(&RingId) -> bool) {
        let len = self.len as usize;
        let mut kept = 0;
        for i in 0..len {
            if pred(&self.ids[i]) {
                self.ids[kept] = self.ids[i];
                kept += 1;
            }
        }
        for slot in &mut self.ids[kept..len] {
            *slot = RingId(0);
        }
        self.len = kept as u8;
    }

    /// Shortens the list to at most `n` ids.
    /// Deterministic: order-preserving shrink; vacated slots normalized.
    pub fn truncate(&mut self, n: usize) {
        let len = self.len as usize;
        if n < len {
            for slot in &mut self.ids[n..len] {
                *slot = RingId(0);
            }
            self.len = n as u8;
        }
    }

    /// Removes and returns the id at `idx`, shifting the tail left.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    /// Deterministic: index-addressed removal with a left shift.
    pub fn remove(&mut self, idx: usize) -> RingId {
        let len = self.len as usize;
        assert!(idx < len, "remove index {idx} out of bounds (len {len})");
        let removed = self.ids[idx];
        self.ids.copy_within(idx + 1..len, idx);
        self.ids[len - 1] = RingId(0);
        self.len -= 1;
        removed
    }

    /// Replays the historical offer semantics (append if absent, stable-sort
    /// by clockwise distance from `me`, truncate to capacity) on a stack
    /// scratch buffer. Distance from a fixed origin is injective, so the
    /// sorted order is unique and an unstable sort is equivalent.
    pub(crate) fn offer_by_distance(&mut self, me: RingId, peer: RingId) {
        let len = self.len as usize;
        let mut scratch = [RingId(0); SUCCESSOR_LIST_LEN + 1];
        scratch[..len].copy_from_slice(&self.ids[..len]);
        let mut m = len;
        if !scratch[..len].contains(&peer) {
            scratch[m] = peer;
            m += 1;
        }
        scratch[..m].sort_unstable_by_key(|&s| me.distance_to(s));
        let keep = m.min(SUCCESSOR_LIST_LEN);
        self.ids[..keep].copy_from_slice(&scratch[..keep]);
        for slot in &mut self.ids[keep..] {
            *slot = RingId(0);
        }
        self.len = keep as u8;
    }

    /// Internal invariant check: length in bounds and vacated slots
    /// normalized to `RingId(0)`.
    fn check_shape(&self) -> Result<(), String> {
        let len = self.len as usize;
        if len > SUCCESSOR_LIST_LEN {
            return Err(format!("successor length column {len} > {SUCCESSOR_LIST_LEN}"));
        }
        if let Some(junk) = self.ids[len..].iter().find(|&&s| s != RingId(0)) {
            return Err(format!("successor slot beyond len {len} holds {junk}"));
        }
        Ok(())
    }
}

impl Default for SuccessorList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SuccessorList {
    type Target = [RingId];

    fn deref(&self) -> &[RingId] {
        &self.ids[..self.len as usize]
    }
}

impl<const N: usize> From<[RingId; N]> for SuccessorList {
    fn from(ids: [RingId; N]) -> Self {
        let mut list = Self::new();
        for id in ids {
            list.push(id);
        }
        list
    }
}

impl FromIterator<RingId> for SuccessorList {
    fn from_iter<I: IntoIterator<Item = RingId>>(iter: I) -> Self {
        let mut list = Self::new();
        for id in iter {
            list.push(id);
        }
        list
    }
}

impl IntoIterator for SuccessorList {
    type Item = RingId;
    type IntoIter = std::iter::Take<std::array::IntoIter<RingId, SUCCESSOR_LIST_LEN>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a SuccessorList {
    type Item = &'a RingId;
    type IntoIter = std::slice::Iter<'a, RingId>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq<Vec<RingId>> for SuccessorList {
    fn eq(&self, other: &Vec<RingId>) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for SuccessorList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A heap-free finger table: [`RING_BITS`] inline targets plus a presence
/// bitmask (`fingers[i] ≈ successor(id + 2^i)`, absent when the last refresh
/// failed).
///
/// Absent slots keep their target normalized to `RingId(0)` so the derived
/// `PartialEq` compares logical contents and [`RingArena::check_columns`]
/// can detect a target/bitmask desync.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FingerTable {
    targets: [RingId; RING_BITS as usize],
    mask: u64,
}

impl FingerTable {
    /// An empty table (every finger absent).
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self { targets: [RingId(0); RING_BITS as usize], mask: 0 }
    }

    /// The finger at level `i`, if set.
    #[inline]
    /// Deterministic: reads the indexed slot.
    pub fn get(&self, i: usize) -> Option<RingId> {
        if self.mask & (1u64 << i) != 0 {
            Some(self.targets[i])
        } else {
            None
        }
    }

    /// Sets or clears the finger at level `i`.
    #[inline]
    /// Deterministic: writes the indexed slot.
    pub fn set(&mut self, i: usize, target: Option<RingId>) {
        match target {
            Some(t) => {
                self.targets[i] = t;
                self.mask |= 1u64 << i;
            }
            None => {
                self.targets[i] = RingId(0);
                self.mask &= !(1u64 << i);
            }
        }
    }

    /// The set fingers in level order (the replacement for the old
    /// `fingers.iter().flatten()`); allocation-free.
    /// Deterministic: yields targets in fixed finger-index order.
    pub fn present(&self) -> impl Iterator<Item = RingId> + '_ {
        let mask = self.mask;
        (0..RING_BITS as usize)
            .filter(move |i| mask & (1u64 << i) != 0)
            .map(move |i| self.targets[i])
    }

    /// Clears every finger pointing at `dead`.
    /// Deterministic: clears matching slots in index order.
    pub fn forget(&mut self, dead: RingId) {
        for i in 0..RING_BITS as usize {
            if self.mask & (1u64 << i) != 0 && self.targets[i] == dead {
                self.set(i, None);
            }
        }
    }

    /// Internal invariant check: absent slots normalized to `RingId(0)`.
    fn check_shape(&self) -> Result<(), String> {
        for i in 0..RING_BITS as usize {
            if self.mask & (1u64 << i) == 0 && self.targets[i] != RingId(0) {
                return Err(format!("finger {i} absent in mask but targets {}", self.targets[i]));
            }
        }
        Ok(())
    }
}

impl Default for FingerTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FingerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries((0..RING_BITS as usize).filter_map(|i| self.get(i).map(|t| (i, t))))
            .finish()
    }
}

/// The slab owning every node record, kept in ring (ascending id) order in
/// lockstep with the id column held by [`crate::index::NodeIndex`].
///
/// Records are fixed-size (successors and fingers inline, store and replica
/// payloads behind CoW handles), so the slab is one contiguous allocation
/// and positional access never chases a pointer.
#[derive(Debug, Clone, Default)]
pub struct RingArena {
    slots: Vec<Node>,
}

impl RingArena {
    /// An empty arena.
    /// Deterministic: constructs fixed, zeroed contents.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `n` records.
    /// Deterministic: constructs fixed contents for the given capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { slots: Vec::with_capacity(n) }
    }

    /// Number of records.
    /// Deterministic: reads the slab length.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no records.
    /// Deterministic: reads the slab length.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The record at position `i`.
    #[inline]
    /// Deterministic: reads the indexed slot.
    pub fn slot(&self, i: usize) -> &Node {
        &self.slots[i]
    }

    /// Mutable access to the record at position `i`.
    #[inline]
    /// Deterministic: borrows the indexed slot.
    pub fn slot_mut(&mut self, i: usize) -> &mut Node {
        &mut self.slots[i]
    }

    /// Appends a record (bulk construction: ids arrive pre-sorted).
    /// Deterministic: appends in call order; no hidden ordering.
    pub fn push(&mut self, node: Node) {
        self.slots.push(node);
    }

    /// Inserts a record at position `i` (incremental join: `O(P)` memmove).
    /// Deterministic: index-addressed insert with a right shift.
    pub fn insert(&mut self, i: usize, node: Node) {
        self.slots.insert(i, node);
    }

    /// Removes and returns the record at position `i`.
    /// Deterministic: index-addressed removal with a left shift.
    pub fn remove(&mut self, i: usize) -> Node {
        self.slots.remove(i)
    }

    /// Replaces the record at position `i`, returning the old one.
    /// Deterministic: swaps the indexed slot.
    pub fn replace(&mut self, i: usize, node: Node) -> Node {
        std::mem::replace(&mut self.slots[i], node)
    }

    /// Records in ring order.
    /// Deterministic: iterates slots in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.slots.iter()
    }

    /// Mutable records in ring order.
    /// Deterministic: iterates slots in index order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Node> {
        self.slots.iter_mut()
    }

    /// Resets every record's routing state to the perfect steady state for
    /// the id column `keys`, in `O(P · RING_BITS)`.
    ///
    /// Successors and predecessors read straight off ring order. Fingers use
    /// a monotone sweep per level: for fixed `f` the (un-wrapped) targets
    /// `keys[i] + 2^f` are strictly increasing, so the owning position in
    /// the virtually doubled column `[keys[0], …, keys[p-1], keys[0]+2^64, …]`
    /// only ever advances. Output is bit-identical to the per-finger
    /// `true_owner` binary search it replaced.
    ///
    /// # Panics
    /// Panics if `keys` and the arena disagree in length (the columns are
    /// out of lockstep).
    /// Deterministic: a pure function of the sorted `keys` slice.
    pub fn wire_perfect(&mut self, keys: &[RingId]) {
        let p = keys.len();
        assert_eq!(p, self.slots.len(), "id column and arena out of lockstep");
        if p == 0 {
            return;
        }
        for (i, node) in self.slots.iter_mut().enumerate() {
            node.predecessor = Some(keys[(i + p - 1) % p]);
            let mut succs = SuccessorList::new();
            for k in 1..=SUCCESSOR_LIST_LEN.min(p - 1).max(1) {
                succs.push(keys[(i + k) % p]);
            }
            node.successors = succs;
            node.fingers = FingerTable::new();
        }
        let wrap = 1u128 << RING_BITS;
        let virt = |j: usize| -> u128 {
            if j < p {
                u128::from(keys[j].0)
            } else {
                u128::from(keys[j - p].0) + wrap
            }
        };
        for f in 0..RING_BITS as usize {
            let step = 1u128 << f;
            let mut j = 0usize;
            for i in 0..p {
                let target = u128::from(keys[i].0) + step;
                while j < 2 * p && virt(j) < target {
                    j += 1;
                }
                // j == 2p can only mean the target wrapped past the top of
                // the doubled column; ownership wraps to the first peer.
                let owner = keys[if j < 2 * p { j % p } else { 0 }];
                self.slots[i].fingers.set(f, Some(owner));
            }
        }
    }

    /// Column-consistency oracle for the DST harness: the id column and the
    /// record slab must be in lockstep (same length, strictly sorted ids,
    /// record id matching its column entry) and every inline list must be
    /// shape-valid (length in bounds, vacated slots normalized). Returns a
    /// list of violations (empty = consistent).
    /// Deterministic: scans slots in index order; messages are stable.
    pub fn check_columns(&self, keys: &[RingId]) -> Vec<String> {
        let mut violations = Vec::new();
        if keys.len() != self.slots.len() {
            violations.push(format!(
                "id column has {} entries but arena has {} records",
                keys.len(),
                self.slots.len()
            ));
            return violations;
        }
        for (i, (&key, node)) in keys.iter().zip(self.slots.iter()).enumerate() {
            if node.id != key {
                violations.push(format!("column desync at {i}: key {key} vs record {}", node.id));
            }
            if i + 1 < keys.len() && keys[i] >= keys[i + 1] {
                violations.push(format!("id column not strictly sorted at {i}"));
            }
            if let Err(e) = node.successors.check_shape() {
                violations.push(format!("{key}: {e}"));
            }
            if let Err(e) = node.fingers.check_shape() {
                violations.push(format!("{key}: {e}"));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_list_mirrors_vec_semantics() {
        let mut list = SuccessorList::new();
        assert!(list.is_empty());
        list.push(RingId(5));
        list.push(RingId(9));
        list.push(RingId(12));
        assert_eq!(list.len(), 3);
        assert_eq!(list.first(), Some(&RingId(5)));
        assert!(list.contains(&RingId(9)));
        assert_eq!(list, vec![RingId(5), RingId(9), RingId(12)]);
        assert_eq!(list.remove(0), RingId(5));
        assert_eq!(list, vec![RingId(9), RingId(12)]);
        list.retain(|&s| s != RingId(12));
        assert_eq!(list, vec![RingId(9)]);
        list.truncate(0);
        assert!(list.is_empty());
        assert_eq!(list, SuccessorList::new());
    }

    #[test]
    fn successor_list_normalizes_vacated_slots() {
        let mut a: SuccessorList = [RingId(3), RingId(7), RingId(11)].into();
        a.remove(1);
        a.check_shape().expect("normalized after remove");
        a.retain(|&s| s != RingId(3));
        a.check_shape().expect("normalized after retain");
        // Logical equality ignores history: a list built directly compares equal.
        let b: SuccessorList = [RingId(11)].into();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn successor_list_push_guards_capacity() {
        let mut list = SuccessorList::new();
        for i in 0..=SUCCESSOR_LIST_LEN as u64 {
            list.push(RingId(i));
        }
    }

    #[test]
    fn offer_by_distance_matches_push_sort_truncate() {
        // Replay of the historical Vec semantics, including on a list that
        // is not distance-sorted (stale joins can produce those).
        let me = RingId(50);
        let mut list: SuccessorList = [RingId(100), RingId(10), RingId(60)].into();
        let mut reference: Vec<RingId> = vec![RingId(100), RingId(10), RingId(60)];
        for peer in [RingId(55), RingId(10), RingId(49), RingId(51), RingId(90), RingId(200)] {
            list.offer_by_distance(me, peer);
            if !reference.contains(&peer) {
                reference.push(peer);
            }
            reference.sort_by_key(|&s| me.distance_to(s));
            reference.truncate(SUCCESSOR_LIST_LEN);
            assert_eq!(list, reference, "after offering {peer}");
        }
    }

    #[test]
    fn finger_table_set_get_present() {
        let mut t = FingerTable::new();
        assert_eq!(t.get(0), None);
        t.set(4, Some(RingId(16)));
        t.set(6, Some(RingId(64)));
        t.set(63, Some(RingId(1)));
        assert_eq!(t.get(4), Some(RingId(16)));
        assert_eq!(t.present().collect::<Vec<_>>(), vec![RingId(16), RingId(64), RingId(1)]);
        t.set(4, None);
        assert_eq!(t.get(4), None);
        t.forget(RingId(64));
        assert_eq!(t.present().collect::<Vec<_>>(), vec![RingId(1)]);
        t.check_shape().expect("normalized");
    }

    #[test]
    fn wire_perfect_matches_binary_search_owners() {
        // Adversarially bunched ids plus wraparound coverage.
        let mut keys: Vec<RingId> = vec![
            RingId(3),
            RingId(5),
            RingId(6),
            RingId(1 << 20),
            RingId(u64::MAX / 2),
            RingId(u64::MAX - 4),
            RingId(u64::MAX - 3),
            RingId(u64::MAX),
        ];
        keys.sort();
        let mut arena = RingArena::new();
        for &k in &keys {
            arena.push(Node::new(k));
        }
        arena.wire_perfect(&keys);
        let true_owner = |t: RingId| -> RingId {
            let pos = keys.partition_point(|&k| k < t);
            keys[if pos == keys.len() { 0 } else { pos }]
        };
        for (i, &id) in keys.iter().enumerate() {
            let node = arena.slot(i);
            for f in 0..RING_BITS {
                assert_eq!(
                    node.fingers.get(f as usize),
                    Some(true_owner(id.finger_start(f))),
                    "node {id} finger {f}"
                );
            }
            assert_eq!(node.predecessor, Some(keys[(i + keys.len() - 1) % keys.len()]));
            assert_eq!(node.successor(), Some(keys[(i + 1) % keys.len()]));
        }
        assert!(arena.check_columns(&keys).is_empty());
    }

    #[test]
    fn wire_perfect_single_node_points_at_itself() {
        let keys = vec![RingId(42)];
        let mut arena = RingArena::new();
        arena.push(Node::new(RingId(42)));
        arena.wire_perfect(&keys);
        let node = arena.slot(0);
        assert_eq!(node.predecessor, Some(RingId(42)));
        assert_eq!(node.successor(), Some(RingId(42)));
        for f in 0..RING_BITS as usize {
            assert_eq!(node.fingers.get(f), Some(RingId(42)));
        }
    }

    #[test]
    fn check_columns_flags_desync() {
        let keys = vec![RingId(10), RingId(20)];
        let mut arena = RingArena::new();
        arena.push(Node::new(RingId(10)));
        arena.push(Node::new(RingId(99))); // record disagrees with column
        let violations = arena.check_columns(&keys);
        assert!(violations.iter().any(|v| v.contains("column desync")), "{violations:?}");
        assert!(arena.check_columns(&keys[..1]).iter().any(|v| v.contains("entries")));
    }
}
