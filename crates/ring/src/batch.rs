//! Same-origin batched-routing charge dedup.
//!
//! Extracted from `network.rs` so the batching policy has its own seam: the
//! router is pure bookkeeping over `(from, to)` hop edges — no `Network`
//! access, no I/O — which is exactly the shape the ROADMAP-1 sans-IO node
//! split wants to lift unchanged.

use crate::id::RingId;

/// Reusable charge-dedup state for one same-origin arrival window of
/// batched lookups (see [`crate::Network::lookup_batched`]).
///
/// Lookups issued from one peer inside one window share route prefixes: the
/// first lookup to traverse a hop `a → b` pays its two messages, and every
/// later lookup in the window rides the same (still-open) exchange for free.
/// Routing *decisions* are untouched — owners and hop counts are identical
/// to per-op routing (property-tested in `crates/sim/tests/batch_equivalence.rs`);
/// only the message/byte charges are amortized.
///
/// The edge set is a linear-scanned vector whose capacity is reused across
/// windows, so a warmed batch path allocates nothing (fenced by
/// `crates/ring/tests/alloc_free.rs`).
#[derive(Debug, Default, Clone)]
pub struct BatchRouter {
    edges: Vec<(RingId, RingId)>,
}

impl BatchRouter {
    /// An empty router with no cached edges. Deterministic: fixed contents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new arrival window: previously paid edges no longer amortize
    /// (capacity is kept, so warmed windows never allocate).
    ///
    /// Deterministic: clears state; no ordering or randomness involved.
    pub fn begin_window(&mut self) {
        self.edges.clear();
    }

    /// Number of distinct hop edges paid for in the current window.
    /// Deterministic: reads the edge buffer's length.
    pub fn edges_paid(&self) -> usize {
        self.edges.len()
    }

    /// Whether `from → to` was already paid this window; records it if not.
    /// Deterministic: linear scan of edges in insertion order.
    pub(crate) fn seen_or_insert(&mut self, from: RingId, to: RingId) -> bool {
        if self.edges.contains(&(from, to)) {
            return true;
        }
        self.edges.push((from, to));
        false
    }
}
