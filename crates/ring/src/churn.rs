//! Churn: joins, graceful leaves, and crash failures.
//!
//! Two regimes live here:
//!
//! * **Poisson churn** ([`ChurnProcess`]) — the protocol-faithful driver:
//!   rates are *per peer per time unit*, the convention P2P measurement
//!   papers use (e.g. "0.1 churn" = each peer has a 10% chance of departing
//!   per unit time). Event times are exponential interarrivals; joins run
//!   the full bootstrap-lookup protocol and stabilization repairs routing
//!   state at a fixed period, so staleness tracks the churn/stabilization
//!   ratio.
//! * **Amortized arena churn** ([`Network::churn_join`] /
//!   [`Network::churn_leave`] / [`Network::churn_crash`] and the batched
//!   [`ChurnBatch`]) — the mega-scale mutation path: membership events
//!   splice the columnar state directly and restore *perfect* routing via
//!   `O(log P)` locality repair
//!   ([`crate::index::NodeIndex::repair_positions`]), skipping the
//!   stabilization storm a 10⁶-peer network cannot afford. Data handoff and
//!   the stabilization traffic a real join/leave would cost are still
//!   charged to the message counters. A batch coalesces a window of events
//!   into one column splice plus one repair sweep; it is property-tested
//!   equivalent to applying the same events one at a time
//!   (`crates/sim/tests/churn_equivalence.rs`).

use crate::id::RingId;
use crate::index::RepairStats;
use crate::messages::MessageKind;
use crate::network::Network;
use crate::node::{Node, SUCCESSOR_LIST_LEN};
use rand::Rng;

/// Churn rates, per alive peer per time unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Join rate (new peers per alive peer per time unit).
    pub join_rate: f64,
    /// Graceful-leave rate.
    pub leave_rate: f64,
    /// Crash-failure rate.
    pub fail_rate: f64,
    /// Stabilization period (time units between rounds).
    pub stabilize_period: f64,
}

impl ChurnConfig {
    /// A symmetric churn level: joins balance departures (half leaves, half
    /// crashes), keeping the expected network size constant.
    pub fn symmetric(rate: f64, stabilize_period: f64) -> Self {
        Self { join_rate: rate, leave_rate: rate / 2.0, fail_rate: rate / 2.0, stabilize_period }
    }

    /// No churn at all.
    pub fn none() -> Self {
        Self { join_rate: 0.0, leave_rate: 0.0, fail_rate: 0.0, stabilize_period: 1.0 }
    }

    fn total_rate(&self) -> f64 {
        self.join_rate + self.leave_rate + self.fail_rate
    }
}

/// Counts of what a churn run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Successful joins.
    pub joins: u64,
    /// Graceful leaves.
    pub leaves: u64,
    /// Crash failures.
    pub fails: u64,
    /// Stabilization rounds run.
    pub stabilize_rounds: u64,
    /// Events skipped because the network was about to empty out.
    pub skipped: u64,
}

/// A resumable churn process.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    config: ChurnConfig,
    /// Simulation clock.
    now: f64,
    /// Next stabilization time.
    next_stabilize: f64,
}

impl ChurnProcess {
    /// Creates a process with the given rates, starting at time 0.
    pub fn new(config: ChurnConfig) -> Self {
        Self { config, now: 0.0, next_stabilize: config.stabilize_period }
    }

    /// The current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the simulation by `duration` time units, applying churn
    /// events and periodic stabilization to `net`.
    ///
    /// The network is never allowed to drop below 2 peers (departure events
    /// that would do so are skipped and counted).
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        duration: f64,
        rng: &mut R,
    ) -> ChurnOutcome {
        let mut outcome = ChurnOutcome::default();
        let end = self.now + duration;
        loop {
            let rate = self.config.total_rate() * net.len() as f64;
            let next_event =
                if rate > 0.0 { self.now + exponential(rng, rate) } else { f64::INFINITY };
            // Interleave stabilization ticks in timestamp order.
            while self.next_stabilize <= next_event.min(end) {
                net.stabilize_round();
                outcome.stabilize_rounds += 1;
                self.next_stabilize += self.config.stabilize_period;
            }
            if next_event > end {
                self.now = end;
                return outcome;
            }
            self.now = next_event;
            self.apply_one(net, rng, &mut outcome);
        }
    }

    /// Applies exactly `n` churn events (no clock, no stabilization) — for
    /// tests that want precise control.
    pub fn apply_events<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        n: usize,
        rng: &mut R,
    ) -> ChurnOutcome {
        let mut outcome = ChurnOutcome::default();
        for _ in 0..n {
            self.apply_one(net, rng, &mut outcome);
        }
        outcome
    }

    fn apply_one<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        outcome: &mut ChurnOutcome,
    ) {
        let total = self.config.total_rate();
        if total <= 0.0 || net.is_empty() {
            outcome.skipped += 1;
            return;
        }
        let u: f64 = rng.gen::<f64>() * total;
        if u < self.config.join_rate {
            let new_id = RingId(rng.gen());
            let Some(bootstrap) = net.random_peer(rng) else {
                outcome.skipped += 1;
                return;
            };
            if net.join(new_id, bootstrap).is_ok() {
                outcome.joins += 1;
            } else {
                outcome.skipped += 1;
            }
        } else {
            if net.len() <= 2 {
                outcome.skipped += 1;
                return;
            }
            let Some(victim) = net.random_peer(rng) else {
                outcome.skipped += 1;
                return;
            };
            if u < self.config.join_rate + self.config.leave_rate {
                if net.leave(victim).is_ok() {
                    outcome.leaves += 1;
                }
            } else if net.fail(victim).is_ok() {
                outcome.fails += 1;
            }
        }
    }
}

/// One membership event for the amortized arena-churn path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new peer joins under this id.
    Join(RingId),
    /// This peer departs gracefully, handing its data to its successor.
    Leave(RingId),
    /// This peer crashes; its primary data is lost.
    Crash(RingId),
}

impl ChurnEvent {
    /// The peer id the event concerns.
    pub fn id(&self) -> RingId {
        match *self {
            ChurnEvent::Join(id) | ChurnEvent::Leave(id) | ChurnEvent::Crash(id) => id,
        }
    }
}

/// What a [`ChurnBatch::apply`] did — counts, handoff volume, the values
/// crashes destroyed (so an incremental truth can journal the removals),
/// and the repair work performed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnApplied {
    /// Joins applied.
    pub joins: u64,
    /// Graceful leaves applied.
    pub leaves: u64,
    /// Crashes applied.
    pub crashes: u64,
    /// Events skipped (duplicate-id conflicts, joins of alive ids,
    /// departures of absent ids, or departures blocked by the ≥ 2-peer
    /// floor).
    pub skipped: u64,
    /// Items handed off (join arc transfers + leave handoffs).
    pub items_moved: u64,
    /// Values lost to crashes, in event order (each crashed peer's store
    /// sorted ascending). Feed these to a streamed-truth delta journal.
    pub lost: Vec<f64>,
    /// Locality-repair work counters.
    pub repair: RepairStats,
}

impl Network {
    /// Amortized single join on arena state: splices `id` into the sorted
    /// columns, drains the arc `(pred, id]` from the old owner, and restores
    /// perfect routing with one `O(log P)` locality repair — no bootstrap
    /// lookup, no stabilization storm. Charges the handoff bytes plus the
    /// stabilization exchange a protocol join would cost. Returns `false`
    /// (and does nothing) if the network is empty or `id` is already taken.
    pub fn churn_join(&mut self, id: RingId) -> bool {
        if self.nodes.is_empty() || self.nodes.contains_key(&id) {
            return false;
        }
        self.bump_epoch();
        let p = self.nodes.len();
        let placement = self.placement;
        let succ_pos = self.nodes.owner_position(id);
        let pred = self.nodes.key_at((succ_pos + p - 1) % p).expect("in range");
        let moved = self
            .nodes
            .node_at_mut(succ_pos)
            .store
            .drain_by(|x| placement.place(x).in_arc(pred, id));
        self.stats.record(MessageKind::Handoff, 8 * moved.len());
        let slen = SUCCESSOR_LIST_LEN.min(p).max(1);
        self.stats.record(MessageKind::Stabilize, 8 * (1 + slen));
        let mut node = Node::new(id);
        node.store.extend_values(moved);
        self.nodes.insert(id, node);
        let pos = self.nodes.owner_position(id);
        let _ = self.nodes.repair_positions(&[pos]);
        true
    }

    /// Amortized single graceful leave on arena state: hands the departing
    /// peer's data to its successor, splices the columns, and repairs the
    /// heir's arc. Charges handoff bytes plus the stabilization exchange.
    /// Returns `false` if `id` is absent or the network would drop below 2
    /// peers.
    pub fn churn_leave(&mut self, id: RingId) -> bool {
        if !self.nodes.contains_key(&id) || self.nodes.len() <= 2 {
            return false;
        }
        self.bump_epoch();
        let p = self.nodes.len();
        let pos = self.nodes.owner_position(id);
        let data = self.nodes.node_at_mut(pos).store.drain_all();
        self.stats.record(MessageKind::Handoff, 8 * data.len());
        let heir = self.nodes.node_at_mut((pos + 1) % p);
        heir.store.extend_values(data);
        heir.replicas.remove(&id);
        let slen = SUCCESSOR_LIST_LEN.min(p - 2).max(1);
        self.stats.record(MessageKind::Stabilize, 8 * (1 + slen));
        let _ = self.nodes.remove(&id);
        self.finger_cursor.remove(&id);
        let heir_pos = self.nodes.owner_position(id);
        let _ = self.nodes.repair_positions(&[heir_pos]);
        true
    }

    /// Direct-placement item insert for churn/turnover phases: the value
    /// lands on its true owner without routing (the mega-scale simulator
    /// path — routing 5% of 2·10⁷ items per round would dwarf the phase
    /// under measurement), charged one [`MessageKind::Handoff`] transfer.
    pub fn churn_insert_item(&mut self, x: f64) {
        if self.nodes.is_empty() {
            return;
        }
        self.bump_epoch();
        let pos = self.nodes.owner_position(self.placement.place(x));
        self.nodes.node_at_mut(pos).store.insert(x);
        self.stats.record(MessageKind::Handoff, 8);
    }

    /// Direct item delete for churn/turnover phases: removes one uniform
    /// value from the first non-empty store at or after a random position,
    /// charged one [`MessageKind::Handoff`] transfer. Returns the removed
    /// value (`None` only when the network holds no items).
    pub fn churn_remove_item<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let p = self.nodes.len();
        if p == 0 {
            return None;
        }
        let start = rng.gen_range(0..p);
        for k in 0..p {
            let node = self.nodes.node_at_mut((start + k) % p);
            if let Some(x) = node.store.sample_uniform(rng) {
                node.store.remove(x);
                self.bump_epoch();
                self.stats.record(MessageKind::Handoff, 8);
                return Some(x);
            }
        }
        None
    }

    /// Amortized single crash on arena state: the peer vanishes, its primary
    /// data is lost (no handoff, no charges — nobody sent anything), and the
    /// heir's arc is repaired. Returns `false` if `id` is absent or the
    /// network would drop below 2 peers.
    pub fn churn_crash(&mut self, id: RingId) -> bool {
        if !self.nodes.contains_key(&id) || self.nodes.len() <= 2 {
            return false;
        }
        self.bump_epoch();
        let _ = self.nodes.remove(&id);
        self.finger_cursor.remove(&id);
        let heir_pos = self.nodes.owner_position(id);
        let _ = self.nodes.repair_positions(&[heir_pos]);
        true
    }
}

/// A coalesced window of membership events, applied to arena state in one
/// column splice plus one monotone repair sweep.
///
/// Semantics are **identical** to applying the recorded events one at a
/// time through [`Network::churn_join`] / [`Network::churn_leave`] /
/// [`Network::churn_crash`] in recorded order (the cross-path property
/// `crates/sim/tests/churn_equivalence.rs` pins): data movement replays in
/// event order against a merged view of the evolving membership, so
/// order-dependent outcomes (an heir crashing after inheriting, a joiner
/// taking items a prior joiner just received) come out the same. The one
/// policy difference is **conflict handling**: a batch admits at most one
/// event per id — later events on the same id are skipped and counted,
/// where the sequential path would apply them. Callers wanting repeat
/// events on one id split them across batches.
///
/// Scratch buffers (including the replacement columns, which ping-pong with
/// the network's) are retained across `apply` calls, so steady-state
/// batched churn performs zero allocations (fenced in
/// `ring/tests/alloc_free.rs`).
#[derive(Debug, Clone, Default)]
pub struct ChurnBatch {
    events: Vec<ChurnEvent>,
    skip: Vec<bool>,
    by_id: Vec<(RingId, u32)>,
    /// Staged joins: `(id, event seq, detached slot)`, sorted by id.
    joins: Vec<(RingId, u32, u32)>,
    /// Departures: `(id, event seq, graceful)`, sorted by id.
    dead: Vec<(RingId, u32, bool)>,
    /// Base-column positions of `dead`, ascending.
    dead_pos: Vec<u32>,
    /// Final-column positions whose ownership arc changed.
    affected: Vec<usize>,
    /// Replacement columns, swapped with the network's on every apply.
    spare_keys: Vec<RingId>,
    spare_order: Vec<u32>,
}

impl ChurnBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a join of `id`.
    pub fn join(&mut self, id: RingId) {
        self.events.push(ChurnEvent::Join(id));
    }

    /// Queues a graceful leave of `id`.
    pub fn leave(&mut self, id: RingId) {
        self.events.push(ChurnEvent::Leave(id));
    }

    /// Queues a crash of `id`.
    pub fn crash(&mut self, id: RingId) {
        self.events.push(ChurnEvent::Crash(id));
    }

    /// Queues `event`.
    pub fn push(&mut self, event: ChurnEvent) {
        self.events.push(event);
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Applies the queued events to `net` in one coalesced pass and clears
    /// the queue. Phases: validate (conflict + feasibility guards), stage
    /// join records in detached slots, replay data movement in event order
    /// against the merged membership view, splice the merged columns in,
    /// retire departed slots, and run one locality-repair sweep over every
    /// changed arc.
    pub fn apply(&mut self, net: &mut Network) -> ChurnApplied {
        let mut out = ChurnApplied::default();
        if self.events.is_empty() {
            return out;
        }
        if net.is_empty() {
            out.skipped = self.events.len() as u64;
            self.events.clear();
            return out;
        }
        net.bump_epoch();
        net.nodes.reserve(self.events.len());
        let p0 = net.nodes.len();

        // Validate. Conflict policy first: at most one event per id per
        // batch, first recorded wins. Then feasibility in event order,
        // mirroring the single-event guards exactly: joins of alive ids are
        // skipped, departures of absent ids or past the ≥ 2-peer floor are
        // skipped.
        self.skip.clear();
        self.skip.resize(self.events.len(), false);
        self.by_id.clear();
        for (i, ev) in self.events.iter().enumerate() {
            self.by_id.push((ev.id(), i as u32));
        }
        self.by_id.sort_unstable();
        for w in self.by_id.windows(2) {
            if w[0].0 == w[1].0 {
                self.skip[w[1].1 as usize] = true;
            }
        }
        let mut alive = p0;
        for (i, ev) in self.events.iter().enumerate() {
            if self.skip[i] {
                continue;
            }
            match *ev {
                ChurnEvent::Join(id) => {
                    if net.nodes.contains_key(&id) {
                        self.skip[i] = true;
                    } else {
                        alive += 1;
                    }
                }
                ChurnEvent::Leave(id) | ChurnEvent::Crash(id) => {
                    if !net.nodes.contains_key(&id) || alive <= 2 {
                        self.skip[i] = true;
                    } else {
                        alive -= 1;
                    }
                }
            }
        }

        // Stage join records in detached slots; collect departures.
        self.joins.clear();
        self.dead.clear();
        for (i, ev) in self.events.iter().enumerate() {
            if self.skip[i] {
                out.skipped += 1;
                continue;
            }
            match *ev {
                ChurnEvent::Join(id) => {
                    let slot = net.nodes.alloc_detached(Node::new(id));
                    self.joins.push((id, i as u32, slot));
                    out.joins += 1;
                }
                ChurnEvent::Leave(id) => {
                    self.dead.push((id, i as u32, true));
                    out.leaves += 1;
                }
                ChurnEvent::Crash(id) => {
                    self.dead.push((id, i as u32, false));
                    out.crashes += 1;
                }
            }
        }
        if self.joins.is_empty() && self.dead.is_empty() {
            self.events.clear();
            return out;
        }
        self.joins.sort_unstable_by_key(|&(id, _, _)| id);
        self.dead.sort_unstable_by_key(|&(id, _, _)| id);

        // Replay data movement in recorded order against the merged view.
        // Every resolution (owner, predecessor, heir) sees exactly the
        // membership the sequential path would: base peers minus
        // already-departed, plus already-joined overlays.
        let placement = net.placement;
        let mut alive = p0;
        {
            let (keys, order, arena) = net.nodes.split_view();
            let view = MergedView { keys, order, joins: &self.joins, dead: &self.dead };
            for (i, ev) in self.events.iter().enumerate() {
                if self.skip[i] {
                    continue;
                }
                let seq = i as u32;
                match *ev {
                    ChurnEvent::Join(id) => {
                        alive += 1;
                        let (pred, _) = view.last_active_before(id, seq, id);
                        let (_, owner) = view.first_active_from(id, seq, id);
                        let moved = arena
                            .slot_mut(view.slot(owner))
                            .store
                            .drain_by(|x| placement.place(x).in_arc(pred, id));
                        net.stats.record(MessageKind::Handoff, 8 * moved.len());
                        let slen = SUCCESSOR_LIST_LEN.min(alive - 1).max(1);
                        net.stats.record(MessageKind::Stabilize, 8 * (1 + slen));
                        out.items_moved += moved.len() as u64;
                        let jslot = view.join_slot(id);
                        arena.slot_mut(jslot as usize).store.extend_values(moved);
                    }
                    ChurnEvent::Leave(id) => {
                        alive -= 1;
                        let vslot = order[view.base_position(id)] as usize;
                        let data = arena.slot_mut(vslot).store.drain_all();
                        net.stats.record(MessageKind::Handoff, 8 * data.len());
                        out.items_moved += data.len() as u64;
                        let (_, heir) = view.first_active_from(id, seq, id);
                        let heir_node = arena.slot_mut(view.slot(heir));
                        heir_node.store.extend_values(data);
                        heir_node.replicas.remove(&id);
                        let slen = SUCCESSOR_LIST_LEN.min(alive - 1).max(1);
                        net.stats.record(MessageKind::Stabilize, 8 * (1 + slen));
                    }
                    ChurnEvent::Crash(id) => {
                        alive -= 1;
                        let vslot = order[view.base_position(id)] as usize;
                        let data = arena.slot_mut(vslot).store.drain_all();
                        out.lost.extend(data);
                    }
                }
            }
        }

        // Merge the surviving base column with the sorted joins into the
        // spare columns (two-pointer walk), then swap them in. The old
        // columns become next apply's spares — steady-state churn
        // ping-pongs two column pairs and never reallocates.
        self.dead_pos.clear();
        {
            let (keys, _) = net.nodes.columns();
            for &(id, _, _) in &self.dead {
                self.dead_pos.push(keys.partition_point(|&k| k < id) as u32);
            }
        }
        self.spare_keys.clear();
        self.spare_order.clear();
        let new_len = p0 + self.joins.len() - self.dead.len();
        self.spare_keys.reserve(new_len);
        self.spare_order.reserve(new_len);
        {
            let (keys, order) = net.nodes.columns();
            let mut ji = 0usize;
            let mut di = 0usize;
            for bi in 0..p0 {
                while ji < self.joins.len() && self.joins[ji].0 < keys[bi] {
                    self.spare_keys.push(self.joins[ji].0);
                    self.spare_order.push(self.joins[ji].2);
                    ji += 1;
                }
                if di < self.dead_pos.len() && self.dead_pos[di] as usize == bi {
                    di += 1;
                    continue;
                }
                self.spare_keys.push(keys[bi]);
                self.spare_order.push(order[bi]);
            }
            for &(id, _, slot) in &self.joins[ji..] {
                self.spare_keys.push(id);
                self.spare_order.push(slot);
            }
        }
        net.nodes.splice_columns(&mut self.spare_keys, &mut self.spare_order);

        // Retire departed slots (their positions index the OLD order column,
        // which the splice handed back as our spare) and drop stale cursors.
        for (i, &(id, _, _)) in self.dead.iter().enumerate() {
            let slot = self.spare_order[self.dead_pos[i] as usize];
            let _ = net.nodes.free_slot(slot);
            net.finger_cursor.remove(&id);
        }

        // One repair sweep over every changed arc: each join's position and
        // each departure's heir position in the final column.
        self.affected.clear();
        for &(id, _, _) in &self.joins {
            self.affected.push(net.nodes.owner_position(id));
        }
        for &(id, _, _) in &self.dead {
            self.affected.push(net.nodes.owner_position(id));
        }
        self.affected.sort_unstable();
        self.affected.dedup();
        out.repair = net.nodes.repair_positions(&self.affected);
        self.events.clear();
        out
    }
}

/// Which record backs a merged-view entry: a base-column position or a
/// staged (detached-slot) joiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    Base(usize),
    Overlay(u32),
}

/// The membership as of one event inside a batch: the base columns, minus
/// departures already replayed, plus joiners already replayed. Entries
/// activate strictly by sequence number, so resolving against the view at
/// seq `s` sees exactly what the one-at-a-time path would see before its
/// `s`-th event.
struct MergedView<'a> {
    keys: &'a [RingId],
    order: &'a [u32],
    joins: &'a [(RingId, u32, u32)],
    dead: &'a [(RingId, u32, bool)],
}

impl MergedView<'_> {
    /// The arena slot backing `r`.
    fn slot(&self, r: NodeRef) -> usize {
        match r {
            NodeRef::Base(pos) => self.order[pos] as usize,
            NodeRef::Overlay(slot) => slot as usize,
        }
    }

    /// The staged slot of the joiner `id`.
    fn join_slot(&self, id: RingId) -> u32 {
        let ji = self.joins.binary_search_by_key(&id, |&(jid, _, _)| jid).expect("staged join");
        self.joins[ji].2
    }

    /// Exact base-column position of `id` (departure victims are validated
    /// to be base peers).
    fn base_position(&self, id: RingId) -> usize {
        let pos = self.keys.partition_point(|&k| k < id);
        debug_assert!(pos < self.keys.len() && self.keys[pos] == id, "victim not in base column");
        pos
    }

    /// Whether base position `pos` is still alive as of `seq` (its departure,
    /// if any, has not been replayed yet).
    fn base_active(&self, pos: usize, seq: u32) -> bool {
        match self.dead.binary_search_by_key(&self.keys[pos], |&(id, _, _)| id) {
            Ok(di) => self.dead[di].1 >= seq,
            Err(_) => true,
        }
    }

    /// First active entry with id `>= from` (wrapping), skipping `exclude` —
    /// the owner/successor resolution. Panics only if the view is empty,
    /// which the feasibility guards rule out.
    fn first_active_from(&self, from: RingId, seq: u32, exclude: RingId) -> (RingId, NodeRef) {
        let sb = self.keys.partition_point(|&k| k < from);
        let sj = self.joins.partition_point(|&(id, _, _)| id < from);
        self.scan_fwd(sb, self.keys.len(), sj, self.joins.len(), seq, exclude)
            .or_else(|| self.scan_fwd(0, sb, 0, sj, seq, exclude))
            .expect("merged view exhausted: alive floor violated")
    }

    /// Last active entry with id `< id` (wrapping) — the predecessor
    /// resolution for a join arc.
    fn last_active_before(&self, id: RingId, seq: u32, exclude: RingId) -> (RingId, NodeRef) {
        let eb = self.keys.partition_point(|&k| k < id);
        let ej = self.joins.partition_point(|&(jid, _, _)| jid < id);
        self.scan_back(0, eb, 0, ej, seq, exclude)
            .or_else(|| self.scan_back(eb, self.keys.len(), ej, self.joins.len(), seq, exclude))
            .expect("merged view exhausted: alive floor violated")
    }

    /// Ascending merged scan over base positions `[lo_b, hi_b)` and join
    /// entries `[lo_j, hi_j)`; first active non-excluded entry wins. Join
    /// ids never collide with base ids (feasibility skips joins of alive
    /// peers), so the merge order is strict.
    fn scan_fwd(
        &self,
        lo_b: usize,
        hi_b: usize,
        lo_j: usize,
        hi_j: usize,
        seq: u32,
        exclude: RingId,
    ) -> Option<(RingId, NodeRef)> {
        let (mut bi, mut ji) = (lo_b, lo_j);
        loop {
            let b = (bi < hi_b).then(|| self.keys[bi]);
            let j = (ji < hi_j).then(|| self.joins[ji].0);
            let take_base = match (b, j) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(bk), Some(jk)) => bk < jk,
            };
            if take_base {
                let key = self.keys[bi];
                if key != exclude && self.base_active(bi, seq) {
                    return Some((key, NodeRef::Base(bi)));
                }
                bi += 1;
            } else {
                let (key, jseq, slot) = self.joins[ji];
                if key != exclude && jseq < seq {
                    return Some((key, NodeRef::Overlay(slot)));
                }
                ji += 1;
            }
        }
    }

    /// Descending merged scan (mirror of [`MergedView::scan_fwd`]).
    fn scan_back(
        &self,
        lo_b: usize,
        hi_b: usize,
        lo_j: usize,
        hi_j: usize,
        seq: u32,
        exclude: RingId,
    ) -> Option<(RingId, NodeRef)> {
        let (mut bi, mut ji) = (hi_b, hi_j);
        loop {
            let b = (bi > lo_b).then(|| self.keys[bi - 1]);
            let j = (ji > lo_j).then(|| self.joins[ji - 1].0);
            let take_base = match (b, j) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(bk), Some(jk)) => bk > jk,
            };
            if take_base {
                bi -= 1;
                let key = self.keys[bi];
                if key != exclude && self.base_active(bi, seq) {
                    return Some((key, NodeRef::Base(bi)));
                }
            } else {
                ji -= 1;
                let (key, jseq, slot) = self.joins[ji];
                if key != exclude && jseq < seq {
                    return Some((key, NodeRef::Overlay(slot)));
                }
            }
        }
    }
}

/// An exponential interarrival with the given rate.
fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_of_n(n: u64) -> Network {
        let ids = (1..=n).map(|i| RingId(i * (u64::MAX / (n + 1)))).collect();
        Network::build(ids, Placement::range(0.0, 100.0))
    }

    /// Networks agree on everything the batched/sequential equivalence
    /// cares about: membership, routing state, data placement, and the
    /// Handoff/Stabilize charges. Epochs differ by construction (N bumps vs
    /// one) and are deliberately NOT compared.
    fn assert_same_network(a: &Network, b: &Network) {
        let ids_a: Vec<RingId> = a.ids().collect();
        let ids_b: Vec<RingId> = b.ids().collect();
        assert_eq!(ids_a, ids_b, "memberships diverge");
        for id in ids_a {
            let (na, nb) = (a.node(id).unwrap(), b.node(id).unwrap());
            assert_eq!(na.predecessor, nb.predecessor, "pred of {id:?}");
            assert_eq!(na.successors, nb.successors, "succs of {id:?}");
            assert_eq!(na.fingers, nb.fingers, "fingers of {id:?}");
            assert_eq!(na.store.values(), nb.store.values(), "store of {id:?}");
        }
        assert_eq!(
            a.stats().count(MessageKind::Handoff),
            b.stats().count(MessageKind::Handoff),
            "handoff counts"
        );
        assert_eq!(
            a.stats().count(MessageKind::Stabilize),
            b.stats().count(MessageKind::Stabilize),
            "stabilize counts"
        );
        assert_eq!(a.stats().total_bytes(), b.stats().total_bytes(), "bytes");
    }

    #[test]
    fn churn_join_splices_and_stays_perfect() {
        let mut net = net_of_n(16);
        net.bulk_load(&(0..320).map(|i| i as f64 * 100.0 / 320.0).collect::<Vec<_>>());
        let before = net.total_items();
        assert!(net.churn_join(RingId(5_000)));
        assert!(net.churn_join(RingId(u64::MAX - 3)));
        assert_eq!(net.len(), 18);
        assert_eq!(net.total_items(), before, "joins move, never lose, items");
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
        // Guards: duplicate id and empty network refuse.
        assert!(!net.churn_join(RingId(5_000)));
    }

    #[test]
    fn churn_leave_hands_data_to_heir() {
        let mut net = net_of_n(16);
        net.bulk_load(&(0..320).map(|i| i as f64 * 100.0 / 320.0).collect::<Vec<_>>());
        let before = net.total_items();
        let victim = net.ids().nth(5).unwrap();
        assert!(net.churn_leave(victim));
        assert_eq!(net.len(), 15);
        assert_eq!(net.total_items(), before, "graceful leave conserves items");
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
        assert!(!net.churn_leave(victim), "absent id refuses");
    }

    #[test]
    fn churn_crash_loses_primary_data() {
        let mut net = net_of_n(16);
        net.bulk_load(&(0..320).map(|i| i as f64 * 100.0 / 320.0).collect::<Vec<_>>());
        let victim = net.ids().nth(3).unwrap();
        let victim_items = net.node(victim).unwrap().store.len();
        assert!(victim_items > 0);
        let bytes_before = net.stats().total_bytes();
        assert!(net.churn_crash(victim));
        assert_eq!(net.total_items(), 320 - victim_items as u64);
        assert_eq!(net.stats().total_bytes(), bytes_before, "crashes charge nothing");
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn churn_floor_blocks_departures() {
        let mut net = net_of_n(2);
        let id = net.ids().next().unwrap();
        assert!(!net.churn_leave(id));
        assert!(!net.churn_crash(id));
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn item_turnover_ops_place_and_charge_correctly() {
        let mut net = net_of_n(16);
        net.bulk_load(&(0..160).map(|i| i as f64 * 100.0 / 160.0).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(9);
        let bytes0 = net.stats().total_bytes();
        net.churn_insert_item(12.34);
        assert_eq!(net.total_items(), 161);
        let removed = net.churn_remove_item(&mut rng).expect("items exist");
        assert!((0.0..=100.0).contains(&removed));
        assert_eq!(net.total_items(), 160);
        // Two ops, each one Handoff message: 8 B payload + fixed header.
        assert_eq!(
            net.stats().total_bytes() - bytes0,
            2 * (8 + crate::messages::HEADER_BYTES as u64)
        );
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn batch_apply_matches_sequential_single_events() {
        let mut seq = net_of_n(32);
        seq.bulk_load(&(0..640).map(|i| i as f64 * 100.0 / 640.0).collect::<Vec<_>>());
        let mut bat = seq.clone();
        let ids: Vec<RingId> = seq.ids().collect();
        let step = u64::MAX / 33;
        // A mixed window: joins landing between existing peers, leaves,
        // and crashes — all on distinct ids.
        let events = [
            ChurnEvent::Join(RingId(ids[4].0 + step / 3)),
            ChurnEvent::Leave(ids[10]),
            ChurnEvent::Crash(ids[11]),
            ChurnEvent::Join(RingId(ids[11].0 + 7)), // lands where the crash just vacated
            ChurnEvent::Leave(ids[12]),
            ChurnEvent::Join(RingId(ids[30].0 + step / 2)),
            ChurnEvent::Crash(ids[0]),
        ];
        for ev in events {
            let applied = match ev {
                ChurnEvent::Join(id) => seq.churn_join(id),
                ChurnEvent::Leave(id) => seq.churn_leave(id),
                ChurnEvent::Crash(id) => seq.churn_crash(id),
            };
            assert!(applied, "{ev:?} must be feasible");
        }
        let mut batch = ChurnBatch::new();
        for ev in events {
            batch.push(ev);
        }
        let out = batch.apply(&mut bat);
        assert_eq!(out.joins, 3);
        assert_eq!(out.leaves, 2);
        assert_eq!(out.crashes, 2);
        assert_eq!(out.skipped, 0);
        assert_same_network(&seq, &bat);
        assert!(bat.check_invariants().is_empty(), "{:?}", bat.check_invariants());
        // The batch is drained and reusable.
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_skip_policy_is_pinned() {
        let mut net = net_of_n(8);
        let ids: Vec<RingId> = net.ids().collect();
        let mut batch = ChurnBatch::new();
        batch.join(ids[0]); // join of an alive id: skipped
        batch.leave(RingId(123)); // absent id: skipped
        batch.leave(ids[1]); // fine
        batch.crash(ids[1]); // second event on same id: skipped
        batch.join(RingId(777)); // fine
        batch.join(RingId(777)); // duplicate join id: skipped
        let out = batch.apply(&mut net);
        assert_eq!(out.skipped, 4);
        assert_eq!(out.joins, 1);
        assert_eq!(out.leaves, 1);
        assert_eq!(out.crashes, 0);
        assert_eq!(net.len(), 8);
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn batch_respects_alive_floor_mid_window() {
        let mut net = net_of_n(4);
        let ids: Vec<RingId> = net.ids().collect();
        let mut batch = ChurnBatch::new();
        for &id in &ids {
            batch.crash(id);
        }
        let out = batch.apply(&mut net);
        // Only two crashes fit above the 2-peer floor.
        assert_eq!(out.crashes, 2);
        assert_eq!(out.skipped, 2);
        assert_eq!(net.len(), 2);
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn batch_reports_crash_losses_for_truth_deltas() {
        let mut net = net_of_n(16);
        net.bulk_load(&(0..320).map(|i| i as f64 * 100.0 / 320.0).collect::<Vec<_>>());
        let victim = net.ids().nth(6).unwrap();
        let expected: Vec<f64> = net.node(victim).unwrap().store.values().to_vec();
        assert!(!expected.is_empty());
        let mut batch = ChurnBatch::new();
        batch.crash(victim);
        let out = batch.apply(&mut net);
        assert_eq!(out.lost, expected);
        assert_eq!(net.total_items(), 320 - expected.len() as u64);
    }

    #[test]
    fn batch_empty_window_is_a_no_op_and_single_peer_bootstraps() {
        let mut batch = ChurnBatch::new();
        let mut net = net_of_n(8);
        assert_eq!(batch.apply(&mut net), ChurnApplied::default());
        // A single-peer network can grow through the batch path: the lone
        // base peer is both predecessor and arc donor for every joiner.
        let mut tiny = net_of_n(1);
        tiny.bulk_load(&(0..64).map(|i| i as f64 * 100.0 / 64.0).collect::<Vec<_>>());
        batch.join(RingId(1_000));
        batch.join(RingId(u64::MAX / 2 + 12_345));
        let out = batch.apply(&mut tiny);
        assert_eq!(out.joins, 2);
        assert_eq!(tiny.len(), 3);
        assert_eq!(tiny.total_items(), 64);
        assert!(tiny.check_invariants().is_empty(), "{:?}", tiny.check_invariants());
    }

    #[test]
    fn symmetric_churn_keeps_size_roughly_constant() {
        let mut net = net_of_n(64);
        let mut rng = StdRng::seed_from_u64(17);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.1, 1.0));
        let outcome = churn.run(&mut net, 20.0, &mut rng);
        assert!(outcome.joins + outcome.leaves + outcome.fails > 50, "{outcome:?}");
        assert!(outcome.stabilize_rounds >= 19, "{outcome:?}");
        assert!((32..=110).contains(&net.len()), "size drifted to {}", net.len());
    }

    #[test]
    fn churn_then_stabilize_restores_ring() {
        let mut net = net_of_n(48);
        net.bulk_load(&(0..500).map(|i| i as f64 / 5.0).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(3);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.2, 0.5));
        churn.run(&mut net, 10.0, &mut rng);
        for _ in 0..8 {
            net.stabilize_round();
        }
        let violations = net.check_invariants();
        let ring_only: Vec<&String> = violations.iter().filter(|v| !v.contains("item")).collect();
        assert!(ring_only.is_empty(), "{ring_only:?}");
        // Lookups must work after churn + repair.
        let from = net.random_peer(&mut rng).unwrap();
        assert!(net.lookup(from, RingId(12345)).is_ok());
    }

    #[test]
    fn zero_rates_do_nothing() {
        let mut net = net_of_n(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut churn = ChurnProcess::new(ChurnConfig::none());
        let outcome = churn.run(&mut net, 5.0, &mut rng);
        assert_eq!(outcome.joins + outcome.leaves + outcome.fails, 0);
        assert_eq!(net.len(), 8);
        // Clock still advances and stabilization still ticks.
        assert_eq!(churn.now(), 5.0);
        assert!(outcome.stabilize_rounds >= 4);
    }

    #[test]
    fn never_shrinks_below_two() {
        let mut net = net_of_n(4);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg =
            ChurnConfig { join_rate: 0.0, leave_rate: 1.0, fail_rate: 1.0, stabilize_period: 0.5 };
        let mut churn = ChurnProcess::new(cfg);
        churn.run(&mut net, 50.0, &mut rng);
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn apply_events_is_exact() {
        let mut net = net_of_n(16);
        let mut rng = StdRng::seed_from_u64(2);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(1.0, 1.0));
        let outcome = churn.apply_events(&mut net, 10, &mut rng);
        assert_eq!(outcome.joins + outcome.leaves + outcome.fails + outcome.skipped, 10);
    }
}
