//! Poisson churn: joins, graceful leaves, and crash failures over time.
//!
//! Rates are *per peer per time unit*, the convention P2P measurement papers
//! use (e.g. "0.1 churn" = each peer has a 10% chance of departing per unit
//! time). Event times are exponential interarrivals; stabilization runs at a
//! fixed period interleaved with the events, so routing state is as stale as
//! the ratio of churn rate to stabilization rate makes it.

use crate::id::RingId;
use crate::network::Network;
use rand::Rng;

/// Churn rates, per alive peer per time unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Join rate (new peers per alive peer per time unit).
    pub join_rate: f64,
    /// Graceful-leave rate.
    pub leave_rate: f64,
    /// Crash-failure rate.
    pub fail_rate: f64,
    /// Stabilization period (time units between rounds).
    pub stabilize_period: f64,
}

impl ChurnConfig {
    /// A symmetric churn level: joins balance departures (half leaves, half
    /// crashes), keeping the expected network size constant.
    pub fn symmetric(rate: f64, stabilize_period: f64) -> Self {
        Self { join_rate: rate, leave_rate: rate / 2.0, fail_rate: rate / 2.0, stabilize_period }
    }

    /// No churn at all.
    pub fn none() -> Self {
        Self { join_rate: 0.0, leave_rate: 0.0, fail_rate: 0.0, stabilize_period: 1.0 }
    }

    fn total_rate(&self) -> f64 {
        self.join_rate + self.leave_rate + self.fail_rate
    }
}

/// Counts of what a churn run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Successful joins.
    pub joins: u64,
    /// Graceful leaves.
    pub leaves: u64,
    /// Crash failures.
    pub fails: u64,
    /// Stabilization rounds run.
    pub stabilize_rounds: u64,
    /// Events skipped because the network was about to empty out.
    pub skipped: u64,
}

/// A resumable churn process.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    config: ChurnConfig,
    /// Simulation clock.
    now: f64,
    /// Next stabilization time.
    next_stabilize: f64,
}

impl ChurnProcess {
    /// Creates a process with the given rates, starting at time 0.
    pub fn new(config: ChurnConfig) -> Self {
        Self { config, now: 0.0, next_stabilize: config.stabilize_period }
    }

    /// The current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the simulation by `duration` time units, applying churn
    /// events and periodic stabilization to `net`.
    ///
    /// The network is never allowed to drop below 2 peers (departure events
    /// that would do so are skipped and counted).
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        duration: f64,
        rng: &mut R,
    ) -> ChurnOutcome {
        let mut outcome = ChurnOutcome::default();
        let end = self.now + duration;
        loop {
            let rate = self.config.total_rate() * net.len() as f64;
            let next_event =
                if rate > 0.0 { self.now + exponential(rng, rate) } else { f64::INFINITY };
            // Interleave stabilization ticks in timestamp order.
            while self.next_stabilize <= next_event.min(end) {
                net.stabilize_round();
                outcome.stabilize_rounds += 1;
                self.next_stabilize += self.config.stabilize_period;
            }
            if next_event > end {
                self.now = end;
                return outcome;
            }
            self.now = next_event;
            self.apply_one(net, rng, &mut outcome);
        }
    }

    /// Applies exactly `n` churn events (no clock, no stabilization) — for
    /// tests that want precise control.
    pub fn apply_events<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        n: usize,
        rng: &mut R,
    ) -> ChurnOutcome {
        let mut outcome = ChurnOutcome::default();
        for _ in 0..n {
            self.apply_one(net, rng, &mut outcome);
        }
        outcome
    }

    fn apply_one<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        outcome: &mut ChurnOutcome,
    ) {
        let total = self.config.total_rate();
        if total <= 0.0 || net.is_empty() {
            outcome.skipped += 1;
            return;
        }
        let u: f64 = rng.gen::<f64>() * total;
        if u < self.config.join_rate {
            let new_id = RingId(rng.gen());
            let Some(bootstrap) = net.random_peer(rng) else {
                outcome.skipped += 1;
                return;
            };
            if net.join(new_id, bootstrap).is_ok() {
                outcome.joins += 1;
            } else {
                outcome.skipped += 1;
            }
        } else {
            if net.len() <= 2 {
                outcome.skipped += 1;
                return;
            }
            let Some(victim) = net.random_peer(rng) else {
                outcome.skipped += 1;
                return;
            };
            if u < self.config.join_rate + self.config.leave_rate {
                if net.leave(victim).is_ok() {
                    outcome.leaves += 1;
                }
            } else if net.fail(victim).is_ok() {
                outcome.fails += 1;
            }
        }
    }
}

/// An exponential interarrival with the given rate.
fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_of_n(n: u64) -> Network {
        let ids = (1..=n).map(|i| RingId(i * (u64::MAX / (n + 1)))).collect();
        Network::build(ids, Placement::range(0.0, 100.0))
    }

    #[test]
    fn symmetric_churn_keeps_size_roughly_constant() {
        let mut net = net_of_n(64);
        let mut rng = StdRng::seed_from_u64(17);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.1, 1.0));
        let outcome = churn.run(&mut net, 20.0, &mut rng);
        assert!(outcome.joins + outcome.leaves + outcome.fails > 50, "{outcome:?}");
        assert!(outcome.stabilize_rounds >= 19, "{outcome:?}");
        assert!((32..=110).contains(&net.len()), "size drifted to {}", net.len());
    }

    #[test]
    fn churn_then_stabilize_restores_ring() {
        let mut net = net_of_n(48);
        net.bulk_load(&(0..500).map(|i| i as f64 / 5.0).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(3);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.2, 0.5));
        churn.run(&mut net, 10.0, &mut rng);
        for _ in 0..8 {
            net.stabilize_round();
        }
        let violations = net.check_invariants();
        let ring_only: Vec<&String> = violations.iter().filter(|v| !v.contains("item")).collect();
        assert!(ring_only.is_empty(), "{ring_only:?}");
        // Lookups must work after churn + repair.
        let from = net.random_peer(&mut rng).unwrap();
        assert!(net.lookup(from, RingId(12345)).is_ok());
    }

    #[test]
    fn zero_rates_do_nothing() {
        let mut net = net_of_n(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut churn = ChurnProcess::new(ChurnConfig::none());
        let outcome = churn.run(&mut net, 5.0, &mut rng);
        assert_eq!(outcome.joins + outcome.leaves + outcome.fails, 0);
        assert_eq!(net.len(), 8);
        // Clock still advances and stabilization still ticks.
        assert_eq!(churn.now(), 5.0);
        assert!(outcome.stabilize_rounds >= 4);
    }

    #[test]
    fn never_shrinks_below_two() {
        let mut net = net_of_n(4);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg =
            ChurnConfig { join_rate: 0.0, leave_rate: 1.0, fail_rate: 1.0, stabilize_period: 0.5 };
        let mut churn = ChurnProcess::new(cfg);
        churn.run(&mut net, 50.0, &mut rng);
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn apply_events_is_exact() {
        let mut net = net_of_n(16);
        let mut rng = StdRng::seed_from_u64(2);
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(1.0, 1.0));
        let outcome = churn.apply_events(&mut net, 10, &mut rng);
        assert_eq!(outcome.joins + outcome.leaves + outcome.fails + outcome.skipped, 10);
    }
}
