//! Deterministic fault injection: seeded plans for message loss, reply
//! drops, delivery delays, crashes mid-request, and transient "sick peer"
//! windows.
//!
//! A [`FaultPlan`] is installed on a [`crate::Network`] with
//! [`crate::Network::set_fault_plan`] and is consulted on every simulated
//! request/reply exchange of the lookup, probe, and insert paths (baseline
//! estimators consult it through [`crate::Network::message_lost`] /
//! [`crate::Network::reply_lost`]). Every decision is drawn from a
//! splitmix64 stream over the plan's seed, so **two runs with the same seed
//! and the same operation sequence inject byte-identical faults** — the
//! `MessageStats` of a faulted run replay exactly.
//!
//! Cost model (shared with the retry machinery in `dde-core`):
//!
//! * the *network* charges messages — delivered exchanges, plus one
//!   timeout-marker message per observed silence (dead peer, lost request,
//!   dropped reply, sick window, crash);
//! * delivered messages additionally accrue simulated-time *delay units*
//!   drawn from the plan's [`DelayDist`];
//! * waiting time (per-attempt timeouts, retry backoff) is charged by the
//!   caller's retry policy, never here — so a retry that follows a purge is
//!   never double-counted.

use crate::id::RingId;
use std::collections::BTreeMap;

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word onto `[0, 1)` with 53-bit precision.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic per-message delay distribution, in simulated-time cost
/// units (the same units retry backoff is budgeted in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayDist {
    /// Minimum delay per delivered message.
    pub base: u64,
    /// Maximum uniform jitter added on top (`0..=jitter`).
    pub jitter: u64,
}

impl Default for DelayDist {
    fn default() -> Self {
        Self { base: 1, jitter: 3 }
    }
}

/// What the plan decided for one request/reply exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The exchange goes through unharmed.
    Clean,
    /// The request transmission is lost on the link; the receiver never
    /// sees it.
    RequestLost,
    /// The request arrives and is processed, but the reply is dropped —
    /// the sender observes a timeout even though work happened remotely.
    ReplyLost,
    /// The contacted peer is inside a transient sick window: unresponsive
    /// for a while but **not** dead (do not purge routing state).
    Sick,
    /// The contacted peer crashes mid-request — a permanent failure.
    Crash,
    /// The contacted peer is in the low-capacity class and its reply missed
    /// the caller's deadline: the request **was** processed, but the sender
    /// observes a timeout (do not purge routing state — the peer is alive,
    /// just overloaded).
    Slow,
    /// The link crosses an arc-partition cut: nothing gets through in either
    /// direction until the partition heals (do not purge — both sides live).
    Partitioned,
}

/// A seeded, fully deterministic fault plan (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-link request-loss probability (each transmission rolls
    /// independently, salted by the link's endpoint ids).
    pub loss: f64,
    /// Probability a reply is dropped after the request arrived.
    pub reply_loss: f64,
    /// Probability the contacted peer crashes mid-request.
    pub crash: f64,
    /// Fraction of peers transiently sick in any given window.
    pub sick: f64,
    /// Sick-window length in plan clock ticks (one tick per top-level
    /// overlay operation); which peers are sick is re-drawn every window.
    pub sick_window: u64,
    /// Delay distribution for delivered messages.
    pub delay: DelayDist,
    /// Fraction of peers in the static low-capacity (slow) class.
    pub capacity_slow: f64,
    /// Delay multiplier for messages *sent by* slow-class peers.
    pub capacity_factor: u64,
    /// Patience deadline in delay units: a slow peer's reply whose scaled
    /// delay draw exceeds this surfaces as a [`FaultDecision::Slow`]
    /// timeout (0 = callers wait forever; pure delay scaling).
    pub capacity_deadline: u64,
    /// Active arc partition as `(start, span)` in ring-id space: the
    /// contiguous arc `[start, start + span)` (wrap-around) is cut off from
    /// the rest of the ring.
    pub partition: Option<(u64, u64)>,
    /// Whether the per-link FIFO clamp is active (see [`FaultPlan::deliver`]).
    /// Disabled only by the DST bug-injection drill.
    fifo_guard: bool,
    /// Per-directed-link delivery front: the largest delay handed out on
    /// that link so far, in delay units (capacity axis only).
    link_fronts: BTreeMap<(u64, u64), u64>,
    /// Same-link delivery reorderings observed (always 0 with the FIFO
    /// guard on — the invariant the DST oracle checks).
    reorderings: u64,
    /// Decision-stream position; advances once per roll.
    counter: u64,
    /// Operation clock; advances once per lookup/probe/insert.
    clock: u64,
}

impl FaultPlan {
    /// A plan injecting nothing (all probabilities zero) — the builder
    /// methods below switch individual faults on.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            loss: 0.0,
            reply_loss: 0.0,
            crash: 0.0,
            sick: 0.0,
            sick_window: 64,
            delay: DelayDist::default(),
            capacity_slow: 0.0,
            capacity_factor: 1,
            capacity_deadline: 0,
            partition: None,
            fifo_guard: true,
            link_fronts: BTreeMap::new(),
            reorderings: 0,
            counter: 0,
            clock: 0,
        }
    }

    /// Sets the per-link request-loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the reply-drop probability.
    pub fn with_reply_loss(mut self, p: f64) -> Self {
        self.reply_loss = p;
        self
    }

    /// Sets the crash-mid-request probability.
    pub fn with_crash(mut self, p: f64) -> Self {
        self.crash = p;
        self
    }

    /// Makes a `p` fraction of peers sick per window of `window` operations.
    pub fn with_sick(mut self, p: f64, window: u64) -> Self {
        self.sick = p;
        self.sick_window = window.max(1);
        self
    }

    /// Sets the delivered-message delay distribution.
    pub fn with_delay(mut self, delay: DelayDist) -> Self {
        self.delay = delay;
        self
    }

    /// Puts a `slow` fraction of peers in a static low-capacity class:
    /// every message they send takes `factor`× the drawn delay, and a reply
    /// whose scaled delay draw exceeds `deadline` misses the caller's
    /// patience (surfacing as a [`FaultDecision::Slow`] timeout; `deadline
    /// = 0` means callers wait forever and the axis is pure delay scaling).
    pub fn with_capacity(mut self, slow: f64, factor: u64, deadline: u64) -> Self {
        self.capacity_slow = slow;
        self.capacity_factor = factor.max(1);
        self.capacity_deadline = deadline;
        self
    }

    /// Cuts the contiguous id arc `[start, start + span)` (wrap-around) off
    /// from the rest of the ring: no message crosses the cut, in either
    /// direction, until [`FaultPlan::heal_partition`] is called.
    pub fn with_partition(mut self, start: u64, span: u64) -> Self {
        self.partition = if span == 0 { None } else { Some((start, span)) };
        self
    }

    /// Heals the arc partition (if any).
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Disables the per-link FIFO clamp in [`FaultPlan::deliver`]. This is
    /// the DST bug-injection hook (`DropCapacityFifoGuard`): with the guard
    /// off, same-link reorderings are *tallied* instead of prevented, and
    /// the oracle's `reorderings() == 0` invariant catches them.
    pub fn without_fifo_guard(mut self) -> Self {
        self.fifo_guard = false;
        self
    }

    /// Same-link delivery reorderings observed so far (always 0 while the
    /// FIFO guard is on).
    pub fn reorderings(&self) -> u64 {
        self.reorderings
    }

    /// Whether the heterogeneous-capacity axis is active.
    pub fn capacity_active(&self) -> bool {
        self.capacity_slow > 0.0 && self.capacity_factor > 1
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The operation clock (ticks once per top-level overlay operation).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the operation clock. Called by the network at the start of
    /// each top-level operation (lookup/probe/insert).
    pub(crate) fn tick(&mut self) {
        self.clock += 1;
    }

    /// One draw from the decision stream, salted by `salt`.
    fn roll(&mut self, salt: u64) -> f64 {
        self.counter += 1;
        unit(mix(self.seed ^ mix(self.counter) ^ salt))
    }

    /// Salt identifying a directed link (order matters: `a → b ≠ b → a`).
    fn link_salt(from: RingId, to: RingId) -> u64 {
        mix(from.0).rotate_left(17) ^ mix(to.0)
    }

    /// Rolls request loss for one `from → to` transmission.
    pub fn request_lost(&mut self, from: RingId, to: RingId) -> bool {
        let salt = Self::link_salt(from, to);
        self.roll(salt) < self.loss
    }

    /// Rolls reply loss for one `from → to` reply transmission.
    pub fn reply_lost(&mut self, from: RingId, to: RingId) -> bool {
        let salt = Self::link_salt(from, to).rotate_left(31);
        self.roll(salt) < self.reply_loss
    }

    /// Rolls whether the contacted `peer` crashes mid-request.
    pub fn crashes(&mut self, peer: RingId) -> bool {
        self.roll(mix(peer.0)) < self.crash
    }

    /// The one per-peer fault-class draw, shared by every axis that places
    /// peers in classes (sick windows, capacity classes). Pure — consumes
    /// no decision-stream state — so membership is stable within an epoch,
    /// and all class-based axes ride the same operation clock instead of
    /// each keeping private timeout bookkeeping that could drift. `salt`
    /// identifies the axis; `epoch` selects the membership generation
    /// (`clock / window` for rotating axes, a nonzero constant for static
    /// ones — zero would erase the salt, colliding every axis).
    fn class_draw(&self, peer: RingId, epoch: u64, salt: u64) -> f64 {
        unit(mix(self.seed ^ mix(peer.0) ^ mix(epoch.wrapping_mul(salt))))
    }

    /// Whether `peer` is inside a sick window *right now*. Pure in the
    /// clock: the same peer stays sick for the whole window and the sick
    /// set is re-drawn when the window rolls over.
    pub fn is_sick(&self, peer: RingId) -> bool {
        if self.sick <= 0.0 {
            return false;
        }
        self.class_draw(peer, self.clock / self.sick_window, 0xA076_1D64_78BD_642F) < self.sick
    }

    /// Whether `peer` is in the static low-capacity class. Pure; the class
    /// never rotates (capacity is a property of the peer, not a window).
    pub fn is_slow(&self, peer: RingId) -> bool {
        if self.capacity_slow <= 0.0 {
            return false;
        }
        // Epoch 1, not 0: the epoch multiplies the axis salt, and 0 would
        // collapse every static axis onto one membership draw.
        self.class_draw(peer, 1, 0x8CB9_2BA7_2F3D_8DD7) < self.capacity_slow
    }

    /// Whether the `from → to` link crosses the active arc-partition cut.
    /// Pure; consumes nothing when no partition is installed.
    pub fn partitioned(&self, from: RingId, to: RingId) -> bool {
        let Some((start, span)) = self.partition else {
            return false;
        };
        let in_arc = |id: RingId| id.0.wrapping_sub(start) < span;
        in_arc(from) != in_arc(to)
    }

    /// Draws one delivered-message delay in cost units.
    pub fn message_delay(&mut self) -> u64 {
        let d = self.delay;
        if d.jitter == 0 {
            return d.base;
        }
        self.counter += 1;
        d.base + mix(self.seed ^ mix(self.counter) ^ 0x6A09_E667_F3BC_C909) % (d.jitter + 1)
    }

    /// Draws the delivery delay for one `from → to` message. Without the
    /// capacity axis this is exactly [`FaultPlan::message_delay`] — same
    /// draw, same stream position. With it, a message sent by a slow-class
    /// peer takes `capacity_factor`× the drawn delay, and the per-link FIFO
    /// clamp raises the result to the link's front so a later send never
    /// arrives before an earlier one on the same directed link. With the
    /// guard disabled (bug drill), the raw delay is used as-is and every
    /// would-be reordering is tallied in [`FaultPlan::reorderings`].
    pub fn deliver(&mut self, from: RingId, to: RingId) -> u64 {
        let raw = self.message_delay();
        if !self.capacity_active() {
            return raw;
        }
        let scaled = if self.is_slow(from) { raw * self.capacity_factor } else { raw };
        let front = self.link_fronts.entry((from.0, to.0)).or_insert(0);
        if scaled < *front {
            if self.fifo_guard {
                return *front;
            }
            self.reorderings += 1;
            return scaled;
        }
        *front = scaled;
        scaled
    }

    /// Whether the contacted slow peer's reply misses the caller's
    /// deadline. Consumes a decision-stream draw only when the capacity
    /// axis has a deadline *and* `to` is slow, so inactive axes never
    /// perturb the stream.
    fn reply_overdue(&mut self, to: RingId) -> bool {
        if self.capacity_deadline == 0 || !self.capacity_active() || !self.is_slow(to) {
            return false;
        }
        self.message_delay() * self.capacity_factor > self.capacity_deadline
    }

    /// One combined decision for an application-level request/reply RPC on
    /// the `from → to` link, rolling the faults in causal order: a
    /// partitioned link carries nothing, a sick or crashed peer never
    /// replies, a lost request is never processed, and only a processed
    /// request can have its reply arrive late or get lost.
    pub fn decide_rpc(&mut self, from: RingId, to: RingId) -> FaultDecision {
        if self.partitioned(from, to) {
            return FaultDecision::Partitioned;
        }
        if self.is_sick(to) {
            return FaultDecision::Sick;
        }
        if self.request_lost(from, to) {
            return FaultDecision::RequestLost;
        }
        if self.crashes(to) {
            return FaultDecision::Crash;
        }
        if self.reply_overdue(to) {
            return FaultDecision::Slow;
        }
        if self.reply_lost(to, from) {
            return FaultDecision::ReplyLost;
        }
        FaultDecision::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = FaultPlan::new(42).with_loss(0.2).with_reply_loss(0.1).with_crash(0.05);
        let mut b = a.clone();
        for i in 0..1_000u64 {
            let x = RingId(mix(i));
            let y = RingId(mix(i ^ 0xFFFF));
            assert_eq!(a.decide_rpc(x, y), b.decide_rpc(x, y));
            assert_eq!(a.message_delay(), b.message_delay());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(1).with_loss(0.5);
        let mut b = FaultPlan::new(2).with_loss(0.5);
        let diverged = (0..64u64).any(|i| {
            a.request_lost(RingId(i), RingId(!i)) != b.request_lost(RingId(i), RingId(!i))
        });
        assert!(diverged, "independent seeds should produce different streams");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut plan = FaultPlan::new(7).with_loss(0.3);
        let n = 20_000;
        let lost = (0..n).filter(|&i| plan.request_lost(RingId(i), RingId(i ^ 0xABCD))).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
        // Zero-probability faults never fire.
        assert!(!plan.reply_lost(RingId(1), RingId(2)));
        assert!(!plan.crashes(RingId(3)));
        assert!(!plan.is_sick(RingId(4)));
    }

    #[test]
    fn sick_windows_are_stable_then_rotate() {
        let mut plan = FaultPlan::new(11).with_sick(0.3, 8);
        let peers: Vec<RingId> = (0..64).map(|i| RingId(mix(i))).collect();
        let snapshot: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        let sick_now = snapshot.iter().filter(|&&s| s).count();
        assert!(sick_now > 5 && sick_now < 40, "sick fraction off: {sick_now}/64");
        // Stable within the window…
        for _ in 0..7 {
            plan.tick();
        }
        let same: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        assert_eq!(snapshot, same);
        // …and re-drawn in a later window.
        for _ in 0..64 {
            plan.tick();
        }
        let later: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        assert_ne!(snapshot, later, "sick set should rotate across windows");
    }

    #[test]
    fn deliver_matches_message_delay_when_capacity_inactive() {
        // The default path must be byte-identical whether a call site uses
        // `deliver` or the legacy `message_delay` — same draws, same stream.
        let mut a = FaultPlan::new(9).with_delay(DelayDist { base: 1, jitter: 7 });
        let mut b = a.clone();
        for i in 0..200u64 {
            let d = a.deliver(RingId(mix(i)), RingId(mix(!i)));
            assert_eq!(d, b.message_delay());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn slow_class_is_static_and_roughly_honours_fraction() {
        let mut plan = FaultPlan::new(5).with_capacity(0.25, 4, 0);
        let peers: Vec<RingId> = (0..400).map(|i| RingId(mix(i))).collect();
        let before: Vec<bool> = peers.iter().map(|&p| plan.is_slow(p)).collect();
        let slow = before.iter().filter(|&&s| s).count();
        assert!((60..=140).contains(&slow), "slow fraction off: {slow}/400");
        // Static: the class never rotates with the operation clock.
        for _ in 0..200 {
            plan.tick();
        }
        let after: Vec<bool> = peers.iter().map(|&p| plan.is_slow(p)).collect();
        assert_eq!(before, after);
        // And independent of the sick class under the same seed.
        let sick_plan = FaultPlan::new(5).with_sick(0.25, 8);
        let sick: Vec<bool> = peers.iter().map(|&p| sick_plan.is_sick(p)).collect();
        assert_ne!(before, sick, "slow and sick classes must not alias");
    }

    #[test]
    fn fifo_guard_prevents_reordering_and_drill_hook_counts_it() {
        let slow_sender = |plan: &FaultPlan| {
            (0..u64::MAX).map(|i| RingId(mix(i))).find(|&p| plan.is_slow(p)).expect("slow peer")
        };
        let mut guarded = FaultPlan::new(77)
            .with_capacity(0.5, 6, 0)
            .with_delay(DelayDist { base: 1, jitter: 9 });
        let from = slow_sender(&guarded);
        let to = RingId(0xDEAD_BEEF);
        let mut prev = 0;
        for _ in 0..100 {
            let d = guarded.deliver(from, to);
            assert!(d >= prev, "guarded delivery reordered: {d} < {prev}");
            prev = d;
        }
        assert_eq!(guarded.reorderings(), 0);
        // Same draws with the guard dropped: reorderings happen and are
        // tallied — this is what the DST drill relies on.
        let mut buggy = FaultPlan::new(77)
            .with_capacity(0.5, 6, 0)
            .with_delay(DelayDist { base: 1, jitter: 9 })
            .without_fifo_guard();
        for _ in 0..100 {
            buggy.deliver(from, to);
        }
        assert!(buggy.reorderings() > 0, "unguarded jittered link never reordered");
    }

    #[test]
    fn partition_cuts_crossing_links_both_ways_and_heals() {
        let mut plan = FaultPlan::new(3).with_partition(100, 50);
        let inside = RingId(120);
        let outside = RingId(10);
        let inside2 = RingId(149);
        assert!(plan.partitioned(inside, outside));
        assert!(plan.partitioned(outside, inside));
        assert!(!plan.partitioned(inside, inside2));
        assert!(!plan.partitioned(outside, RingId(99)));
        assert_eq!(plan.decide_rpc(inside, outside), FaultDecision::Partitioned);
        assert_eq!(plan.decide_rpc(inside, inside2), FaultDecision::Clean);
        plan.heal_partition();
        assert!(!plan.partitioned(inside, outside));
        // Wrap-around arc: [u64::MAX - 10, u64::MAX - 10 + 20) spans zero.
        let wrapped = FaultPlan::new(3).with_partition(u64::MAX - 10, 20);
        assert!(wrapped.partitioned(RingId(u64::MAX - 5), RingId(1000)));
        assert!(!wrapped.partitioned(RingId(u64::MAX - 5), RingId(5)));
    }

    #[test]
    fn overloaded_replies_miss_tight_deadlines() {
        // Deadline below the scaled minimum: every RPC to a slow peer is
        // Slow; fast peers are untouched.
        let mut plan = FaultPlan::new(21)
            .with_capacity(0.5, 8, 4)
            .with_delay(DelayDist { base: 1, jitter: 0 });
        let peers: Vec<RingId> = (0..64).map(|i| RingId(mix(i))).collect();
        let from = RingId(1);
        for &p in &peers {
            let want = if plan.is_slow(p) { FaultDecision::Slow } else { FaultDecision::Clean };
            assert_eq!(plan.decide_rpc(from, p), want);
        }
        // A generous deadline lets every reply through.
        let mut lax = FaultPlan::new(21)
            .with_capacity(0.5, 8, 1000)
            .with_delay(DelayDist { base: 1, jitter: 0 });
        for &p in &peers {
            assert_eq!(lax.decide_rpc(from, p), FaultDecision::Clean);
        }
    }

    #[test]
    fn delays_stay_in_range() {
        let mut plan = FaultPlan::new(3).with_delay(DelayDist { base: 2, jitter: 5 });
        for _ in 0..500 {
            let d = plan.message_delay();
            assert!((2..=7).contains(&d), "delay {d} outside [2, 7]");
        }
        let mut flat = FaultPlan::new(3).with_delay(DelayDist { base: 4, jitter: 0 });
        assert_eq!(flat.message_delay(), 4);
    }
}
