//! Deterministic fault injection: seeded plans for message loss, reply
//! drops, delivery delays, crashes mid-request, and transient "sick peer"
//! windows.
//!
//! A [`FaultPlan`] is installed on a [`crate::Network`] with
//! [`crate::Network::set_fault_plan`] and is consulted on every simulated
//! request/reply exchange of the lookup, probe, and insert paths (baseline
//! estimators consult it through [`crate::Network::message_lost`] /
//! [`crate::Network::reply_lost`]). Every decision is drawn from a
//! splitmix64 stream over the plan's seed, so **two runs with the same seed
//! and the same operation sequence inject byte-identical faults** — the
//! `MessageStats` of a faulted run replay exactly.
//!
//! Cost model (shared with the retry machinery in `dde-core`):
//!
//! * the *network* charges messages — delivered exchanges, plus one
//!   timeout-marker message per observed silence (dead peer, lost request,
//!   dropped reply, sick window, crash);
//! * delivered messages additionally accrue simulated-time *delay units*
//!   drawn from the plan's [`DelayDist`];
//! * waiting time (per-attempt timeouts, retry backoff) is charged by the
//!   caller's retry policy, never here — so a retry that follows a purge is
//!   never double-counted.

use crate::id::RingId;

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word onto `[0, 1)` with 53-bit precision.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic per-message delay distribution, in simulated-time cost
/// units (the same units retry backoff is budgeted in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayDist {
    /// Minimum delay per delivered message.
    pub base: u64,
    /// Maximum uniform jitter added on top (`0..=jitter`).
    pub jitter: u64,
}

impl Default for DelayDist {
    fn default() -> Self {
        Self { base: 1, jitter: 3 }
    }
}

/// What the plan decided for one request/reply exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The exchange goes through unharmed.
    Clean,
    /// The request transmission is lost on the link; the receiver never
    /// sees it.
    RequestLost,
    /// The request arrives and is processed, but the reply is dropped —
    /// the sender observes a timeout even though work happened remotely.
    ReplyLost,
    /// The contacted peer is inside a transient sick window: unresponsive
    /// for a while but **not** dead (do not purge routing state).
    Sick,
    /// The contacted peer crashes mid-request — a permanent failure.
    Crash,
}

/// A seeded, fully deterministic fault plan (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-link request-loss probability (each transmission rolls
    /// independently, salted by the link's endpoint ids).
    pub loss: f64,
    /// Probability a reply is dropped after the request arrived.
    pub reply_loss: f64,
    /// Probability the contacted peer crashes mid-request.
    pub crash: f64,
    /// Fraction of peers transiently sick in any given window.
    pub sick: f64,
    /// Sick-window length in plan clock ticks (one tick per top-level
    /// overlay operation); which peers are sick is re-drawn every window.
    pub sick_window: u64,
    /// Delay distribution for delivered messages.
    pub delay: DelayDist,
    /// Decision-stream position; advances once per roll.
    counter: u64,
    /// Operation clock; advances once per lookup/probe/insert.
    clock: u64,
}

impl FaultPlan {
    /// A plan injecting nothing (all probabilities zero) — the builder
    /// methods below switch individual faults on.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            loss: 0.0,
            reply_loss: 0.0,
            crash: 0.0,
            sick: 0.0,
            sick_window: 64,
            delay: DelayDist::default(),
            counter: 0,
            clock: 0,
        }
    }

    /// Sets the per-link request-loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the reply-drop probability.
    pub fn with_reply_loss(mut self, p: f64) -> Self {
        self.reply_loss = p;
        self
    }

    /// Sets the crash-mid-request probability.
    pub fn with_crash(mut self, p: f64) -> Self {
        self.crash = p;
        self
    }

    /// Makes a `p` fraction of peers sick per window of `window` operations.
    pub fn with_sick(mut self, p: f64, window: u64) -> Self {
        self.sick = p;
        self.sick_window = window.max(1);
        self
    }

    /// Sets the delivered-message delay distribution.
    pub fn with_delay(mut self, delay: DelayDist) -> Self {
        self.delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The operation clock (ticks once per top-level overlay operation).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the operation clock. Called by the network at the start of
    /// each top-level operation (lookup/probe/insert).
    pub(crate) fn tick(&mut self) {
        self.clock += 1;
    }

    /// One draw from the decision stream, salted by `salt`.
    fn roll(&mut self, salt: u64) -> f64 {
        self.counter += 1;
        unit(mix(self.seed ^ mix(self.counter) ^ salt))
    }

    /// Salt identifying a directed link (order matters: `a → b ≠ b → a`).
    fn link_salt(from: RingId, to: RingId) -> u64 {
        mix(from.0).rotate_left(17) ^ mix(to.0)
    }

    /// Rolls request loss for one `from → to` transmission.
    pub fn request_lost(&mut self, from: RingId, to: RingId) -> bool {
        let salt = Self::link_salt(from, to);
        self.roll(salt) < self.loss
    }

    /// Rolls reply loss for one `from → to` reply transmission.
    pub fn reply_lost(&mut self, from: RingId, to: RingId) -> bool {
        let salt = Self::link_salt(from, to).rotate_left(31);
        self.roll(salt) < self.reply_loss
    }

    /// Rolls whether the contacted `peer` crashes mid-request.
    pub fn crashes(&mut self, peer: RingId) -> bool {
        self.roll(mix(peer.0)) < self.crash
    }

    /// Whether `peer` is inside a sick window *right now*. Pure in the
    /// clock: the same peer stays sick for the whole window and the sick
    /// set is re-drawn when the window rolls over.
    pub fn is_sick(&self, peer: RingId) -> bool {
        if self.sick <= 0.0 {
            return false;
        }
        let window = self.clock / self.sick_window;
        unit(mix(self.seed ^ mix(peer.0) ^ mix(window.wrapping_mul(0xA076_1D64_78BD_642F))))
            < self.sick
    }

    /// Draws one delivered-message delay in cost units.
    pub fn message_delay(&mut self) -> u64 {
        let d = self.delay;
        if d.jitter == 0 {
            return d.base;
        }
        self.counter += 1;
        d.base + mix(self.seed ^ mix(self.counter) ^ 0x6A09_E667_F3BC_C909) % (d.jitter + 1)
    }

    /// One combined decision for an application-level request/reply RPC on
    /// the `from → to` link, rolling the faults in causal order: a sick or
    /// crashed peer never replies, a lost request is never processed, and
    /// only a processed request can lose its reply.
    pub fn decide_rpc(&mut self, from: RingId, to: RingId) -> FaultDecision {
        if self.is_sick(to) {
            return FaultDecision::Sick;
        }
        if self.request_lost(from, to) {
            return FaultDecision::RequestLost;
        }
        if self.crashes(to) {
            return FaultDecision::Crash;
        }
        if self.reply_lost(to, from) {
            return FaultDecision::ReplyLost;
        }
        FaultDecision::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = FaultPlan::new(42).with_loss(0.2).with_reply_loss(0.1).with_crash(0.05);
        let mut b = a.clone();
        for i in 0..1_000u64 {
            let x = RingId(mix(i));
            let y = RingId(mix(i ^ 0xFFFF));
            assert_eq!(a.decide_rpc(x, y), b.decide_rpc(x, y));
            assert_eq!(a.message_delay(), b.message_delay());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(1).with_loss(0.5);
        let mut b = FaultPlan::new(2).with_loss(0.5);
        let diverged = (0..64u64).any(|i| {
            a.request_lost(RingId(i), RingId(!i)) != b.request_lost(RingId(i), RingId(!i))
        });
        assert!(diverged, "independent seeds should produce different streams");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut plan = FaultPlan::new(7).with_loss(0.3);
        let n = 20_000;
        let lost = (0..n).filter(|&i| plan.request_lost(RingId(i), RingId(i ^ 0xABCD))).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
        // Zero-probability faults never fire.
        assert!(!plan.reply_lost(RingId(1), RingId(2)));
        assert!(!plan.crashes(RingId(3)));
        assert!(!plan.is_sick(RingId(4)));
    }

    #[test]
    fn sick_windows_are_stable_then_rotate() {
        let mut plan = FaultPlan::new(11).with_sick(0.3, 8);
        let peers: Vec<RingId> = (0..64).map(|i| RingId(mix(i))).collect();
        let snapshot: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        let sick_now = snapshot.iter().filter(|&&s| s).count();
        assert!(sick_now > 5 && sick_now < 40, "sick fraction off: {sick_now}/64");
        // Stable within the window…
        for _ in 0..7 {
            plan.tick();
        }
        let same: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        assert_eq!(snapshot, same);
        // …and re-drawn in a later window.
        for _ in 0..64 {
            plan.tick();
        }
        let later: Vec<bool> = peers.iter().map(|&p| plan.is_sick(p)).collect();
        assert_ne!(snapshot, later, "sick set should rotate across windows");
    }

    #[test]
    fn delays_stay_in_range() {
        let mut plan = FaultPlan::new(3).with_delay(DelayDist { base: 2, jitter: 5 });
        for _ in 0..500 {
            let d = plan.message_delay();
            assert!((2..=7).contains(&d), "delay {d} outside [2, 7]");
        }
        let mut flat = FaultPlan::new(3).with_delay(DelayDist { base: 4, jitter: 0 });
        assert_eq!(flat.message_delay(), 4);
    }
}
