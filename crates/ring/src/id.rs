//! Identifier-ring arithmetic on the 2⁶⁴ ring.
//!
//! All overlay state is keyed by [`RingId`] positions on a ring of size
//! 2⁶⁴ with wraparound. A peer with identifier `n` and predecessor `p` is
//! responsible for the half-open arc `(p, n]` — every arc predicate in the
//! codebase uses that single convention.

/// Number of bits of the identifier space (and of finger tables).
pub const RING_BITS: u32 = 64;

/// A position on the 2⁶⁴ identifier ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingId(pub u64);

impl RingId {
    /// The clockwise distance from `self` to `other` (0 when equal).
    pub fn distance_to(self, other: RingId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The ring position `2^i` steps clockwise (the start of finger `i`).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= 64`.
    pub fn finger_start(self, i: u32) -> RingId {
        debug_assert!(i < RING_BITS);
        RingId(self.0.wrapping_add(1u64 << i))
    }

    /// Whether `self` lies in the half-open arc `(from, to]` (wraparound).
    ///
    /// When `from == to` the arc is the **entire ring** (the single-node
    /// convention: that node owns everything).
    pub fn in_arc(self, from: RingId, to: RingId) -> bool {
        if from == to {
            return true;
        }
        // x ∈ (from, to]  ⇔  dist(from, x) ∈ (0, dist(from, to)]
        let d_x = from.distance_to(self);
        let d_to = from.distance_to(to);
        d_x != 0 && d_x <= d_to
    }

    /// Whether `self` lies in the open arc `(from, to)` (wraparound); empty
    /// when `from == to`... except that, consistent with Chord, `from == to`
    /// denotes the full ring minus the endpoint (the single-node case for
    /// closest-preceding scans).
    pub fn in_open_arc(self, from: RingId, to: RingId) -> bool {
        if from == to {
            return self != from;
        }
        let d_x = from.distance_to(self);
        let d_to = from.distance_to(to);
        d_x != 0 && d_x < d_to
    }

    /// The fraction of the ring covered by the arc `(from, self]`, in
    /// `(0, 1]`; `from == self` means the full ring (fraction 1).
    ///
    /// This is the **inclusion probability** of a uniform ring-position probe
    /// landing on the peer owning that arc — the quantity the paper's
    /// Horvitz–Thompson correction divides by.
    pub fn arc_fraction_from(self, from: RingId) -> f64 {
        if from == self {
            return 1.0;
        }
        from.distance_to(self) as f64 / 2f64.powi(64)
    }
}

impl std::fmt::Display for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MAX: u64 = u64::MAX;

    #[test]
    fn distance_wraps() {
        assert_eq!(RingId(10).distance_to(RingId(15)), 5);
        assert_eq!(RingId(15).distance_to(RingId(10)), MAX - 4);
        assert_eq!(RingId(MAX).distance_to(RingId(4)), 5);
        assert_eq!(RingId(7).distance_to(RingId(7)), 0);
    }

    #[test]
    fn in_arc_without_wrap() {
        let (a, b) = (RingId(10), RingId(20));
        assert!(!RingId(10).in_arc(a, b)); // from excluded
        assert!(RingId(11).in_arc(a, b));
        assert!(RingId(20).in_arc(a, b)); // to included
        assert!(!RingId(21).in_arc(a, b));
        assert!(!RingId(5).in_arc(a, b));
    }

    #[test]
    fn in_arc_with_wrap() {
        let (a, b) = (RingId(MAX - 5), RingId(5));
        assert!(RingId(MAX).in_arc(a, b));
        assert!(RingId(0).in_arc(a, b));
        assert!(RingId(5).in_arc(a, b));
        assert!(!RingId(6).in_arc(a, b));
        assert!(!RingId(MAX - 5).in_arc(a, b));
        assert!(!RingId(1000).in_arc(a, b));
    }

    #[test]
    fn degenerate_arc_is_full_ring() {
        let a = RingId(42);
        assert!(RingId(0).in_arc(a, a));
        assert!(RingId(42).in_arc(a, a));
        assert!(RingId(MAX).in_arc(a, a));
    }

    #[test]
    fn open_arc_excludes_endpoints() {
        let (a, b) = (RingId(10), RingId(20));
        assert!(!RingId(10).in_open_arc(a, b));
        assert!(!RingId(20).in_open_arc(a, b));
        assert!(RingId(15).in_open_arc(a, b));
        // Degenerate open arc: everything except the point itself.
        assert!(RingId(0).in_open_arc(a, a));
        assert!(!RingId(10).in_open_arc(a, a));
    }

    #[test]
    fn finger_starts() {
        assert_eq!(RingId(0).finger_start(0), RingId(1));
        assert_eq!(RingId(0).finger_start(63), RingId(1 << 63));
        assert_eq!(RingId(MAX).finger_start(0), RingId(0)); // wrap
    }

    #[test]
    fn arc_fraction() {
        let f = RingId(1 << 62).arc_fraction_from(RingId(0));
        assert!((f - 0.25).abs() < 1e-15);
        assert_eq!(RingId(9).arc_fraction_from(RingId(9)), 1.0);
        // Tiny arcs still have positive fraction.
        assert!(RingId(1).arc_fraction_from(RingId(0)) > 0.0);
    }

    proptest! {
        /// Exactly one of three: x == from, x in (from, to], or x in (to, from].
        #[test]
        fn arc_trichotomy(x: u64, from: u64, to: u64) {
            prop_assume!(from != to);
            let (x, a, b) = (RingId(x), RingId(from), RingId(to));
            let cases = u8::from(x == a) + u8::from(x.in_arc(a, b)) + u8::from(x.in_arc(b, a));
            prop_assert_eq!(cases, 1);
        }

        /// dist(a, b) + dist(b, a) is 0 (equal) or wraps to 0 mod 2^64.
        #[test]
        fn distances_complement(a: u64, b: u64) {
            let (a, b) = (RingId(a), RingId(b));
            prop_assert_eq!(a.distance_to(b).wrapping_add(b.distance_to(a)), 0u64);
        }

        /// Arc fractions of the two complementary arcs sum to 1.
        #[test]
        fn arc_fractions_complement(a: u64, b: u64) {
            prop_assume!(a != b);
            let (a, b) = (RingId(a), RingId(b));
            let s = b.arc_fraction_from(a) + a.arc_fraction_from(b);
            prop_assert!((s - 1.0).abs() < 1e-12);
        }

        /// in_open_arc implies in_arc for non-degenerate arcs.
        #[test]
        fn open_implies_half_open(x: u64, from: u64, to: u64) {
            prop_assume!(from != to);
            let (x, a, b) = (RingId(x), RingId(from), RingId(to));
            if x.in_open_arc(a, b) {
                prop_assert!(x.in_arc(a, b));
            }
        }
    }
}
