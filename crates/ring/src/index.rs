//! Sorted-vec node index: the network's alive-peer map.
//!
//! Replaces a `BTreeMap<RingId, Node>` on the per-hop lookup path with two
//! parallel vectors kept sorted by id. Point lookups become a single
//! `partition_point` binary search over a dense `Vec<RingId>` (one cache
//! line per probe instead of a pointer chase per tree level), ring-order
//! iteration is a plain slice walk, and positional access (`key_at`) makes
//! random-peer draws O(1) instead of the `O(n)` `keys().nth(..)` walk a
//! `BTreeMap` forces.
//!
//! Inserts and removes are `O(n)` memmoves — fine here, because membership
//! changes are orders of magnitude rarer than lookup hops.

use crate::arena::RingArena;
use crate::id::RingId;
use crate::node::Node;

/// Alive peers, keyed by ring id, in ring (ascending id) order.
///
/// The id column (`keys`) is a dense sorted `Vec<RingId>`; the node records
/// live in a [`RingArena`] slab kept in lockstep. See [`crate::arena`] for
/// the memory model.
#[derive(Debug, Clone, Default)]
pub struct NodeIndex {
    keys: Vec<RingId>,
    arena: RingArena,
}

impl NodeIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index of fresh (unwired) nodes from a strictly sorted id
    /// column in O(P) — the bulk-construction entry point, skipping the
    /// per-insert binary search and memmove of [`NodeIndex::insert`].
    ///
    /// # Panics
    /// Panics if `ids` is not strictly ascending.
    pub fn from_sorted_ids(ids: &[RingId]) -> Self {
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly sorted");
        let mut arena = RingArena::with_capacity(ids.len());
        for &id in ids {
            arena.push(Node::new(id));
        }
        Self { keys: ids.to_vec(), arena }
    }

    /// Resets every node's routing state to the perfect steady state in
    /// `O(P · RING_BITS)` (see [`RingArena::wire_perfect`]).
    pub fn rewire_perfect(&mut self) {
        self.arena.wire_perfect(&self.keys);
    }

    /// Column-consistency oracle: id column and arena in lockstep, inline
    /// lists shape-valid (see [`RingArena::check_columns`]).
    pub fn check_columns(&self) -> Vec<String> {
        self.arena.check_columns(&self.keys)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Position of `id`, if present.
    #[inline]
    fn position(&self, id: RingId) -> Result<usize, usize> {
        let pos = self.keys.partition_point(|&k| k < id);
        if pos < self.keys.len() && self.keys[pos] == id {
            Ok(pos)
        } else {
            Err(pos)
        }
    }

    /// Whether `id` is present.
    pub fn contains_key(&self, id: &RingId) -> bool {
        self.position(*id).is_ok()
    }

    /// The node with `id`, if present.
    #[inline]
    pub fn get(&self, id: &RingId) -> Option<&Node> {
        self.position(*id).ok().map(|i| self.arena.slot(i))
    }

    /// Mutable access to the node with `id`, if present.
    #[inline]
    pub fn get_mut(&mut self, id: &RingId) -> Option<&mut Node> {
        self.position(*id).ok().map(|i| self.arena.slot_mut(i))
    }

    /// Inserts `node` under `id`, returning the displaced node if `id` was
    /// already present.
    pub fn insert(&mut self, id: RingId, node: Node) -> Option<Node> {
        match self.position(id) {
            Ok(i) => Some(self.arena.replace(i, node)),
            Err(i) => {
                self.keys.insert(i, id);
                self.arena.insert(i, node);
                None
            }
        }
    }

    /// Removes and returns the node with `id`, if present.
    pub fn remove(&mut self, id: &RingId) -> Option<Node> {
        match self.position(*id) {
            Ok(i) => {
                self.keys.remove(i);
                Some(self.arena.remove(i))
            }
            Err(_) => None,
        }
    }

    /// Peer ids in ring order.
    pub fn keys(&self) -> std::slice::Iter<'_, RingId> {
        self.keys.iter()
    }

    /// Nodes in ring order.
    pub fn values(&self) -> std::slice::Iter<'_, Node> {
        self.arena.iter()
    }

    /// Mutable nodes in ring order.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, Node> {
        self.arena.iter_mut()
    }

    /// `(id, node)` pairs in ring order.
    pub fn iter(&self) -> impl Iterator<Item = (&RingId, &Node)> {
        self.keys.iter().zip(self.arena.iter())
    }

    /// The id at ring-order position `idx` (O(1); random-peer draws).
    pub fn key_at(&self, idx: usize) -> Option<RingId> {
        self.keys.get(idx).copied()
    }

    /// Mutable access to the node at ring-order position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn node_at_mut(&mut self, idx: usize) -> &mut Node {
        self.arena.slot_mut(idx)
    }

    /// Ring-order position of the first peer with id `>= t`, wrapping to 0
    /// past the top of the ring — the position of `t`'s true owner.
    ///
    /// # Panics
    /// Panics if the index is empty.
    pub fn owner_position(&self, t: RingId) -> usize {
        assert!(!self.keys.is_empty(), "owner_position on empty index");
        let pos = self.keys.partition_point(|&k| k < t);
        if pos == self.keys.len() {
            0
        } else {
            pos
        }
    }

    /// The first peer id strictly greater than `t`, if any (no wrap).
    pub fn first_after(&self, t: RingId) -> Option<RingId> {
        let pos = self.keys.partition_point(|&k| k <= t);
        self.keys.get(pos).copied()
    }

    /// The smallest peer id, if any.
    pub fn first(&self) -> Option<RingId> {
        self.keys.first().copied()
    }
}

impl<'a> IntoIterator for &'a NodeIndex {
    type Item = (&'a RingId, &'a Node);
    type IntoIter = std::iter::Zip<std::slice::Iter<'a, RingId>, std::slice::Iter<'a, Node>>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().zip(self.arena.iter())
    }
}

impl std::ops::Index<&RingId> for NodeIndex {
    type Output = Node;

    fn index(&self, id: &RingId) -> &Node {
        self.get(id).expect("no node with this id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(ids: &[u64]) -> NodeIndex {
        let mut n = NodeIndex::new();
        for &i in ids {
            n.insert(RingId(i), Node::new(RingId(i)));
        }
        n
    }

    #[test]
    fn insert_keeps_ring_order() {
        let n = idx(&[50, 10, 90, 30]);
        let keys: Vec<u64> = n.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![10, 30, 50, 90]);
        assert_eq!(n.len(), 4);
        assert!(n.contains_key(&RingId(30)));
        assert!(!n.contains_key(&RingId(31)));
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut n = idx(&[10]);
        let mut replacement = Node::new(RingId(10));
        replacement.predecessor = Some(RingId(5));
        let old = n.insert(RingId(10), replacement).expect("was present");
        assert_eq!(old.predecessor, None);
        assert_eq!(n.len(), 1);
        assert_eq!(n[&RingId(10)].predecessor, Some(RingId(5)));
    }

    #[test]
    fn remove_returns_node() {
        let mut n = idx(&[10, 20, 30]);
        assert!(n.remove(&RingId(15)).is_none());
        let gone = n.remove(&RingId(20)).expect("present");
        assert_eq!(gone.id, RingId(20));
        assert_eq!(n.len(), 2);
        assert!(!n.contains_key(&RingId(20)));
    }

    #[test]
    fn positional_and_successor_queries() {
        let n = idx(&[10, 20, 30]);
        assert_eq!(n.key_at(0), Some(RingId(10)));
        assert_eq!(n.key_at(2), Some(RingId(30)));
        assert_eq!(n.key_at(3), None);
        assert_eq!(n.owner_position(RingId(20)), 1); // at-or-after, inclusive
        assert_eq!(n.owner_position(RingId(21)), 2);
        assert_eq!(n.owner_position(RingId(31)), 0); // wraps
        assert_eq!(n.first_after(RingId(20)), Some(RingId(30)));
        assert_eq!(n.first_after(RingId(30)), None); // strict, no wrap
        assert_eq!(n.first(), Some(RingId(10)));
    }

    #[test]
    fn from_sorted_ids_matches_incremental_inserts() {
        let ids: Vec<RingId> = [10u64, 20, 30, 90].iter().map(|&i| RingId(i)).collect();
        let bulk = NodeIndex::from_sorted_ids(&ids);
        let incremental = idx(&[90, 20, 10, 30]);
        assert_eq!(bulk.len(), incremental.len());
        for (&k, node) in &bulk {
            assert_eq!(node.id, k);
            assert!(incremental.contains_key(&k));
        }
        assert!(bulk.check_columns().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn from_sorted_ids_rejects_unsorted() {
        let _ = NodeIndex::from_sorted_ids(&[RingId(20), RingId(10)]);
    }

    #[test]
    fn iteration_yields_pairs_in_order() {
        let n = idx(&[30, 10, 20]);
        let pairs: Vec<u64> = (&n)
            .into_iter()
            .map(|(&k, node)| {
                assert_eq!(k, node.id);
                k.0
            })
            .collect();
        assert_eq!(pairs, vec![10, 20, 30]);
    }
}
