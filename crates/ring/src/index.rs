//! Sorted-vec node index: the network's alive-peer map.
//!
//! Replaces a `BTreeMap<RingId, Node>` on the per-hop lookup path with
//! parallel columns kept sorted by id. Point lookups become a single
//! `partition_point` binary search over a dense `Vec<RingId>` (one cache
//! line per probe instead of a pointer chase per tree level), ring-order
//! iteration is a plain walk, and positional access (`key_at`) makes
//! random-peer draws O(1) instead of the `O(n)` `keys().nth(..)` walk a
//! `BTreeMap` forces.
//!
//! Ring position `i` holds id `keys[i]` and its record lives in arena slot
//! `order[i]` — the permutation column decouples ring order from record
//! placement, so a membership change splices the two 12-byte-per-position
//! columns and recycles one slot, never memmoving the ~650-byte records.
//! [`NodeIndex::repair_positions`] then restores perfect routing state
//! around the changed arcs in `O(log P)` per event (amortized over the
//! finger-density argument below) instead of the `O(P · RING_BITS)` full
//! rewire, bit-identical to [`RingArena::wire_perfect`] on the final column.

use crate::arena::{FingerTable, RingArena, SuccessorList};
use crate::id::{RingId, RING_BITS};
use crate::node::{Node, SUCCESSOR_LIST_LEN};

/// Work counters for a locality repair — the evidence behind the
/// "sublinear per-event repair" claim (F12b asserts these grow like
/// `log P`, not `P`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Node records whose routing state was written (full rewires plus
    /// neighborhood stitches).
    pub nodes_rewired: u64,
    /// Individual finger-slot writes (full-table rebuilds count
    /// [`RING_BITS`] each; retargets count one per redirected finger).
    pub finger_writes: u64,
}

impl RepairStats {
    /// Accumulates another repair's counters into this one.
    pub fn absorb(&mut self, other: RepairStats) {
        self.nodes_rewired += other.nodes_rewired;
        self.finger_writes += other.finger_writes;
    }
}

/// Alive peers, keyed by ring id, in ring (ascending id) order.
///
/// The id column (`keys`) is a dense sorted `Vec<RingId>`, the order column
/// maps each ring position to its slot in the [`RingArena`] slab, and the
/// slab owns the records. See [`crate::arena`] for the memory model.
#[derive(Debug, Clone, Default)]
pub struct NodeIndex {
    keys: Vec<RingId>,
    order: Vec<u32>,
    arena: RingArena,
}

impl NodeIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index of fresh (unwired) nodes from a strictly sorted id
    /// column in O(P) — the bulk-construction entry point, skipping the
    /// per-insert binary search and memmove of [`NodeIndex::insert`].
    ///
    /// # Panics
    /// Panics if `ids` is not strictly ascending.
    pub fn from_sorted_ids(ids: &[RingId]) -> Self {
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly sorted");
        let mut arena = RingArena::with_capacity(ids.len());
        for &id in ids {
            arena.push(Node::new(id));
        }
        let order = (0..ids.len() as u32).collect();
        Self { keys: ids.to_vec(), order, arena }
    }

    /// Resets every node's routing state to the perfect steady state in
    /// `O(P · RING_BITS)` (see [`RingArena::wire_perfect`]).
    pub fn rewire_perfect(&mut self) {
        self.arena.wire_perfect(&self.keys, &self.order);
    }

    /// Column-consistency oracle: id, order, and free columns in lockstep,
    /// inline lists shape-valid (see [`RingArena::check_columns`]).
    pub fn check_columns(&self) -> Vec<String> {
        self.arena.check_columns(&self.keys, &self.order)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Position of `id`, if present.
    #[inline]
    fn position(&self, id: RingId) -> Result<usize, usize> {
        let pos = self.keys.partition_point(|&k| k < id);
        if pos < self.keys.len() && self.keys[pos] == id {
            Ok(pos)
        } else {
            Err(pos)
        }
    }

    /// Whether `id` is present.
    pub fn contains_key(&self, id: &RingId) -> bool {
        self.position(*id).is_ok()
    }

    /// The node with `id`, if present.
    #[inline]
    pub fn get(&self, id: &RingId) -> Option<&Node> {
        self.position(*id).ok().map(|i| self.arena.slot(self.order[i] as usize))
    }

    /// Mutable access to the node with `id`, if present.
    #[inline]
    pub fn get_mut(&mut self, id: &RingId) -> Option<&mut Node> {
        match self.position(*id) {
            Ok(i) => Some(self.arena.slot_mut(self.order[i] as usize)),
            Err(_) => None,
        }
    }

    /// Inserts `node` under `id`, returning the displaced node if `id` was
    /// already present.
    pub fn insert(&mut self, id: RingId, node: Node) -> Option<Node> {
        match self.position(id) {
            Ok(i) => Some(self.arena.replace(self.order[i] as usize, node)),
            Err(i) => {
                let slot = self.arena.alloc_slot(node);
                self.keys.insert(i, id);
                self.order.insert(i, slot);
                None
            }
        }
    }

    /// Removes and returns the node with `id`, if present.
    pub fn remove(&mut self, id: &RingId) -> Option<Node> {
        match self.position(*id) {
            Ok(i) => {
                self.keys.remove(i);
                let slot = self.order.remove(i);
                Some(self.arena.free_slot(slot))
            }
            Err(_) => None,
        }
    }

    /// Peer ids in ring order.
    pub fn keys(&self) -> std::slice::Iter<'_, RingId> {
        self.keys.iter()
    }

    /// Nodes in ring order.
    pub fn values(&self) -> impl Iterator<Item = &Node> + '_ {
        self.order.iter().map(|&s| self.arena.slot(s as usize))
    }

    /// `(id, node)` pairs in ring order.
    pub fn iter(&self) -> Iter<'_> {
        self.into_iter()
    }

    /// The id at ring-order position `idx` (O(1); random-peer draws).
    pub fn key_at(&self, idx: usize) -> Option<RingId> {
        self.keys.get(idx).copied()
    }

    /// Mutable access to the node at ring-order position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn node_at_mut(&mut self, idx: usize) -> &mut Node {
        self.arena.slot_mut(self.order[idx] as usize)
    }

    /// Ring-order position of the first peer with id `>= t`, wrapping to 0
    /// past the top of the ring — the position of `t`'s true owner.
    ///
    /// # Panics
    /// Panics if the index is empty.
    pub fn owner_position(&self, t: RingId) -> usize {
        assert!(!self.keys.is_empty(), "owner_position on empty index");
        let pos = self.keys.partition_point(|&k| k < t);
        if pos == self.keys.len() {
            0
        } else {
            pos
        }
    }

    /// The first peer id strictly greater than `t`, if any (no wrap).
    pub fn first_after(&self, t: RingId) -> Option<RingId> {
        let pos = self.keys.partition_point(|&k| k <= t);
        self.keys.get(pos).copied()
    }

    /// The smallest peer id, if any.
    pub fn first(&self) -> Option<RingId> {
        self.keys.first().copied()
    }

    /// Ensures room for `additional` more peers without reallocating any
    /// column mid-mutation (part of the allocation-free churn fence).
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.order.reserve(additional);
        self.arena.reserve(additional);
    }

    /// The id and order columns, read-only (batch merge planning).
    pub(crate) fn columns(&self) -> (&[RingId], &[u32]) {
        (&self.keys, &self.order)
    }

    /// Splits the index into read-only columns plus the mutable slab — the
    /// borrow shape a `ChurnBatch` data-movement pass needs (drain one slot
    /// while resolving others against the frozen columns).
    pub(crate) fn split_view(&mut self) -> (&[RingId], &[u32], &mut RingArena) {
        (&self.keys, &self.order, &mut self.arena)
    }

    /// Stores `node` in a slot without entering it into the columns (batch
    /// join staging: the merged columns arrive later via
    /// [`NodeIndex::splice_columns`]). Returns the slot index.
    pub(crate) fn alloc_detached(&mut self, node: Node) -> u32 {
        self.arena.alloc_slot(node)
    }

    /// Retires `slot` to the free list (batch leave/crash retirement, after
    /// the columns have stopped referencing it), returning its record.
    pub(crate) fn free_slot(&mut self, slot: u32) -> Node {
        self.arena.free_slot(slot)
    }

    /// Swaps in replacement id/order columns, handing the old ones back in
    /// their place (the caller keeps them as scratch, so steady-state churn
    /// ping-pongs two column pairs and never reallocates).
    ///
    /// # Panics
    /// Panics if the replacement columns disagree in length.
    pub(crate) fn splice_columns(&mut self, keys: &mut Vec<RingId>, order: &mut Vec<u32>) {
        assert_eq!(keys.len(), order.len(), "replacement columns out of lockstep");
        std::mem::swap(&mut self.keys, keys);
        std::mem::swap(&mut self.order, order);
    }

    /// Restores perfect routing state after a membership change that left
    /// the columns final but the records stale, touching only the changed
    /// arcs. `affected` holds the final-column ring positions whose
    /// ownership arc changed: each join's own position, and the heir
    /// (successor) position of each departed peer. Positions must be in
    /// bounds; duplicates are harmless (every write is idempotent against
    /// the final column).
    ///
    /// Per affected position `i` this (1) fully rebuilds position `i`'s
    /// record, (2) stitches the neighborhood — successor's predecessor,
    /// the [`SUCCESSOR_LIST_LEN`] predecessors' successor lists — and
    /// (3) retargets every finger whose start falls in the changed arc
    /// `(pred, keys[i]]` to `keys[i]`, found per level by binary search
    /// (the level-`f` starts landing there are the keys in
    /// `(pred − 2^f, keys[i] − 2^f]`). Affected arcs are disjoint
    /// `(pred, self]` ownership arcs of the final ring and every other
    /// owner is unchanged, so the result is bit-identical to
    /// [`RingArena::wire_perfect`] on the final columns — the cross-path
    /// property `churn_equivalence.rs` pins.
    ///
    /// Rings small enough that one event shifts the successor-list length
    /// regime (`P ≤ SUCCESSOR_LIST_LEN + 1`) take the full rewire instead —
    /// correct and just as cheap at that size.
    pub(crate) fn repair_positions(&mut self, affected: &[usize]) -> RepairStats {
        let p = self.keys.len();
        let mut stats = RepairStats::default();
        if p == 0 {
            return stats;
        }
        if p <= SUCCESSOR_LIST_LEN + 1 {
            self.rewire_perfect();
            stats.nodes_rewired = p as u64;
            stats.finger_writes = (p as u64) * u64::from(RING_BITS);
            return stats;
        }
        let Self { keys, order, arena } = self;
        for &i in affected {
            rewire_position(keys, order, arena, i);
            stats.nodes_rewired += 1;
            stats.finger_writes += u64::from(RING_BITS);
            let succ_pos = (i + 1) % p;
            arena.slot_mut(order[succ_pos] as usize).predecessor = Some(keys[i]);
            stats.nodes_rewired += 1;
            // p > SUCCESSOR_LIST_LEN + 1, so these positions are distinct
            // from i and the writes below never clobber the full rewire.
            for k in 1..=SUCCESSOR_LIST_LEN {
                rebuild_successors(keys, order, arena, (i + p - k) % p);
                stats.nodes_rewired += 1;
            }
            stats.finger_writes += retarget_fingers(keys, order, arena, i);
        }
        stats
    }
}

/// Rebuilds the full routing record at ring position `i` from the final
/// columns: predecessor and successors off ring order, each finger by owner
/// binary search (bit-identical to the `wire_perfect` monotone sweep — the
/// equivalence `arena.rs` pins in `wire_perfect_matches_binary_search_owners`).
fn rewire_position(keys: &[RingId], order: &[u32], arena: &mut RingArena, i: usize) {
    let p = keys.len();
    let id = keys[i];
    let mut fingers = FingerTable::new();
    for f in 0..RING_BITS {
        let start = id.finger_start(f);
        let pos = keys.partition_point(|&k| k < start);
        fingers.set(f as usize, Some(keys[if pos == p { 0 } else { pos }]));
    }
    let mut succs = SuccessorList::new();
    for k in 1..=SUCCESSOR_LIST_LEN.min(p - 1).max(1) {
        succs.push(keys[(i + k) % p]);
    }
    let node = arena.slot_mut(order[i] as usize);
    node.predecessor = Some(keys[(i + p - 1) % p]);
    node.successors = succs;
    node.fingers = fingers;
}

/// Rebuilds only the successor list at ring position `pos` (the stitch for
/// the [`SUCCESSOR_LIST_LEN`] positions preceding a changed arc).
fn rebuild_successors(keys: &[RingId], order: &[u32], arena: &mut RingArena, pos: usize) {
    let p = keys.len();
    let mut succs = SuccessorList::new();
    for k in 1..=SUCCESSOR_LIST_LEN.min(p - 1).max(1) {
        succs.push(keys[(pos + k) % p]);
    }
    arena.slot_mut(order[pos] as usize).successors = succs;
}

/// Points every finger whose start falls in the changed ownership arc
/// `(pred, keys[i]]` at its new owner `keys[i]`. For level `f` the starts
/// landing in that arc belong to exactly the keys in the (wrapped) arc
/// `(pred − 2^f, keys[i] − 2^f]`, found with two binary searches. Covers
/// both directions of change: fingers stolen from the old owner by a join,
/// and fingers inherited by an heir from a departed peer. Returns the
/// number of finger writes.
fn retarget_fingers(keys: &[RingId], order: &[u32], arena: &mut RingArena, i: usize) -> u64 {
    let p = keys.len();
    let id = keys[i];
    let pred = keys[(i + p - 1) % p];
    debug_assert_ne!(pred, id, "retarget on a degenerate arc");
    let mut writes = 0u64;
    for f in 0..RING_BITS {
        let step = 1u64 << f;
        let lo = RingId(pred.0.wrapping_sub(step));
        let hi = RingId(id.0.wrapping_sub(step));
        let a = keys.partition_point(|&k| k <= lo);
        let b = keys.partition_point(|&k| k <= hi);
        let mut set = |j: usize| {
            arena.slot_mut(order[j] as usize).fingers.set(f as usize, Some(id));
            writes += 1;
        };
        if lo < hi {
            (a..b).for_each(&mut set);
        } else {
            (a..p).for_each(&mut set);
            (0..b).for_each(&mut set);
        }
    }
    writes
}

/// Ring-order `(id, node)` iterator over a [`NodeIndex`] — walks the id and
/// order columns in lockstep, resolving each position's slot in the arena.
pub struct Iter<'a> {
    keys: std::slice::Iter<'a, RingId>,
    order: std::slice::Iter<'a, u32>,
    arena: &'a RingArena,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a RingId, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        let key = self.keys.next()?;
        let &slot = self.order.next()?;
        Some((key, self.arena.slot(slot as usize)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.keys.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a NodeIndex {
    type Item = (&'a RingId, &'a Node);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        Iter { keys: self.keys.iter(), order: self.order.iter(), arena: &self.arena }
    }
}

impl std::ops::Index<&RingId> for NodeIndex {
    type Output = Node;

    fn index(&self, id: &RingId) -> &Node {
        self.get(id).expect("no node with this id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(ids: &[u64]) -> NodeIndex {
        let mut n = NodeIndex::new();
        for &i in ids {
            n.insert(RingId(i), Node::new(RingId(i)));
        }
        n
    }

    #[test]
    fn insert_keeps_ring_order() {
        let n = idx(&[50, 10, 90, 30]);
        let keys: Vec<u64> = n.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![10, 30, 50, 90]);
        assert_eq!(n.len(), 4);
        assert!(n.contains_key(&RingId(30)));
        assert!(!n.contains_key(&RingId(31)));
        assert!(n.check_columns().is_empty());
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut n = idx(&[10]);
        let mut replacement = Node::new(RingId(10));
        replacement.predecessor = Some(RingId(5));
        let old = n.insert(RingId(10), replacement).expect("was present");
        assert_eq!(old.predecessor, None);
        assert_eq!(n.len(), 1);
        assert_eq!(n[&RingId(10)].predecessor, Some(RingId(5)));
    }

    #[test]
    fn remove_returns_node_and_recycles_slot() {
        let mut n = idx(&[10, 20, 30]);
        assert!(n.remove(&RingId(15)).is_none());
        let gone = n.remove(&RingId(20)).expect("present");
        assert_eq!(gone.id, RingId(20));
        assert_eq!(n.len(), 2);
        assert!(!n.contains_key(&RingId(20)));
        assert!(n.check_columns().is_empty());
        // Re-inserting recycles the freed slot: columns stay consistent and
        // ring order is preserved even though slot order is now permuted.
        n.insert(RingId(25), Node::new(RingId(25)));
        let keys: Vec<u64> = n.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![10, 25, 30]);
        assert!(n.check_columns().is_empty());
    }

    #[test]
    fn positional_and_successor_queries() {
        let n = idx(&[10, 20, 30]);
        assert_eq!(n.key_at(0), Some(RingId(10)));
        assert_eq!(n.key_at(2), Some(RingId(30)));
        assert_eq!(n.key_at(3), None);
        assert_eq!(n.owner_position(RingId(20)), 1); // at-or-after, inclusive
        assert_eq!(n.owner_position(RingId(21)), 2);
        assert_eq!(n.owner_position(RingId(31)), 0); // wraps
        assert_eq!(n.first_after(RingId(20)), Some(RingId(30)));
        assert_eq!(n.first_after(RingId(30)), None); // strict, no wrap
        assert_eq!(n.first(), Some(RingId(10)));
    }

    #[test]
    fn from_sorted_ids_matches_incremental_inserts() {
        let ids: Vec<RingId> = [10u64, 20, 30, 90].iter().map(|&i| RingId(i)).collect();
        let bulk = NodeIndex::from_sorted_ids(&ids);
        let incremental = idx(&[90, 20, 10, 30]);
        assert_eq!(bulk.len(), incremental.len());
        for (&k, node) in &bulk {
            assert_eq!(node.id, k);
            assert!(incremental.contains_key(&k));
        }
        assert!(bulk.check_columns().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn from_sorted_ids_rejects_unsorted() {
        let _ = NodeIndex::from_sorted_ids(&[RingId(20), RingId(10)]);
    }

    #[test]
    fn iteration_yields_pairs_in_order_despite_permuted_slots() {
        let mut n = idx(&[30, 10, 20]);
        // Churn the slots so ring order and slot order disagree.
        n.remove(&RingId(10)).expect("present");
        n.insert(RingId(15), Node::new(RingId(15)));
        let pairs: Vec<u64> = (&n)
            .into_iter()
            .map(|(&k, node)| {
                assert_eq!(k, node.id);
                k.0
            })
            .collect();
        assert_eq!(pairs, vec![15, 20, 30]);
        let via_values: Vec<u64> = n.values().map(|node| node.id.0).collect();
        assert_eq!(via_values, pairs);
    }

    #[test]
    fn repair_positions_matches_wire_perfect_after_a_splice() {
        // Direct column-surgery exercise of the repair engine, independent
        // of the ChurnBatch driver: insert one id mid-ring, repair only its
        // position, and demand bit-identical state to a full rewire.
        let ids: Vec<RingId> =
            (1..=32u64).map(|i| RingId(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        let mut n = NodeIndex::from_sorted_ids(&sorted);
        n.rewire_perfect();
        let new_id = RingId(sorted[10].0 + 1);
        n.insert(new_id, Node::new(new_id));
        let pos = n.owner_position(new_id);
        assert_eq!(n.key_at(pos), Some(new_id));
        let stats = n.repair_positions(&[pos]);
        assert!(stats.nodes_rewired >= 1 && stats.finger_writes >= u64::from(RING_BITS));

        let mut full = n.clone();
        full.rewire_perfect();
        for (&k, node) in &n {
            let reference = &full[&k];
            assert_eq!(node.predecessor, reference.predecessor, "pred of {k}");
            assert_eq!(node.successors, reference.successors, "succs of {k}");
            assert_eq!(node.fingers, reference.fingers, "fingers of {k}");
        }
        assert!(n.check_columns().is_empty());
    }
}
