//! # dde-ring
//!
//! A Chord-style ring-overlay network simulator — the P2P substrate for the
//! ring-DDE reproduction of *"Effective Data Density Estimation in
//! Ring-Based P2P Networks"* (ICDE 2012).
//!
//! The simulator is **structural**, not timed: peers, their routing state
//! (predecessor, successor lists, finger tables), and their local data stores
//! are real; message passing is simulated by direct state access with exact
//! **message and hop accounting** through [`messages::MessageStats`]. This is
//! the right fidelity for the paper's claims, which are about *estimation
//! accuracy per message*, not wall-clock latency (latency is reported in
//! routing hops, as the paper family does).
//!
//! What is deliberately faithful:
//!
//! * routing uses **only each node's own (possibly stale) state** — never the
//!   simulator's global view — so churn degrades routing exactly as it would
//!   in a deployment;
//! * joins, graceful leaves (with data handoff), and crash failures (with
//!   data loss) mutate routing state the way Chord's protocol does, and
//!   periodic [`Network::stabilize_round`] repairs it the way Chord's
//!   stabilization does;
//! * every remote interaction (lookup hop, probe, stabilization ping, gossip
//!   exchange) is charged to the message counters with payload sizes.
//!
//! Modules:
//!
//! * [`id`] — 2⁶⁴ identifier-ring arithmetic (wraparound arcs, distances);
//! * [`faults`] — seeded, deterministic fault injection (message loss,
//!   reply drops, delays, crashes, sick-peer windows);
//! * [`placement`] — mapping data values onto the ring (hashed vs
//!   order-preserving range placement);
//! * [`store`] — per-peer sorted data stores with rank queries and summaries;
//! * [`node`] — peer routing state;
//! * [`messages`] — message kinds and cost accounting;
//! * [`network`] — the overlay itself: build, route, probe;
//! * [`membership`] — join / leave / fail / stabilize;
//! * [`churn`] — Poisson churn process driver plus the amortized
//!   arena-churn path (single-event `churn_*` drivers and batched
//!   [`ChurnBatch`] repair sweeps for mega-scale networks).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arena;
pub mod batch;
pub mod churn;
pub mod faults;
pub mod id;
pub mod index;
pub mod membership;
pub mod messages;
pub mod network;
pub mod node;
pub mod placement;
pub mod query;
pub mod replication;
pub mod store;

pub use arena::{FingerTable, RingArena, SuccessorList};
pub use batch::BatchRouter;
pub use churn::{ChurnApplied, ChurnBatch, ChurnConfig, ChurnEvent, ChurnProcess};
pub use faults::{DelayDist, FaultDecision, FaultPlan};
pub use id::RingId;
pub use index::{NodeIndex, RepairStats};
pub use messages::{MessageKind, MessageStats};
pub use network::{LookupError, LookupResult, Network, ProbeReply};
pub use node::{Node, RouteBuf};
pub use placement::{DomainMap, Placement};
pub use query::RangeQueryResult;
pub use store::LocalStore;
