//! Membership changes and ring maintenance: join, graceful leave, crash
//! failure, and Chord-style stabilization.
//!
//! All routines operate through per-node state and charge messages; none
//! consult ground truth except where a real system would have out-of-band
//! knowledge (a joining node knowing one bootstrap peer).

use crate::arena::SuccessorList;
use crate::id::{RingId, RING_BITS};
use crate::messages::MessageKind;
use crate::network::{LookupError, Network};
use crate::node::{Node, SUCCESSOR_LIST_LEN};

/// Errors from membership operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipError {
    /// The id is already taken by an alive peer.
    IdTaken,
    /// The referenced peer does not exist (or already left).
    UnknownPeer,
    /// The underlying lookup failed.
    Lookup(LookupError),
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::IdTaken => write!(f, "ring id already taken"),
            MembershipError::UnknownPeer => write!(f, "peer unknown or departed"),
            MembershipError::Lookup(e) => write!(f, "lookup failed: {e}"),
        }
    }
}

impl std::error::Error for MembershipError {}

impl From<LookupError> for MembershipError {
    fn from(e: LookupError) -> Self {
        MembershipError::Lookup(e)
    }
}

impl Network {
    /// Joins a new peer with id `new_id`, bootstrapping through `bootstrap`.
    ///
    /// The new peer looks up its successor, adopts routing state from it,
    /// takes over the data in its arc (charged as handoff bytes), and
    /// notifies its neighbors. Fingers are seeded from the successor's table
    /// (Chord's cheap initialization) and corrected later by stabilization.
    pub fn join(&mut self, new_id: RingId, bootstrap: RingId) -> Result<(), MembershipError> {
        if self.is_alive(new_id) {
            return Err(MembershipError::IdTaken);
        }
        if !self.is_alive(bootstrap) {
            return Err(MembershipError::UnknownPeer);
        }
        self.bump_epoch();
        // Find the successor of the new id.
        let succ_id = self.lookup(bootstrap, new_id)?.owner;
        let succ = self
            .nodes
            .get(&succ_id)
            .expect("invariant: lookup returned this owner, so it is in the alive map");
        let old_pred = succ.predecessor;
        // Seed routing state from the successor (1 state-transfer message).
        let seeded_fingers = succ.fingers;
        let mut succ_list = SuccessorList::new();
        succ_list.push(succ_id);
        for s in succ.successors.iter().copied() {
            if succ_list.len() == SUCCESSOR_LIST_LEN {
                break;
            }
            // A bootstrap-singleton successor lists *itself* (the only legal
            // self-entry, from the 1-peer wiring); copying it — or copying
            // `succ_id` twice — would seed a corrupt list.
            if s == new_id || s == succ_id || succ_list.contains(&s) {
                continue;
            }
            succ_list.push(s);
        }
        self.stats.record(MessageKind::Stabilize, 8 * (1 + succ_list.len()));

        let mut node = Node::new(new_id);
        node.successors = succ_list;
        node.fingers = seeded_fingers;
        node.predecessor = old_pred;

        // Take over data: items whose ring position falls in (old_pred, new_id].
        let pred_for_arc = old_pred.unwrap_or(succ_id);
        let placement = self.placement;
        let succ_node = self
            .nodes
            .get_mut(&succ_id)
            .expect("invariant: lookup returned this owner, so it is in the alive map");
        let moved = succ_node.store.drain_by(|x| placement.place(x).in_arc(pred_for_arc, new_id));
        // A bootstrap singleton's self-successor sits at arc distance 0, so
        // offers can never displace it and stabilization would freeze on a
        // corrupt head; purge it now that the ring has a second peer.
        succ_node.successors.retain(|&s| s != succ_id);
        succ_node.predecessor = Some(new_id);
        self.stats.record(MessageKind::Handoff, 8 * moved.len());
        node.store.extend_values(moved);

        // Tell the old predecessor about its new successor (notify).
        if let Some(p) = old_pred {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.offer_successor(new_id);
                self.stats.record(MessageKind::Stabilize, 8);
            }
        }
        self.nodes.insert(new_id, node);
        self.finger_cursor.insert(new_id, 0);
        Ok(())
    }

    /// Gracefully removes peer `id`: its data is handed to its successor and
    /// its neighbors are relinked.
    pub fn leave(&mut self, id: RingId) -> Result<(), MembershipError> {
        let node = self.nodes.get(&id).ok_or(MembershipError::UnknownPeer)?;
        let pred = node.predecessor;
        let (succs, succ_len) = node.successors_snapshot();
        self.bump_epoch();
        // First alive successor (the leaving node pings down its list).
        let mut heir = None;
        for &s in &succs[..succ_len] {
            if s != id && self.is_alive(s) {
                heir = Some(s);
                break;
            }
            self.observe_timeout(MessageKind::LookupTimeout);
        }
        let node =
            self.nodes.get_mut(&id).expect("invariant: presence was checked at the top of this fn");
        let data = node.store.drain_all();
        self.nodes.remove(&id);
        self.finger_cursor.remove(&id);

        if let Some(h) = heir {
            self.stats.record(MessageKind::Handoff, 8 * data.len());
            let hn = self
                .nodes
                .get_mut(&h)
                .expect("invariant: heir was selected from the alive set above");
            hn.store.extend_values(data);
            // The heir now holds the data as primary; a replica of the
            // leaver would later be promoted on top of it (duplicates).
            hn.replicas.remove(&id);
            if hn.predecessor == Some(id) {
                hn.predecessor = pred.filter(|&p| p != id);
            }
            self.stats.record(MessageKind::Stabilize, 8);
            if let Some(p) = pred.filter(|&p| p != id) {
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.forget(id);
                    pn.offer_successor(h);
                    self.stats.record(MessageKind::Stabilize, 8);
                }
            }
        }
        // No heir: the data is lost (equivalent to a crash), which the
        // density estimate will see as missing mass — realistic.
        Ok(())
    }

    /// Crash-fails peer `id`: it vanishes, its data is lost, and nobody is
    /// told (neighbors discover via timeouts and stabilization).
    pub fn fail(&mut self, id: RingId) -> Result<(), MembershipError> {
        self.nodes.remove(&id).ok_or(MembershipError::UnknownPeer)?;
        self.bump_epoch();
        self.finger_cursor.remove(&id);
        Ok(())
    }

    /// Runs one stabilization round on every alive peer (in ring order):
    /// Chord's `stabilize` + `notify` + successor-list refresh +
    /// `fix_fingers` for a few fingers per round (round-robin).
    ///
    /// Returns the number of routing-state corrections made.
    pub fn stabilize_round(&mut self) -> usize {
        let ids: Vec<RingId> = self.nodes.keys().copied().collect();
        let mut corrections = 0;
        for id in ids {
            if !self.is_alive(id) {
                continue;
            }
            corrections += self.stabilize_node(id);
        }
        corrections
    }

    /// Stabilizes one node; returns corrections made.
    pub fn stabilize_node(&mut self, id: RingId) -> usize {
        let mut corrections = 0;
        let Some(node) = self.nodes.get(&id) else { return 0 };
        let (snap, snap_len) = node.successors_snapshot();

        // 1. Drop dead successors from the front (timeout per dead one).
        let mut alive_succ = None;
        for &s in &snap[..snap_len] {
            if self.is_alive(s) {
                alive_succ = Some(s);
                break;
            }
            self.observe_timeout(MessageKind::LookupTimeout);
            corrections += 1;
        }
        let succs: SuccessorList =
            snap[..snap_len].iter().copied().filter(|&s| self.is_alive(s)).collect();
        let mut succ = match alive_succ {
            Some(s) => s,
            None => {
                // Whole list dead: fall back to any alive finger, else the
                // alive predecessor (forming a temporary back-edge the normal
                // stabilize/notify machinery then unwinds into ring order).
                // Either way continue the full round below — an isolated node
                // must still drop its dead predecessor and run notify, or it
                // freezes the whole neighborhood in a broken fixed point.
                self.nodes
                    .get_mut(&id)
                    .expect("invariant: id was taken from the alive map in this same pass")
                    .successors = succs;
                let node = self
                    .nodes
                    .get(&id)
                    .expect("invariant: id was taken from the alive map in this same pass");
                let fallback = node
                    .fingers
                    .present()
                    .chain(node.predecessor)
                    .find(|&f| f != id && self.is_alive(f));
                match fallback {
                    Some(f) => {
                        self.nodes
                            .get_mut(&id)
                            .expect("invariant: id was taken from the alive map in this same pass")
                            .offer_successor(f);
                        self.stats.record(MessageKind::Stabilize, 8);
                        corrections += 1;
                        f
                    }
                    None => {
                        // Fully isolated: nothing outgoing is alive. Drop a
                        // dead predecessor so inbound notifies can re-adopt
                        // us, then wait to be found.
                        corrections += self.drop_dead_predecessor(id);
                        return corrections;
                    }
                }
            }
        };

        // 2. stabilize: adopt successor's predecessor if it sits between us.
        self.stats.record(MessageKind::Stabilize, 8);
        self.stats.record(MessageKind::Stabilize, 8);
        let sp = self
            .nodes
            .get(&succ)
            .expect("invariant: id was taken from the alive map in this same pass")
            .predecessor;
        if let Some(x) = sp {
            if x != id && x.in_open_arc(id, succ) && self.is_alive(x) {
                succ = x;
                corrections += 1;
            }
        }

        // 3. Refresh the successor list from the (possibly new) successor.
        let (succ_list, succ_list_len) = self
            .nodes
            .get(&succ)
            .expect("invariant: id was taken from the alive map in this same pass")
            .successors_snapshot();
        self.stats.record(MessageKind::Stabilize, 8 * (1 + succ_list_len));
        {
            let node = self
                .nodes
                .get_mut(&id)
                .expect("invariant: id was taken from the alive map in this same pass");
            let before = node.successors_snapshot();
            node.successors = succs;
            node.offer_successor(succ);
            for &s in &succ_list[..succ_list_len] {
                if s != id {
                    node.offer_successor(s);
                }
            }
            if node.successors_snapshot() != before {
                corrections += 1;
            }
        }
        // Re-drop anything dead that the transferred list brought in.
        {
            let node = self
                .nodes
                .get(&id)
                .expect("invariant: id was taken from the alive map in this same pass");
            let dead: Vec<RingId> =
                node.successors.iter().copied().filter(|&s| !self.is_alive(s)).collect();
            if !dead.is_empty() {
                let node = self
                    .nodes
                    .get_mut(&id)
                    .expect("invariant: id was taken from the alive map in this same pass");
                for d in dead {
                    node.forget(d);
                    corrections += 1;
                }
            }
        }

        // 3b. Successor re-resolution: ask a remote peer to look up
        // successor(id + 1) and offer the result. This is `fix_fingers`
        // applied to finger 0 every round, initiated *remotely* — from `id`
        // itself the query would trivially terminate at its own (possibly
        // wrong) successor pointer. Without this, a node whose whole
        // successor list died during a storm walks back toward its true
        // successor one peer per round (O(P) rounds); with it, healing takes
        // O(log P).
        //
        // The helper is a random peer from the node's long-term peer cache
        // (see `random_maintenance_peer`), NOT one of its live pointers: a
        // storm can split the overlay into disjoint cycles that are each
        // internally self-consistent (the "loopy ring" state), where every
        // finger and successor of every member points inside its own cycle.
        // Pointer-local repair can never detect that; a helper outside the
        // querier's cycle resolves successor(id+1) against the *other* cycle
        // and the offer below merges them — the Chord TR's loopy-ring cure.
        let helper = self.random_maintenance_peer(id);
        if let Some(helper) = helper {
            self.stats.record(MessageKind::Stabilize, 8);
            if let Ok(res) = self.lookup(helper, id.finger_start(0)) {
                if res.owner != id {
                    let node = self
                        .nodes
                        .get_mut(&id)
                        .expect("invariant: id was taken from the alive map in this same pass");
                    let before = node.successor();
                    node.offer_successor(res.owner);
                    if node.successor() != before {
                        corrections += 1;
                    }
                }
            }
        }

        // 4. notify: tell the successor about us.
        let succ_now = self
            .nodes
            .get(&id)
            .expect("invariant: id was taken from the alive map in this same pass")
            .successor();
        if let Some(s) = succ_now {
            if let Some(sn) = self.nodes.get_mut(&s) {
                let before = sn.predecessor;
                sn.offer_predecessor(id);
                self.stats.record(MessageKind::Stabilize, 8);
                if sn.predecessor != before {
                    corrections += 1;
                }
            }
        }

        // 5. Drop a dead believed-predecessor so ownership can re-form.
        corrections += self.drop_dead_predecessor(id);

        // 6. Data repair: hand off items that fall outside the believed arc
        // to their owners (joins during broken routing state can leave items
        // misplaced; this is the DHT-standard re-homing pass).
        corrections += self.repair_data(id);

        // 6b. Replication maintenance: promote dead primaries' replicas,
        // renew replica leases on our successors.
        corrections += self.replicate_node(id);

        // 7. fix_fingers: refresh the next few fingers by real lookups.
        let per_round = self.fingers_per_round;
        for _ in 0..per_round {
            let cursor = {
                let c = self.finger_cursor.entry(id).or_insert(0);
                let cur = *c;
                *c = (*c + 1) % RING_BITS;
                cur
            };
            let start = id.finger_start(cursor);
            match self.lookup(id, start) {
                Ok(res) => {
                    let node = self
                        .nodes
                        .get_mut(&id)
                        .expect("invariant: id was taken from the alive map in this same pass");
                    if node.fingers.get(cursor as usize) != Some(res.owner) {
                        node.fingers.set(cursor as usize, Some(res.owner));
                        corrections += 1;
                    }
                }
                Err(_) => {
                    let node = self
                        .nodes
                        .get_mut(&id)
                        .expect("invariant: id was taken from the alive map in this same pass");
                    node.fingers.set(cursor as usize, None);
                }
            }
        }
        corrections
    }

    /// Clears `id`'s predecessor if it is dead (one timeout charge); returns
    /// the number of corrections (0 or 1).
    fn drop_dead_predecessor(&mut self, id: RingId) -> usize {
        let Some(node) = self.nodes.get(&id) else { return 0 };
        if let Some(p) = node.predecessor {
            if !self.is_alive(p) {
                self.observe_timeout(MessageKind::LookupTimeout);
                self.nodes
                    .get_mut(&id)
                    .expect("invariant: id was taken from the alive map in this same pass")
                    .predecessor = None;
                return 1;
            }
        }
        0
    }

    /// Re-homes locally stored items that fall outside this node's believed
    /// arc: batches them by destination (one lookup per destination arc) and
    /// hands them over. Items whose owner cannot be resolved stay local and
    /// retry next round. Returns the number of items moved.
    fn repair_data(&mut self, id: RingId) -> usize {
        let Some(node) = self.nodes.get(&id) else { return 0 };
        let Some(pred) = node.predecessor else { return 0 };
        if node.store.is_empty() {
            return 0;
        }
        let placement = self.placement;
        let misplaced = {
            let node = self
                .nodes
                .get_mut(&id)
                .expect("invariant: id was taken from the alive map in this same pass");
            node.store.drain_by(|x| !placement.place(x).in_arc(pred, id))
        };
        if misplaced.is_empty() {
            return 0;
        }
        // Items are leaving this store (and may land elsewhere or come back):
        // the global multiset is in flux either way.
        self.bump_epoch();
        let mut moved = 0;
        let mut keep = Vec::new();
        let mut remaining: Vec<f64> = misplaced;
        // Batch by destination: resolve the first item's owner, deliver every
        // item that falls into that owner's believed arc, repeat.
        while let Some(&first) = remaining.first() {
            let pos = placement.place(first);
            match self.lookup(id, pos) {
                Ok(res) if res.owner != id => {
                    let owner = self
                        .nodes
                        .get(&res.owner)
                        .expect("invariant: id was taken from the alive map in this same pass");
                    let (olo, ohi) = (owner.predecessor.unwrap_or(res.owner), res.owner);
                    let mut batch = Vec::new();
                    remaining.retain(|&x| {
                        if placement.place(x).in_arc(olo, ohi) {
                            batch.push(x);
                            false
                        } else {
                            true
                        }
                    });
                    if batch.is_empty() {
                        // Owner's believed arc excludes even the probe item
                        // (inconsistent state): keep it for the next round.
                        keep.push(remaining.remove(0));
                        continue;
                    }
                    self.stats.record(MessageKind::Handoff, 8 * batch.len());
                    moved += batch.len();
                    self.nodes
                        .get_mut(&res.owner)
                        .expect("invariant: id was taken from the alive map in this same pass")
                        .store
                        .extend_values(batch);
                }
                _ => {
                    // Either we still own it per routing, or routing failed:
                    // keep it and retry next round.
                    keep.push(remaining.remove(0));
                }
            }
        }
        if !keep.is_empty() {
            self.nodes
                .get_mut(&id)
                .expect("invariant: id was taken from the alive map in this same pass")
                .store
                .extend_values(keep);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn net_of(ids: &[u64]) -> Network {
        Network::build(ids.iter().map(|&i| RingId(i)).collect(), Placement::range(0.0, 100.0))
    }

    #[test]
    fn join_takes_over_arc_data() {
        let mut net = net_of(&[u64::MAX / 4, u64::MAX / 2, u64::MAX]);
        // Range placement on [0, 100]: values 0..25 → first node, etc.
        net.bulk_load(&[10.0, 30.0, 40.0, 60.0, 90.0]);
        assert_eq!(net.total_items(), 5);
        // Join a node at 3/8 of the ring: it owns (1/4, 3/8] ≈ values (25, 37.5].
        let new_id = RingId(u64::MAX / 8 * 3);
        net.join(new_id, RingId(u64::MAX)).unwrap();
        assert!(net.is_alive(new_id));
        let moved = net.node(new_id).unwrap().store.values().to_vec();
        assert_eq!(moved, vec![30.0]);
        assert_eq!(net.total_items(), 5); // nothing lost
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn ring_grown_from_a_singleton_bootstrap_converges() {
        // The canonical Chord bootstrap: one seed peer (whose successor is
        // itself — the only legal self-entry), then every other peer joins
        // through it. The seed's self-successor sits at arc distance 0, so
        // unless `join` purges it, offers can never displace it and
        // stabilization freezes on a corrupt head forever.
        let mut net = net_of(&[500]);
        for id in [100u64, 200, 300, 400, 600, 700, 800, 900] {
            net.join(RingId(id), RingId(500)).unwrap();
        }
        for _ in 0..48 {
            net.stabilize_round();
        }
        let mut clean = 0;
        for round in 0.. {
            assert!(round < 96, "never quiesced: stuck on a corrupt successor head");
            clean = if net.stabilize_round() == 0 { clean + 1 } else { 0 };
            if clean == 16 {
                break;
            }
        }
        for id in net.ids().collect::<Vec<_>>() {
            let n = net.node(id).unwrap();
            assert!(!n.successors.contains(&id), "{id} lists itself as successor");
        }
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn join_rejects_taken_id() {
        let mut net = net_of(&[100, 200]);
        assert_eq!(net.join(RingId(100), RingId(200)), Err(MembershipError::IdTaken));
        assert_eq!(net.join(RingId(5), RingId(7)), Err(MembershipError::UnknownPeer));
    }

    #[test]
    fn graceful_leave_hands_data_over() {
        let mut net = net_of(&[u64::MAX / 4, u64::MAX / 2, u64::MAX]);
        net.bulk_load(&[10.0, 30.0, 60.0]);
        net.leave(RingId(u64::MAX / 2)).unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.total_items(), 3); // handed over, not lost
                                          // After stabilization the ring is consistent again.
        for _ in 0..3 {
            net.stabilize_round();
        }
        assert!(net
            .check_invariants()
            .iter()
            .filter(|v| !v.contains("item"))
            .collect::<Vec<_>>()
            .is_empty());
    }

    #[test]
    fn crash_loses_data() {
        let mut net = net_of(&[u64::MAX / 4, u64::MAX / 2, u64::MAX]);
        net.bulk_load(&[10.0, 30.0, 60.0]);
        net.fail(RingId(u64::MAX / 2)).unwrap();
        assert_eq!(net.total_items(), 2);
        assert!(net.fail(RingId(123)).is_err());
    }

    #[test]
    fn stabilization_repairs_after_crashes() {
        let ids: Vec<u64> = (1..=32).map(|i| i * (u64::MAX / 33)).collect();
        let mut net = net_of(&ids);
        // Crash 8 spread-out nodes.
        for i in [2usize, 6, 10, 14, 18, 22, 26, 30] {
            net.fail(RingId(ids[i])).unwrap();
        }
        // A few rounds of stabilization must restore pred/succ consistency.
        for _ in 0..5 {
            net.stabilize_round();
        }
        let violations = net.check_invariants();
        let ring_only: Vec<&String> = violations.iter().filter(|v| !v.contains("item")).collect();
        assert!(ring_only.is_empty(), "{ring_only:?}");
    }

    #[test]
    fn joins_then_stabilize_converges() {
        let mut net = net_of(&[u64::MAX / 2, u64::MAX]);
        net.bulk_load(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        for k in 1..=10u64 {
            let id = RingId(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            net.join(id, RingId(u64::MAX)).unwrap();
        }
        assert_eq!(net.len(), 12);
        assert_eq!(net.total_items(), 100);
        for _ in 0..20 {
            net.stabilize_round();
        }
        let violations = net.check_invariants();
        let ring_only: Vec<&String> = violations.iter().filter(|v| !v.contains("item")).collect();
        assert!(ring_only.is_empty(), "{ring_only:?}");
    }

    #[test]
    fn stabilize_charges_messages() {
        let mut net = net_of(&[100, 200, 300]);
        let before = net.stats().total_messages();
        net.stabilize_round();
        assert!(net.stats().total_messages() > before);
    }
}
