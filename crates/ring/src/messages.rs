//! Message kinds and cost accounting.
//!
//! Every simulated remote interaction is charged here. Conventions (stated
//! once, used everywhere):
//!
//! * one *message* = one one-way network transmission (a request and its
//!   reply are two messages);
//! * a routing *hop* is one request/reply exchange with an intermediate node
//!   during a lookup (2 messages);
//! * payload bytes cover the variable-size parts (summaries, histograms);
//!   fixed headers are charged [`HEADER_BYTES`] per message.

/// Fixed per-message overhead charged on top of payloads, in bytes.
pub const HEADER_BYTES: usize = 48;

/// Number of [`MessageKind`] variants (size of the dense counter array).
const KIND_COUNT: usize = 17;

/// The kinds of messages the overlay exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageKind {
    /// A routing step of an iterative lookup (request or reply).
    LookupHop,
    /// A routing attempt that timed out on a dead node.
    LookupTimeout,
    /// A density-estimation probe request.
    Probe,
    /// A probe reply carrying `(arc, count, summary)`.
    ProbeReply,
    /// A probe reply piggybacked on a foreground lookup's final exchange:
    /// only the incremental payload is charged — the routing was already
    /// paid for by the lookup it rides on.
    ProbePiggyback,
    /// Stabilization traffic (successor/predecessor refresh, finger fix).
    Stabilize,
    /// Data handoff during join/leave.
    Handoff,
    /// One gossip exchange (Push-Sum).
    Gossip,
    /// A random-walk step.
    WalkStep,
    /// A remote tuple-sampling request/reply.
    TupleSample,
    /// Replica refresh traffic (primary pushing deltas to its successors).
    Replicate,
    /// An injected fault: a request transmission lost on a link.
    FaultDrop,
    /// An injected fault: a reply dropped after the request was processed.
    FaultReplyDrop,
    /// An injected fault: the contacted peer crashed mid-request.
    FaultCrash,
    /// An injected fault: a timeout on a transiently sick (not dead) peer.
    FaultSick,
    /// An injected fault: a low-capacity peer's reply missed the caller's
    /// deadline (the request was processed; the peer is alive).
    FaultSlow,
    /// An injected fault: the message could not cross an arc-partition cut.
    FaultPartition,
}

impl MessageKind {
    /// Every kind, in declaration (= `Ord`) order; `index` is the position
    /// of each kind in this array.
    const ALL: [MessageKind; KIND_COUNT] = [
        MessageKind::LookupHop,
        MessageKind::LookupTimeout,
        MessageKind::Probe,
        MessageKind::ProbeReply,
        MessageKind::ProbePiggyback,
        MessageKind::Stabilize,
        MessageKind::Handoff,
        MessageKind::Gossip,
        MessageKind::WalkStep,
        MessageKind::TupleSample,
        MessageKind::Replicate,
        MessageKind::FaultDrop,
        MessageKind::FaultReplyDrop,
        MessageKind::FaultCrash,
        MessageKind::FaultSick,
        MessageKind::FaultSlow,
        MessageKind::FaultPartition,
    ];

    /// Dense index of this kind (its position in declaration order).
    const fn index(self) -> usize {
        match self {
            MessageKind::LookupHop => 0,
            MessageKind::LookupTimeout => 1,
            MessageKind::Probe => 2,
            MessageKind::ProbeReply => 3,
            MessageKind::ProbePiggyback => 4,
            MessageKind::Stabilize => 5,
            MessageKind::Handoff => 6,
            MessageKind::Gossip => 7,
            MessageKind::WalkStep => 8,
            MessageKind::TupleSample => 9,
            MessageKind::Replicate => 10,
            MessageKind::FaultDrop => 11,
            MessageKind::FaultReplyDrop => 12,
            MessageKind::FaultCrash => 13,
            MessageKind::FaultSick => 14,
            MessageKind::FaultSlow => 15,
            MessageKind::FaultPartition => 16,
        }
    }
}

/// Aggregate message/byte/hop counters for one simulation.
///
/// Counters are a fixed array indexed by [`MessageKind`] so the per-hop
/// `record` calls on the lookup path stay allocation-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    counts: [u64; KIND_COUNT],
    bytes: u64,
    /// Total routing hops across all lookups.
    hops: u64,
    /// Number of lookups performed.
    lookups: u64,
    /// Simulated-time delay units accrued (message delivery delays drawn
    /// from a fault plan, plus retry timeouts/backoff charged by callers).
    delay_units: u64,
}

impl MessageStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` with `payload` bytes (header added).
    pub fn record(&mut self, kind: MessageKind, payload: usize) {
        self.counts[kind.index()] += 1;
        self.bytes += (HEADER_BYTES + payload) as u64;
    }

    /// Records the hop count of one completed lookup.
    pub fn record_lookup(&mut self, hops: u32) {
        self.lookups += 1;
        self.hops += u64::from(hops);
    }

    /// Accrues simulated-time delay units (delivery delays, retry waits).
    pub fn record_delay(&mut self, units: u64) {
        self.delay_units += units;
    }

    /// Total simulated-time delay units accrued.
    pub fn total_delay(&self) -> u64 {
        self.delay_units
    }

    /// Total injected-fault events tallied (all `Fault*` kinds).
    pub fn total_faults(&self) -> u64 {
        self.count(MessageKind::FaultDrop)
            + self.count(MessageKind::FaultReplyDrop)
            + self.count(MessageKind::FaultCrash)
            + self.count(MessageKind::FaultSick)
            + self.count(MessageKind::FaultSlow)
            + self.count(MessageKind::FaultPartition)
    }

    /// Total messages of `kind`.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes (payloads + headers).
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean hops per lookup, or 0 if no lookups were recorded.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hops as f64 / self.lookups as f64
        }
    }

    /// Number of lookups recorded.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Difference `self - earlier`, for measuring the cost of one phase.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not a prefix of `self` (i.e.
    /// counters ran backwards).
    pub fn since(&self, earlier: &MessageStats) -> MessageStats {
        let mut counts = [0u64; KIND_COUNT];
        for (i, slot) in counts.iter_mut().enumerate() {
            let (v, e) = (self.counts[i], earlier.counts[i]);
            debug_assert!(v >= e, "counter {:?} ran backwards", MessageKind::ALL[i]);
            *slot = v - e;
        }
        MessageStats {
            counts,
            bytes: self.bytes - earlier.bytes,
            hops: self.hops - earlier.hops,
            lookups: self.lookups - earlier.lookups,
            delay_units: self.delay_units - earlier.delay_units,
        }
    }

    /// Per-kind counts, for reports: kinds with a nonzero count, in
    /// declaration (= `Ord`) order.
    pub fn breakdown(&self) -> impl Iterator<Item = (MessageKind, u64)> + '_ {
        MessageKind::ALL
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &v)| v > 0)
            .map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Probe, 16);
        s.record(MessageKind::Probe, 16);
        s.record(MessageKind::ProbeReply, 256);
        assert_eq!(s.count(MessageKind::Probe), 2);
        assert_eq!(s.count(MessageKind::ProbeReply), 1);
        assert_eq!(s.count(MessageKind::Gossip), 0);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), (3 * HEADER_BYTES + 16 + 16 + 256) as u64);
    }

    #[test]
    fn lookup_hops_average() {
        let mut s = MessageStats::new();
        s.record_lookup(4);
        s.record_lookup(8);
        assert_eq!(s.mean_hops(), 6.0);
        assert_eq!(s.lookups(), 2);
        assert_eq!(MessageStats::new().mean_hops(), 0.0);
    }

    #[test]
    fn since_computes_deltas() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Probe, 10);
        let snapshot = s.clone();
        s.record(MessageKind::Probe, 10);
        s.record(MessageKind::Gossip, 100);
        s.record_lookup(3);
        let d = s.since(&snapshot);
        assert_eq!(d.count(MessageKind::Probe), 1);
        assert_eq!(d.count(MessageKind::Gossip), 1);
        assert_eq!(d.lookups(), 1);
        assert_eq!(d.mean_hops(), 3.0);
    }

    #[test]
    fn delay_and_fault_accounting() {
        let mut s = MessageStats::new();
        s.record_delay(5);
        s.record(MessageKind::FaultDrop, 8);
        s.record(MessageKind::FaultSick, 8);
        let snapshot = s.clone();
        s.record_delay(7);
        s.record(MessageKind::FaultCrash, 8);
        assert_eq!(s.total_delay(), 12);
        assert_eq!(s.total_faults(), 3);
        let d = s.since(&snapshot);
        assert_eq!(d.total_delay(), 7);
        assert_eq!(d.total_faults(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Handoff, 1000);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
    }
}
