//! The simulated overlay network: construction, routing, probing.
//!
//! The network holds the ground-truth set of alive peers in a sorted-vec
//! [`NodeIndex`] (used for *construction*, *liveness checks*, and *test
//! assertions* only); **routing decisions use exclusively the per-node
//! routing state**, which churn can make stale — that is the point of the
//! simulation.

use crate::batch::BatchRouter;
use crate::faults::{FaultDecision, FaultPlan};
use crate::id::RingId;
use crate::index::NodeIndex;
use crate::messages::{MessageKind, MessageStats};
use crate::node::{Node, RouteBuf, SUCCESSOR_LIST_LEN};
use crate::placement::Placement;
use dde_stats::equidepth::EquiDepthSummary;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Hard hop limit per lookup; exceeding it indicates a broken ring.
pub const MAX_HOPS: u32 = 512;

/// Result of a successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The peer that owns the target ring point (per its believed arc).
    pub owner: RingId,
    /// Routing hops taken (0 when the initiator owned the target).
    pub hops: u32,
}

/// Why a lookup failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// The initiating peer is not alive.
    InitiatorDead,
    /// Routing state was too broken to make progress.
    NoRoute,
    /// The hop limit was exceeded (routing loop / broken ring).
    HopLimitExceeded,
    /// The network has no peers at all.
    EmptyNetwork,
    /// An injected fault (lost request/reply, sick peer, crash) broke the
    /// operation; the caller may retry.
    MessageLost,
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::InitiatorDead => write!(f, "initiating peer is not alive"),
            LookupError::NoRoute => write!(f, "no route to target (routing state exhausted)"),
            LookupError::HopLimitExceeded => write!(f, "hop limit exceeded"),
            LookupError::EmptyNetwork => write!(f, "network has no peers"),
            LookupError::MessageLost => write!(f, "message lost to an injected fault"),
        }
    }
}

impl std::error::Error for LookupError {}

/// A probe reply: the statistic a probed peer ships back.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReply {
    /// The probed peer.
    pub peer: RingId,
    /// The peer's believed predecessor (defines its arc); `None` for a peer
    /// that has not completed joining.
    pub predecessor: Option<RingId>,
    /// Exact local item count.
    pub count: u64,
    /// Sum of the local values (for aggregate queries).
    pub sum: f64,
    /// Sum of squares of the local values (for variance estimation).
    pub sum_sq: f64,
    /// Equi-depth summary of the local data.
    pub summary: EquiDepthSummary,
    /// Routing hops spent reaching the peer.
    pub hops: u32,
}

/// The simulated ring overlay.
#[derive(Debug)]
pub struct Network {
    pub(crate) nodes: NodeIndex,
    pub(crate) placement: Placement,
    pub(crate) stats: MessageStats,
    /// Equi-depth buckets peers use in probe replies.
    pub(crate) summary_buckets: usize,
    /// Fingers refreshed per node per stabilization round.
    pub(crate) fingers_per_round: usize,
    /// Round-robin cursor for finger fixing, per node.
    pub(crate) finger_cursor: BTreeMap<RingId, u32>,
    /// Replication factor: copies kept beyond the primary (0 = off).
    pub(crate) replication: usize,
    /// Deterministic counter driving maintenance-time random peer picks
    /// (models each node's long-term peer cache; see `stabilize_node`).
    pub(crate) maint_counter: u64,
    /// Installed fault plan; `None` injects nothing.
    pub(crate) faults: Option<FaultPlan>,
    /// Data-mutation epoch: bumped by every operation that can change the
    /// global multiset of stored primaries (bulk load, insert/delete, churn,
    /// data repair). Guards the ground-truth cache below.
    pub(crate) epoch: u64,
    /// Cached sorted global value vector, valid for the epoch it was built
    /// at. Interior mutability so [`Network::global_values`] stays `&self`.
    truth_cache: Mutex<TruthCache>,
}

/// The memoized [`Network::global_values`] result and the epoch it is
/// valid for.
#[derive(Debug, Clone, Default)]
struct TruthCache {
    epoch: u64,
    values: Option<Arc<Vec<f64>>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        let cache = self.truth_cache.lock().expect("truth cache poisoned").clone();
        Self {
            nodes: self.nodes.clone(),
            placement: self.placement,
            stats: self.stats.clone(),
            summary_buckets: self.summary_buckets,
            fingers_per_round: self.fingers_per_round,
            finger_cursor: self.finger_cursor.clone(),
            replication: self.replication,
            maint_counter: self.maint_counter,
            faults: self.faults.clone(),
            epoch: self.epoch,
            truth_cache: Mutex::new(cache),
        }
    }
}

/// Outcome of one hop-level request/reply exchange (see `Network::contact`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contact {
    /// Exchange succeeded (two messages plus delivery delay charged).
    Ok,
    /// The peer is permanently gone — dead or crashed mid-request. The
    /// timeout was charged and the stale entry purged from the caller.
    Gone,
    /// A transient failure — lost request/reply or a sick window. The
    /// timeout was charged; routing state is left alone (the peer lives).
    Faulted,
}

impl Network {
    /// Creates an empty network.
    pub fn new(placement: Placement) -> Self {
        Self {
            nodes: NodeIndex::new(),
            placement,
            stats: MessageStats::new(),
            summary_buckets: 8,
            fingers_per_round: 4,
            finger_cursor: BTreeMap::new(),
            replication: 0,
            maint_counter: 0,
            faults: None,
            epoch: 0,
            truth_cache: Mutex::new(TruthCache::default()),
        }
    }

    /// A cheap copy-on-write fork of this network: per-peer stores share
    /// their backing vectors until first mutation, so forking a loaded
    /// network is O(P), not O(items). A fork is observationally identical to
    /// the original — the scenario snapshot cache (`dde-sim`) relies on
    /// forked cells being byte-identical to freshly built ones.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// The data-mutation epoch: changes whenever the global multiset of
    /// stored primary values may have changed. Exposed for cache-invalidation
    /// tests.
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Marks the global data multiset as (possibly) changed, invalidating
    /// the [`Network::global_values`] cache.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Installs a fault plan; all subsequent lookup/probe/insert traffic is
    /// subject to it (see [`crate::faults`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes the installed fault plan.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Rolls the installed plan for one application-level request `from →
    /// to`; `true` means the message was lost (tallied as a fault). Always
    /// `false` without a plan. Estimators that simulate their own message
    /// exchanges (gossip pushes, walk steps) subject them to the plan here.
    pub fn message_lost(&mut self, from: RingId, to: RingId) -> bool {
        if self.faults.as_ref().is_some_and(|p| p.partitioned(from, to)) {
            self.stats.record(MessageKind::FaultPartition, 8);
            return true;
        }
        let lost = self.faults.as_mut().is_some_and(|p| p.request_lost(from, to));
        if lost {
            self.stats.record(MessageKind::FaultDrop, 8);
        }
        lost
    }

    /// Rolls the installed plan for one application-level reply `from →
    /// to`; `true` means the reply was dropped (tallied as a fault).
    pub fn reply_lost(&mut self, from: RingId, to: RingId) -> bool {
        if self.faults.as_ref().is_some_and(|p| p.partitioned(from, to)) {
            self.stats.record(MessageKind::FaultPartition, 8);
            return true;
        }
        let lost = self.faults.as_mut().is_some_and(|p| p.reply_lost(from, to));
        if lost {
            self.stats.record(MessageKind::FaultReplyDrop, 8);
        }
        lost
    }

    /// A deterministic pseudo-random alive peer other than `exclude`, drawn
    /// from the network's maintenance counter (splitmix64). This models the
    /// long-term peer cache every deployed DHT node keeps (bootstrap lists,
    /// gossiped membership) — out-of-band knowledge, like the join bootstrap.
    pub(crate) fn random_maintenance_peer(&mut self, exclude: RingId) -> Option<RingId> {
        if self.len() < 2 {
            return None;
        }
        self.maint_counter = self.maint_counter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.maint_counter;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let idx = (z % self.len() as u64) as usize;
        let pick = self.nodes.key_at(idx).expect("len checked");
        if pick == exclude {
            // Deterministically take the next peer (wrapping) instead.
            self.nodes.first_after(pick).or_else(|| self.nodes.first()).filter(|&id| id != exclude)
        } else {
            Some(pick)
        }
    }

    /// Builds a network of the given peers with **perfect** routing state
    /// (the steady state Chord stabilization converges to). Construction is
    /// free of message charges. Delegates to [`Network::build_bulk`].
    ///
    /// # Panics
    /// Panics if `ids` is empty.
    pub fn build(ids: Vec<RingId>, placement: Placement) -> Self {
        Self::build_bulk(ids, placement)
    }

    /// O(P) bulk construction for pre-built networks: sorts the id column
    /// once, appends node records in order (no per-insert binary search or
    /// memmove), and wires successors/fingers directly with the monotone
    /// per-level sweep ([`crate::arena::RingArena::wire_perfect`]) instead
    /// of per-join stabilization. Equivalence with the incremental join
    /// path is property-tested in `crates/sim/tests/bulk_equivalence.rs`.
    ///
    /// # Panics
    /// Panics if `ids` is empty (duplicates are dropped).
    pub fn build_bulk(mut ids: Vec<RingId>, placement: Placement) -> Self {
        assert!(!ids.is_empty(), "cannot build an empty network");
        ids.sort();
        ids.dedup();
        let mut net = Self::new(placement);
        net.nodes = NodeIndex::from_sorted_ids(&ids);
        net.nodes.rewire_perfect();
        net
    }

    /// Resets every node's routing state to ground truth (used at build time
    /// and by tests; **not** by the protocol paths) in `O(P · RING_BITS)`.
    pub fn rewire_perfectly(&mut self) {
        self.nodes.rewire_perfect();
    }

    /// Admits a coordinated block of new peers at once (a provisioned
    /// capacity expansion, not a churn storm): inserts every not-yet-taken
    /// id, rewires the whole ring perfectly in `O(P · RING_BITS)`, and
    /// re-homes items to their new true owners. Charges one state transfer
    /// per admitted peer plus handoff bytes per moved item; returns the
    /// number of peers admitted. The DST harness drives this through its
    /// `BulkJoinBlock` event to fuzz arena-backed bulk wiring.
    pub fn bulk_join(&mut self, new_ids: &[RingId]) -> usize {
        let mut added: Vec<RingId> =
            new_ids.iter().copied().filter(|&id| !self.is_alive(id)).collect();
        added.sort();
        added.dedup();
        if added.is_empty() {
            return 0;
        }
        self.bump_epoch();
        for &id in &added {
            self.nodes.insert(id, Node::new(id));
            self.finger_cursor.insert(id, 0);
        }
        self.nodes.rewire_perfect();
        // Re-home misplaced items: with perfect arcs the placement map fully
        // determines ownership, so one drain + redistribute pass lands
        // everything (charged as handoff bytes, like the join data handoff).
        let p = self.nodes.len();
        let placement = self.placement;
        let mut moved: Vec<f64> = Vec::new();
        for pos in 0..p {
            let id = self.nodes.key_at(pos).expect("in range");
            let pred = self.nodes.key_at((pos + p - 1) % p).expect("in range");
            moved.extend(
                self.nodes
                    .node_at_mut(pos)
                    .store
                    .drain_by(|x| !placement.place(x).in_arc(pred, id)),
            );
        }
        if !moved.is_empty() {
            self.stats.record(MessageKind::Handoff, 8 * moved.len());
            self.bulk_load(&moved);
        }
        let slen = SUCCESSOR_LIST_LEN.min(p - 1).max(1);
        self.stats.record(MessageKind::Stabilize, 8 * (1 + slen) * added.len());
        added.len()
    }

    /// Number of alive peers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The data placement mode.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Alive peer ids, in ring order.
    pub fn ids(&self) -> impl Iterator<Item = RingId> + '_ {
        self.nodes.keys().copied()
    }

    /// Whether `id` is an alive peer.
    pub fn is_alive(&self, id: RingId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Immutable access to a peer.
    pub fn node(&self, id: RingId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable access to a peer (tests and protocol internals).
    ///
    /// Conservatively bumps the data-mutation epoch — the caller may mutate
    /// the store through the returned reference.
    pub fn node_mut(&mut self, id: RingId) -> Option<&mut Node> {
        self.bump_epoch();
        self.nodes.get_mut(&id)
    }

    /// The message counters.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Mutable message counters (estimators charge their own traffic here).
    pub fn stats_mut(&mut self) -> &mut MessageStats {
        &mut self.stats
    }

    /// Sets the equi-depth bucket count peers use in probe replies.
    pub fn set_summary_buckets(&mut self, buckets: usize) {
        self.summary_buckets = buckets.max(1);
    }

    /// The probe summary granularity.
    pub fn summary_buckets(&self) -> usize {
        self.summary_buckets
    }

    /// Sets the replication factor (copies beyond the primary; 0 = off) and
    /// seeds replicas immediately from current primaries (construction-time,
    /// free of message charges — ongoing maintenance is charged via
    /// stabilization).
    pub fn set_replication(&mut self, factor: usize) {
        self.replication = factor;
        self.reseed_replicas();
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// **Ground truth**: the alive peer owning ring point `t` (the first
    /// peer clockwise at or after `t`). For construction and assertions only.
    ///
    /// # Panics
    /// Panics if the network is empty.
    pub fn true_owner(&self, t: RingId) -> RingId {
        assert!(!self.nodes.is_empty(), "true_owner on empty network");
        self.nodes.key_at(self.nodes.owner_position(t)).expect("nonempty")
    }

    /// A uniformly random alive peer (simulator-level helper for choosing
    /// estimation initiators; free of message charges).
    pub fn random_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<RingId> {
        if self.nodes.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.nodes.len());
        self.nodes.key_at(idx)
    }

    /// Distributes `items` to their owners per the placement map
    /// (construction-time; free of message charges).
    pub fn bulk_load(&mut self, items: &[f64]) {
        assert!(!self.nodes.is_empty(), "bulk_load on empty network");
        self.bump_epoch();
        // Two passes: count each owner's share, then fill exactly-sized
        // buckets — no reallocation during the distribution.
        let mut owners: Vec<usize> = Vec::with_capacity(items.len());
        let mut counts: Vec<usize> = vec![0; self.nodes.len()];
        for &x in items {
            let pos = self.nodes.owner_position(self.placement.place(x));
            owners.push(pos);
            counts[pos] += 1;
        }
        let mut per_owner: Vec<Vec<f64>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (&x, &pos) in items.iter().zip(&owners) {
            per_owner[pos].push(x);
        }
        for (pos, vals) in per_owner.into_iter().enumerate() {
            if !vals.is_empty() {
                self.nodes.node_at_mut(pos).store.extend_values(vals);
            }
        }
    }

    /// Total items across all alive peers.
    pub fn total_items(&self) -> u64 {
        self.nodes.values().map(|n| n.store.len() as u64).sum()
    }

    /// Every stored value, across all peers (ground truth for metrics).
    ///
    /// Memoized: the sorted vector is recomputed only when the data-mutation
    /// epoch has moved since the last call (see [`Network::mutation_epoch`]).
    pub fn global_values(&self) -> Vec<f64> {
        self.global_values_arc().as_ref().clone()
    }

    /// Shared-ownership form of [`Network::global_values`]: repeated calls
    /// at the same epoch return the same allocation.
    pub fn global_values_arc(&self) -> Arc<Vec<f64>> {
        let mut cache = self.truth_cache.lock().expect("truth cache poisoned");
        if cache.epoch == self.epoch {
            if let Some(values) = &cache.values {
                return Arc::clone(values);
            }
        }
        let mut all: Vec<f64> =
            self.nodes.values().flat_map(|n| n.store.values().iter().copied()).collect();
        all.sort_by(f64::total_cmp);
        let values = Arc::new(all);
        cache.epoch = self.epoch;
        cache.values = Some(Arc::clone(&values));
        values
    }

    /// The single timeout cost path: one timeout-marker message (header +
    /// 8-byte payload) for the waiting sender, whatever caused the silence.
    /// Dead-peer purges and every injected fault route through here, so a
    /// retry that follows a purge pays only its own traffic — the silence
    /// itself is never charged twice. (Waiting *time* is the caller's retry
    /// policy's to charge, not the network's.)
    pub(crate) fn observe_timeout(&mut self, kind: MessageKind) {
        self.stats.record(kind, 8);
    }

    /// Timeout on a permanently-gone peer: charge it once and purge the
    /// stale routing entry from `from`, as a real timeout handler would.
    fn timeout_and_purge(&mut self, from: RingId, to: RingId, kind: MessageKind) {
        self.observe_timeout(kind);
        if let Some(n) = self.nodes.get_mut(&from) {
            n.forget(to);
        }
    }

    /// One hop-level request/reply exchange `from → to`, subject to the
    /// fault plan. On success charges 2 hop messages plus delivery delay;
    /// on failure charges exactly one timeout through the unified path.
    fn contact(&mut self, from: RingId, to: RingId) -> Contact {
        if !self.is_alive(to) {
            self.timeout_and_purge(from, to, MessageKind::LookupTimeout);
            return Contact::Gone;
        }
        let decision = match self.faults.as_mut() {
            None => FaultDecision::Clean,
            Some(p) => p.decide_rpc(from, to),
        };
        match decision {
            FaultDecision::Clean => {
                self.stats.record(MessageKind::LookupHop, 8);
                self.stats.record(MessageKind::LookupHop, 8);
                if let Some(p) = self.faults.as_mut() {
                    let d = p.deliver(from, to) + p.deliver(to, from);
                    self.stats.record_delay(d);
                }
                Contact::Ok
            }
            FaultDecision::Sick => {
                self.observe_timeout(MessageKind::FaultSick);
                Contact::Faulted
            }
            FaultDecision::RequestLost => {
                self.observe_timeout(MessageKind::FaultDrop);
                Contact::Faulted
            }
            FaultDecision::ReplyLost => {
                // The request arrived and was processed; its reply vanished.
                self.stats.record(MessageKind::LookupHop, 8);
                self.observe_timeout(MessageKind::FaultReplyDrop);
                Contact::Faulted
            }
            FaultDecision::Slow => {
                // Processed, but the overloaded peer's reply came too late.
                self.stats.record(MessageKind::LookupHop, 8);
                self.observe_timeout(MessageKind::FaultSlow);
                Contact::Faulted
            }
            FaultDecision::Partitioned => {
                self.observe_timeout(MessageKind::FaultPartition);
                Contact::Faulted
            }
            FaultDecision::Crash => {
                let _ = self.fail(to);
                self.timeout_and_purge(from, to, MessageKind::FaultCrash);
                Contact::Gone
            }
        }
    }

    /// Iterative Chord lookup of ring point `target` starting at peer
    /// `from`, using only per-node routing state. Charges 2 messages per
    /// hop and 1 per timeout on a dead peer (dead entries are purged from
    /// the discovering node, as a real timeout handler would). With a fault
    /// plan installed, each exchange may additionally be lost, delayed, or
    /// hit a sick/crashing peer — transient faults on the final ownership
    /// step surface as [`LookupError::MessageLost`] rather than ever
    /// returning a wrong owner.
    pub fn lookup(&mut self, from: RingId, target: RingId) -> Result<LookupResult, LookupError> {
        self.lookup_impl(from, target, None)
    }

    /// [`Network::lookup`] inside a same-origin arrival window: routing
    /// decisions, owners, and hop counts are **identical** to the per-op
    /// path (both run [`Network::lookup_impl`] with the same state
    /// mutations), but hop exchanges already paid in `batch`'s current
    /// window are not charged again — the batch shares route prefixes.
    ///
    /// With a fault plan installed the dedup is disabled (fault decisions
    /// are stateful per-link draws; skipping one would diverge from per-op
    /// behaviour), so the call degrades to plain [`Network::lookup`].
    pub fn lookup_batched(
        &mut self,
        from: RingId,
        target: RingId,
        batch: &mut BatchRouter,
    ) -> Result<LookupResult, LookupError> {
        self.lookup_impl(from, target, Some(batch))
    }

    /// One hop exchange under an optional batch window: a window edge that
    /// was already paid is free (fault-free fast path only — with a plan
    /// installed, or a dead callee, this is exactly [`Network::contact`]).
    fn contact_dedup(
        &mut self,
        from: RingId,
        to: RingId,
        batch: &mut Option<&mut BatchRouter>,
    ) -> Contact {
        if let Some(b) = batch.as_deref_mut() {
            if self.faults.is_none() && self.is_alive(to) {
                if !b.seen_or_insert(from, to) {
                    self.stats.record(MessageKind::LookupHop, 8);
                    self.stats.record(MessageKind::LookupHop, 8);
                }
                return Contact::Ok;
            }
        }
        self.contact(from, to)
    }

    fn lookup_impl(
        &mut self,
        from: RingId,
        target: RingId,
        mut batch: Option<&mut BatchRouter>,
    ) -> Result<LookupResult, LookupError> {
        if self.nodes.is_empty() {
            return Err(LookupError::EmptyNetwork);
        }
        if !self.is_alive(from) {
            return Err(LookupError::InitiatorDead);
        }
        if let Some(p) = self.faults.as_mut() {
            p.tick();
        }
        let mut cur = from;
        let mut hops: u32 = 0;
        // One stack buffer reused across hops: the per-hop path allocates
        // nothing (guarded by `crates/ring/tests/alloc_free.rs`).
        let mut route_buf = RouteBuf::new();
        loop {
            if hops > MAX_HOPS {
                return Err(LookupError::HopLimitExceeded);
            }
            let node = self.nodes.get(&cur).expect("cur is alive");
            // A node knows its own arc.
            if node.owns(target) {
                self.stats.record_lookup(hops);
                return Ok(LookupResult { owner: cur, hops });
            }
            // A node with no successors at all cannot resolve anything it
            // does not own itself (a storm-isolated node must *not* claim
            // foreign arcs — the initiator should retry elsewhere).
            if node.successors.is_empty() {
                return Err(LookupError::NoRoute);
            }
            // Is the target in (cur, successor]? Then the successor owns it.
            // (Iterate a stack snapshot: contacting a dead successor purges
            // it from the live list.)
            let (succs, succ_len) = node.successors_snapshot();
            let succ = succs[0];
            if target.in_arc(cur, succ) {
                for &s in &succs[..succ_len] {
                    match self.contact_dedup(cur, s, &mut batch) {
                        Contact::Ok => {
                            hops += 1;
                            self.stats.record_lookup(hops);
                            return Ok(LookupResult { owner: s, hops });
                        }
                        // Dead successor: ownership passed on; try the next.
                        Contact::Gone => {}
                        // Transient fault on the *owner* exchange: the true
                        // owner is alive but unreachable right now. Falling
                        // through to the next successor would return a
                        // wrong owner — fail the lookup instead.
                        Contact::Faulted => return Err(LookupError::MessageLost),
                    }
                }
                return Err(LookupError::NoRoute);
            }
            // Advance via the best candidate that answers (any candidate
            // preserves correctness; faulted ones just cost a timeout).
            node.route_candidates_into(target, &mut route_buf);
            let mut advanced = false;
            for &c in route_buf.as_slice() {
                if self.contact_dedup(cur, c, &mut batch) == Contact::Ok {
                    hops += 1;
                    cur = c;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // All preceding candidates unresponsive: step through the
                // successor list (the target then lies beyond the first
                // responsive one, so the next iteration resolves or
                // advances from there).
                let (succs, succ_len) = self.nodes.get(&cur).expect("alive").successors_snapshot();
                for &s in &succs[..succ_len] {
                    if self.contact_dedup(cur, s, &mut batch) == Contact::Ok {
                        hops += 1;
                        cur = s;
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                return Err(LookupError::NoRoute);
            }
        }
    }

    /// Routes to the owner of `ring_point` and probes it: the peer replies
    /// with `(arc, count, equi-depth summary)`. This is the paper's Phase-1
    /// RPC.
    pub fn probe(
        &mut self,
        initiator: RingId,
        ring_point: RingId,
    ) -> Result<ProbeReply, LookupError> {
        let res = self.lookup(initiator, ring_point)?;
        // The probe RPC itself (initiator → owner) is subject to the fault
        // plan, except when the initiator owns the point (local read).
        if res.owner != initiator {
            self.settle_app_rpc(initiator, res.owner, |net| {
                // The peer processed the probe; the reply never arrived.
                net.stats.record(MessageKind::Probe, 8);
            })?;
        }
        let reply = self.probe_reply_from(res.owner, res.hops);
        self.stats.record(MessageKind::Probe, 8);
        self.stats.record(MessageKind::ProbeReply, 40 + reply.summary.wire_size());
        self.charge_rpc_delay(initiator, res.owner);
        Ok(reply)
    }

    /// Assembles the probe statistic from `owner`'s local state (no message
    /// charges — callers charge the transport they actually used).
    fn probe_reply_from(&self, owner: RingId, hops: u32) -> ProbeReply {
        let node = self.nodes.get(&owner).expect("owner alive");
        ProbeReply {
            peer: owner,
            predecessor: node.predecessor,
            count: node.store.len() as u64,
            sum: node.store.sum(),
            sum_sq: node.store.sum_sq(),
            summary: node.store.summary(self.summary_buckets),
            hops,
        }
    }

    /// Harvests a probe reply for `point` by piggybacking on a foreground
    /// exchange that already reached `owner`: if `owner` is alive and
    /// believes it owns `point`, the probe statistic rides back on the
    /// in-flight reply, charged as one [`MessageKind::ProbePiggyback`]
    /// message carrying only the incremental payload — no dedicated request
    /// and no routing, which the foreground lookup already paid for.
    ///
    /// Returns `None` when `owner` is gone or does not own `point` (the
    /// caller falls back to a dedicated [`Network::probe`]). The reply is
    /// field-for-field what a dedicated probe of `point` would have
    /// returned, with `hops = 0` marginal routing cost.
    pub fn piggyback_probe(&mut self, owner: RingId, point: RingId) -> Option<ProbeReply> {
        if !self.nodes.get(&owner).is_some_and(|n| n.owns(point)) {
            return None;
        }
        let reply = self.probe_reply_from(owner, 0);
        self.stats.record(MessageKind::ProbePiggyback, 40 + reply.summary.wire_size());
        Some(reply)
    }

    /// Rolls the fault plan for one application-level RPC (no-op `Clean`
    /// without a plan).
    fn decide_rpc(&mut self, from: RingId, to: RingId) -> FaultDecision {
        match self.faults.as_mut() {
            None => FaultDecision::Clean,
            Some(p) => p.decide_rpc(from, to),
        }
    }

    /// Settles the application-level RPC `from → to` that follows a
    /// successful lookup (probe, insert handoff): rolls the plan once and
    /// routes **every** failure through the unified [`Network::observe_timeout`]
    /// path, so all axes — transient faults, crashes, capacity deadlines,
    /// partitions — share one timeout accounting that cannot drift apart.
    /// `on_processed` runs exactly when the remote peer processed the
    /// request but the caller still saw silence (lost or late reply) — the
    /// at-most-once side effects live there.
    fn settle_app_rpc(
        &mut self,
        from: RingId,
        to: RingId,
        on_processed: impl FnOnce(&mut Self),
    ) -> Result<(), LookupError> {
        match self.decide_rpc(from, to) {
            FaultDecision::Clean => Ok(()),
            FaultDecision::Partitioned => {
                self.observe_timeout(MessageKind::FaultPartition);
                Err(LookupError::MessageLost)
            }
            FaultDecision::Sick => {
                self.observe_timeout(MessageKind::FaultSick);
                Err(LookupError::MessageLost)
            }
            FaultDecision::RequestLost => {
                self.observe_timeout(MessageKind::FaultDrop);
                Err(LookupError::MessageLost)
            }
            FaultDecision::Crash => {
                let _ = self.fail(to);
                self.observe_timeout(MessageKind::FaultCrash);
                Err(LookupError::MessageLost)
            }
            FaultDecision::ReplyLost => {
                on_processed(self);
                self.observe_timeout(MessageKind::FaultReplyDrop);
                Err(LookupError::MessageLost)
            }
            FaultDecision::Slow => {
                on_processed(self);
                self.observe_timeout(MessageKind::FaultSlow);
                Err(LookupError::MessageLost)
            }
        }
    }

    /// Charges delivery delay for one request + reply pair, if a plan with
    /// a delay distribution is installed. Delays route through
    /// [`FaultPlan::deliver`] so the capacity axis can scale and
    /// FIFO-clamp them per link.
    fn charge_rpc_delay(&mut self, from: RingId, to: RingId) {
        if let Some(p) = self.faults.as_mut() {
            let d = p.deliver(from, to) + p.deliver(to, from);
            self.stats.record_delay(d);
        }
    }

    /// Inserts one item through the overlay: routes to the owner of its
    /// placement position and stores it there (one request + ack on top of
    /// the routing hops). This is the write path dynamic workloads use.
    pub fn insert(&mut self, initiator: RingId, x: f64) -> Result<u32, LookupError> {
        self.bump_epoch();
        let pos = self.placement.place(x);
        let res = self.lookup(initiator, pos)?;
        // The handoff RPC (initiator → owner) is subject to the fault plan
        // unless the write is local.
        if res.owner != initiator {
            self.settle_app_rpc(initiator, res.owner, |net| {
                // At-most-once confusion, faithfully modelled: the item
                // *was* stored but the ack vanished (or came too late), so
                // the writer sees a failure (a retry would duplicate — its
                // problem).
                net.nodes.get_mut(&res.owner).expect("owner alive").store.insert(x);
                net.stats.record(MessageKind::Handoff, 8);
            })?;
        }
        self.nodes.get_mut(&res.owner).expect("owner alive").store.insert(x);
        self.stats.record(MessageKind::Handoff, 8);
        self.stats.record(MessageKind::Handoff, 0);
        self.charge_rpc_delay(initiator, res.owner);
        Ok(res.hops)
    }

    /// Deletes one occurrence of `x` through the overlay; returns whether an
    /// item was found (plus the routing hops spent).
    pub fn delete(&mut self, initiator: RingId, x: f64) -> Result<(bool, u32), LookupError> {
        self.bump_epoch();
        let pos = self.placement.place(x);
        let res = self.lookup(initiator, pos)?;
        let removed = self.nodes.get_mut(&res.owner).expect("owner alive").store.remove(x);
        self.stats.record(MessageKind::Handoff, 8);
        self.stats.record(MessageKind::Handoff, 0);
        Ok((removed, res.hops))
    }

    /// Routes to the owner of `ring_point` and asks it for one uniform local
    /// tuple (Phase-2 remote sampling). `None` tuple if the peer is empty.
    pub fn sample_tuple<R: Rng + ?Sized>(
        &mut self,
        initiator: RingId,
        ring_point: RingId,
        rng: &mut R,
    ) -> Result<(Option<f64>, u32), LookupError> {
        let res = self.lookup(initiator, ring_point)?;
        let node = self.nodes.get(&res.owner).expect("owner alive");
        let tuple = node.store.sample_uniform(rng);
        self.stats.record(MessageKind::TupleSample, 8);
        self.stats.record(MessageKind::TupleSample, 16);
        Ok((tuple, res.hops))
    }

    /// Checks **local** structural invariants — properties of per-node state
    /// that must hold at *every* instant, even mid-churn with arbitrarily
    /// stale routing state (unlike [`Network::check_invariants`], which
    /// compares against ground truth and is only meaningful after
    /// stabilization quiesces). The DST oracle (`dde-sim`'s `dst` module)
    /// evaluates this after every fuzzed event:
    ///
    /// * successor lists never contain the node itself (for `P > 1`), never
    ///   contain duplicates, and never exceed [`SUCCESSOR_LIST_LEN`];
    /// * the believed predecessor is never the node itself (for `P > 1`);
    /// * stored values are finite;
    /// * replica lease ages never exceed
    ///   [`crate::replication::REPLICA_LEASE_ROUNDS`], no node replicates
    ///   itself, no replicas exist with replication off, and no primary has
    ///   more than `r · (lease + 2)` holders (at most `r` fresh pushes per
    ///   round, each entry living at most `lease + 1` rounds).
    pub fn check_local_invariants(&self) -> Vec<String> {
        use crate::replication::REPLICA_LEASE_ROUNDS;
        // Arena/column consistency first: the id column, the record slab,
        // and every inline list must be structurally sound before any
        // protocol-level property is worth checking.
        let mut violations = self.nodes.check_columns();
        let p = self.nodes.len();
        let mut holders: BTreeMap<RingId, usize> = BTreeMap::new();
        for (&id, node) in &self.nodes {
            if node.successors.len() > SUCCESSOR_LIST_LEN {
                violations.push(format!(
                    "{id}: successor list over capacity ({} > {SUCCESSOR_LIST_LEN})",
                    node.successors.len()
                ));
            }
            if p > 1 && node.successors.contains(&id) {
                violations.push(format!("{id}: successor list contains self"));
            }
            if p > 1 && node.predecessor == Some(id) {
                violations.push(format!("{id}: predecessor is self"));
            }
            let has_dup =
                node.successors.iter().enumerate().any(|(i, s)| node.successors[..i].contains(s));
            if has_dup {
                violations.push(format!("{id}: successor list has duplicates"));
            }
            for &x in node.store.values() {
                if !x.is_finite() {
                    violations.push(format!("{id}: non-finite stored value {x}"));
                }
            }
            for (&primary, entry) in &node.replicas {
                if primary == id {
                    violations.push(format!("{id}: holds a replica of itself"));
                }
                if entry.1 > REPLICA_LEASE_ROUNDS {
                    violations.push(format!(
                        "{id}: replica lease for {primary} aged {} > {REPLICA_LEASE_ROUNDS}",
                        entry.1
                    ));
                }
                if self.replication == 0 {
                    violations
                        .push(format!("{id}: replica of {primary} present with replication off"));
                }
                *holders.entry(primary).or_insert(0) += 1;
            }
        }
        if self.replication > 0 {
            let bound = self.replication * (REPLICA_LEASE_ROUNDS as usize + 2);
            for (primary, n) in holders {
                if n > bound {
                    violations.push(format!(
                        "{primary}: {n} replica holders exceed bound {bound} (r = {})",
                        self.replication
                    ));
                }
            }
        }
        violations
    }

    /// Checks structural ring invariants against ground truth: every node's
    /// predecessor/successor match the ring order and every item sits on the
    /// peer owning its ring position. Returns a list of violations (empty =
    /// consistent). Test/diagnostic helper.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let ids: Vec<RingId> = self.nodes.keys().copied().collect();
        let p = ids.len();
        for (i, &id) in ids.iter().enumerate() {
            let node = &self.nodes[&id];
            let true_succ = ids[(i + 1) % p];
            let true_pred = ids[(i + p - 1) % p];
            if p > 1 {
                if node.successor() != Some(true_succ) {
                    violations.push(format!(
                        "{id}: successor {:?} != true {true_succ}",
                        node.successor()
                    ));
                }
                if node.predecessor != Some(true_pred) {
                    violations.push(format!(
                        "{id}: predecessor {:?} != true {true_pred}",
                        node.predecessor
                    ));
                }
            }
            for &x in node.store.values() {
                let pos = self.placement.place(x);
                if self.true_owner(pos) != id {
                    violations.push(format!("{id}: item {x} belongs to {}", self.true_owner(pos)));
                }
            }
        }
        violations
    }
}
