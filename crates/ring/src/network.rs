//! The simulated overlay network: construction, routing, probing.
//!
//! The network holds the ground-truth set of alive peers in a `BTreeMap`
//! (used for *construction*, *liveness checks*, and *test assertions* only);
//! **routing decisions use exclusively the per-node routing state**, which
//! churn can make stale — that is the point of the simulation.

use crate::id::{RingId, RING_BITS};
use crate::messages::{MessageKind, MessageStats};
use crate::node::{Node, SUCCESSOR_LIST_LEN};
use crate::placement::Placement;
use dde_stats::equidepth::EquiDepthSummary;
use rand::Rng;
use std::collections::BTreeMap;

/// Hard hop limit per lookup; exceeding it indicates a broken ring.
pub const MAX_HOPS: u32 = 512;

/// Result of a successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The peer that owns the target ring point (per its believed arc).
    pub owner: RingId,
    /// Routing hops taken (0 when the initiator owned the target).
    pub hops: u32,
}

/// Why a lookup failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// The initiating peer is not alive.
    InitiatorDead,
    /// Routing state was too broken to make progress.
    NoRoute,
    /// The hop limit was exceeded (routing loop / broken ring).
    HopLimitExceeded,
    /// The network has no peers at all.
    EmptyNetwork,
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::InitiatorDead => write!(f, "initiating peer is not alive"),
            LookupError::NoRoute => write!(f, "no route to target (routing state exhausted)"),
            LookupError::HopLimitExceeded => write!(f, "hop limit exceeded"),
            LookupError::EmptyNetwork => write!(f, "network has no peers"),
        }
    }
}

impl std::error::Error for LookupError {}

/// A probe reply: the statistic a probed peer ships back.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReply {
    /// The probed peer.
    pub peer: RingId,
    /// The peer's believed predecessor (defines its arc); `None` for a peer
    /// that has not completed joining.
    pub predecessor: Option<RingId>,
    /// Exact local item count.
    pub count: u64,
    /// Sum of the local values (for aggregate queries).
    pub sum: f64,
    /// Sum of squares of the local values (for variance estimation).
    pub sum_sq: f64,
    /// Equi-depth summary of the local data.
    pub summary: EquiDepthSummary,
    /// Routing hops spent reaching the peer.
    pub hops: u32,
}

/// The simulated ring overlay.
#[derive(Debug, Clone)]
pub struct Network {
    pub(crate) nodes: BTreeMap<RingId, Node>,
    pub(crate) placement: Placement,
    pub(crate) stats: MessageStats,
    /// Equi-depth buckets peers use in probe replies.
    pub(crate) summary_buckets: usize,
    /// Fingers refreshed per node per stabilization round.
    pub(crate) fingers_per_round: usize,
    /// Round-robin cursor for finger fixing, per node.
    pub(crate) finger_cursor: BTreeMap<RingId, u32>,
    /// Replication factor: copies kept beyond the primary (0 = off).
    pub(crate) replication: usize,
}

impl Network {
    /// Creates an empty network.
    pub fn new(placement: Placement) -> Self {
        Self {
            nodes: BTreeMap::new(),
            placement,
            stats: MessageStats::new(),
            summary_buckets: 8,
            fingers_per_round: 4,
            finger_cursor: BTreeMap::new(),
            replication: 0,
        }
    }

    /// Builds a network of the given peers with **perfect** routing state
    /// (the steady state Chord stabilization converges to). Construction is
    /// free of message charges.
    ///
    /// # Panics
    /// Panics if `ids` is empty or contains duplicates.
    pub fn build(mut ids: Vec<RingId>, placement: Placement) -> Self {
        assert!(!ids.is_empty(), "cannot build an empty network");
        ids.sort();
        ids.dedup();
        let mut net = Self::new(placement);
        for &id in &ids {
            net.nodes.insert(id, Node::new(id));
        }
        net.rewire_perfectly();
        net
    }

    /// Resets every node's routing state to ground truth (used at build time
    /// and by tests; **not** by the protocol paths).
    pub fn rewire_perfectly(&mut self) {
        let ids: Vec<RingId> = self.nodes.keys().copied().collect();
        let p = ids.len();
        for (i, &id) in ids.iter().enumerate() {
            let pred = ids[(i + p - 1) % p];
            let succs: Vec<RingId> =
                (1..=SUCCESSOR_LIST_LEN.min(p - 1).max(1)).map(|k| ids[(i + k) % p]).collect();
            let mut fingers = vec![None; RING_BITS as usize];
            for (f, slot) in fingers.iter_mut().enumerate() {
                *slot = Some(self.true_owner(id.finger_start(f as u32)));
            }
            let node = self.nodes.get_mut(&id).expect("listed id");
            node.predecessor = if p > 1 { Some(pred) } else { Some(id) };
            node.successors = if p > 1 { succs } else { vec![id] };
            node.fingers = fingers;
        }
    }

    /// Number of alive peers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The data placement mode.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Alive peer ids, in ring order.
    pub fn ids(&self) -> impl Iterator<Item = RingId> + '_ {
        self.nodes.keys().copied()
    }

    /// Whether `id` is an alive peer.
    pub fn is_alive(&self, id: RingId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Immutable access to a peer.
    pub fn node(&self, id: RingId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable access to a peer (tests and protocol internals).
    pub fn node_mut(&mut self, id: RingId) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// The message counters.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Mutable message counters (estimators charge their own traffic here).
    pub fn stats_mut(&mut self) -> &mut MessageStats {
        &mut self.stats
    }

    /// Sets the equi-depth bucket count peers use in probe replies.
    pub fn set_summary_buckets(&mut self, buckets: usize) {
        self.summary_buckets = buckets.max(1);
    }

    /// The probe summary granularity.
    pub fn summary_buckets(&self) -> usize {
        self.summary_buckets
    }

    /// Sets the replication factor (copies beyond the primary; 0 = off) and
    /// seeds replicas immediately from current primaries (construction-time,
    /// free of message charges — ongoing maintenance is charged via
    /// stabilization).
    pub fn set_replication(&mut self, factor: usize) {
        self.replication = factor;
        self.reseed_replicas();
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// **Ground truth**: the alive peer owning ring point `t` (the first
    /// peer clockwise at or after `t`). For construction and assertions only.
    ///
    /// # Panics
    /// Panics if the network is empty.
    pub fn true_owner(&self, t: RingId) -> RingId {
        assert!(!self.nodes.is_empty(), "true_owner on empty network");
        self.nodes
            .range(t..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(&id, _)| id)
            .expect("nonempty")
    }

    /// A uniformly random alive peer (simulator-level helper for choosing
    /// estimation initiators; free of message charges).
    pub fn random_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<RingId> {
        if self.nodes.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.nodes.len());
        self.nodes.keys().nth(idx).copied()
    }

    /// Distributes `items` to their owners per the placement map
    /// (construction-time; free of message charges).
    pub fn bulk_load(&mut self, items: &[f64]) {
        assert!(!self.nodes.is_empty(), "bulk_load on empty network");
        let mut per_owner: BTreeMap<RingId, Vec<f64>> = BTreeMap::new();
        for &x in items {
            let owner = self.true_owner(self.placement.place(x));
            per_owner.entry(owner).or_default().push(x);
        }
        for (owner, vals) in per_owner {
            self.nodes.get_mut(&owner).expect("alive owner").store.extend_values(vals);
        }
    }

    /// Total items across all alive peers.
    pub fn total_items(&self) -> u64 {
        self.nodes.values().map(|n| n.store.len() as u64).sum()
    }

    /// Every stored value, across all peers (ground truth for metrics).
    pub fn global_values(&self) -> Vec<f64> {
        let mut all: Vec<f64> =
            self.nodes.values().flat_map(|n| n.store.values().iter().copied()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stores"));
        all
    }

    /// Iterative Chord lookup of ring point `target` starting at peer
    /// `from`, using only per-node routing state. Charges 2 messages per
    /// hop and 1 per timeout on a dead peer (dead entries are purged from
    /// the discovering node, as a real timeout handler would).
    pub fn lookup(&mut self, from: RingId, target: RingId) -> Result<LookupResult, LookupError> {
        if self.nodes.is_empty() {
            return Err(LookupError::EmptyNetwork);
        }
        if !self.is_alive(from) {
            return Err(LookupError::InitiatorDead);
        }
        let mut cur = from;
        let mut hops: u32 = 0;
        loop {
            if hops > MAX_HOPS {
                return Err(LookupError::HopLimitExceeded);
            }
            let node = self.nodes.get(&cur).expect("cur is alive");
            // A node knows its own arc.
            if node.owns(target) || node.successors.is_empty() {
                self.stats.record_lookup(hops);
                return Ok(LookupResult { owner: cur, hops });
            }
            // Is the target in (cur, successor]? Then the successor owns it.
            let succs = node.successors.clone();
            let succ = succs[0];
            if target.in_arc(cur, succ) {
                for s in succs {
                    if self.is_alive(s) {
                        hops += 1;
                        self.stats.record(MessageKind::LookupHop, 8);
                        self.stats.record(MessageKind::LookupHop, 8);
                        self.stats.record_lookup(hops);
                        return Ok(LookupResult { owner: s, hops });
                    }
                    self.stats.record(MessageKind::LookupTimeout, 8);
                    self.nodes.get_mut(&cur).expect("alive").forget(s);
                }
                return Err(LookupError::NoRoute);
            }
            // Advance via the best alive candidate.
            let candidates = node.route_candidates(target);
            let mut advanced = false;
            for c in candidates {
                if self.is_alive(c) {
                    hops += 1;
                    self.stats.record(MessageKind::LookupHop, 8);
                    self.stats.record(MessageKind::LookupHop, 8);
                    cur = c;
                    advanced = true;
                    break;
                }
                self.stats.record(MessageKind::LookupTimeout, 8);
                self.nodes.get_mut(&cur).expect("alive").forget(c);
            }
            if !advanced {
                // All preceding candidates dead: step through the successor
                // list (the target then lies beyond the first alive one, so
                // the next iteration resolves or advances from there).
                let succs = self.nodes.get(&cur).expect("alive").successors.clone();
                for s in succs {
                    if self.is_alive(s) {
                        hops += 1;
                        self.stats.record(MessageKind::LookupHop, 8);
                        self.stats.record(MessageKind::LookupHop, 8);
                        cur = s;
                        advanced = true;
                        break;
                    }
                    self.stats.record(MessageKind::LookupTimeout, 8);
                    self.nodes.get_mut(&cur).expect("alive").forget(s);
                }
            }
            if !advanced {
                return Err(LookupError::NoRoute);
            }
        }
    }

    /// Routes to the owner of `ring_point` and probes it: the peer replies
    /// with `(arc, count, equi-depth summary)`. This is the paper's Phase-1
    /// RPC.
    pub fn probe(
        &mut self,
        initiator: RingId,
        ring_point: RingId,
    ) -> Result<ProbeReply, LookupError> {
        let res = self.lookup(initiator, ring_point)?;
        let node = self.nodes.get(&res.owner).expect("owner alive");
        let summary = node.store.summary(self.summary_buckets);
        let reply = ProbeReply {
            peer: res.owner,
            predecessor: node.predecessor,
            count: node.store.len() as u64,
            sum: node.store.sum(),
            sum_sq: node.store.sum_sq(),
            summary,
            hops: res.hops,
        };
        self.stats.record(MessageKind::Probe, 8);
        self.stats.record(MessageKind::ProbeReply, 40 + reply.summary.wire_size());
        Ok(reply)
    }

    /// Inserts one item through the overlay: routes to the owner of its
    /// placement position and stores it there (one request + ack on top of
    /// the routing hops). This is the write path dynamic workloads use.
    pub fn insert(&mut self, initiator: RingId, x: f64) -> Result<u32, LookupError> {
        let pos = self.placement.place(x);
        let res = self.lookup(initiator, pos)?;
        self.nodes.get_mut(&res.owner).expect("owner alive").store.insert(x);
        self.stats.record(MessageKind::Handoff, 8);
        self.stats.record(MessageKind::Handoff, 0);
        Ok(res.hops)
    }

    /// Deletes one occurrence of `x` through the overlay; returns whether an
    /// item was found (plus the routing hops spent).
    pub fn delete(&mut self, initiator: RingId, x: f64) -> Result<(bool, u32), LookupError> {
        let pos = self.placement.place(x);
        let res = self.lookup(initiator, pos)?;
        let removed = self.nodes.get_mut(&res.owner).expect("owner alive").store.remove(x);
        self.stats.record(MessageKind::Handoff, 8);
        self.stats.record(MessageKind::Handoff, 0);
        Ok((removed, res.hops))
    }

    /// Routes to the owner of `ring_point` and asks it for one uniform local
    /// tuple (Phase-2 remote sampling). `None` tuple if the peer is empty.
    pub fn sample_tuple<R: Rng + ?Sized>(
        &mut self,
        initiator: RingId,
        ring_point: RingId,
        rng: &mut R,
    ) -> Result<(Option<f64>, u32), LookupError> {
        let res = self.lookup(initiator, ring_point)?;
        let node = self.nodes.get(&res.owner).expect("owner alive");
        let tuple = node.store.sample_uniform(rng);
        self.stats.record(MessageKind::TupleSample, 8);
        self.stats.record(MessageKind::TupleSample, 16);
        Ok((tuple, res.hops))
    }

    /// Checks structural ring invariants against ground truth: every node's
    /// predecessor/successor match the ring order and every item sits on the
    /// peer owning its ring position. Returns a list of violations (empty =
    /// consistent). Test/diagnostic helper.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let ids: Vec<RingId> = self.nodes.keys().copied().collect();
        let p = ids.len();
        for (i, &id) in ids.iter().enumerate() {
            let node = &self.nodes[&id];
            let true_succ = ids[(i + 1) % p];
            let true_pred = ids[(i + p - 1) % p];
            if p > 1 {
                if node.successor() != Some(true_succ) {
                    violations.push(format!(
                        "{id}: successor {:?} != true {true_succ}",
                        node.successor()
                    ));
                }
                if node.predecessor != Some(true_pred) {
                    violations.push(format!(
                        "{id}: predecessor {:?} != true {true_pred}",
                        node.predecessor
                    ));
                }
            }
            for &x in node.store.values() {
                let pos = self.placement.place(x);
                if self.true_owner(pos) != id {
                    violations.push(format!("{id}: item {x} belongs to {}", self.true_owner(pos)));
                }
            }
        }
        violations
    }
}
