//! Per-peer routing state (the Chord node).

use crate::arena::{FingerTable, SuccessorList};
use crate::id::{RingId, RING_BITS};
use crate::store::LocalStore;
use std::collections::BTreeMap;

/// Default successor-list length (Chord recommends `Θ(log P)`; 8 covers
/// networks up to ~2⁸·ln-ish failure patterns and is what we use everywhere).
pub const SUCCESSOR_LIST_LEN: usize = 8;

/// Upper bound on distinct routing candidates one node can enumerate: every
/// finger slot plus every successor.
pub const MAX_ROUTE_CANDIDATES: usize = RING_BITS as usize + SUCCESSOR_LIST_LEN;

/// A reusable, heap-free buffer of routing candidates, best first.
///
/// One of these lives on the stack per lookup and is refilled each hop, so
/// the per-hop routing path never allocates (see
/// [`Node::route_candidates_into`]).
#[derive(Debug, Clone)]
pub struct RouteBuf {
    ids: [RingId; MAX_ROUTE_CANDIDATES],
    len: usize,
}

impl RouteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { ids: [RingId(0); MAX_ROUTE_CANDIDATES], len: 0 }
    }

    /// Drops all candidates.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The current candidates, best (most clockwise progress) first.
    pub fn as_slice(&self) -> &[RingId] {
        &self.ids[..self.len]
    }

    /// Inserts `c`, keeping candidates ordered by decreasing clockwise
    /// distance from `me`; duplicates are dropped (distance from a fixed
    /// origin is injective, so equal distance means equal id).
    fn insert_by_progress(&mut self, me: RingId, c: RingId) {
        let d = me.distance_to(c);
        let pos = self.ids[..self.len].partition_point(|&x| me.distance_to(x) > d);
        if pos < self.len && self.ids[pos] == c {
            return;
        }
        debug_assert!(self.len < MAX_ROUTE_CANDIDATES);
        self.ids.copy_within(pos..self.len, pos + 1);
        self.ids[pos] = c;
        self.len += 1;
    }
}

impl Default for RouteBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// A stack-allocated copy of a successor list (lookup iterates a snapshot
/// because contacting a dead successor purges it from the live list).
pub(crate) type SuccessorSnapshot = ([RingId; SUCCESSOR_LIST_LEN], usize);

/// One peer: identifier, routing state, and local data.
///
/// Routing state may be **stale** (pointing at departed peers or skipping
/// newly joined ones); only [`crate::Network::stabilize_round`] repairs it,
/// exactly like Chord. The data store is always internally consistent.
#[derive(Debug, Clone)]
pub struct Node {
    /// The peer's ring identifier.
    pub id: RingId,
    /// Believed predecessor (defines the owned arc `(predecessor, id]`).
    pub predecessor: Option<RingId>,
    /// Believed successors, nearest first; `successors[0]` is *the*
    /// successor. Inline (heap-free) — see [`crate::arena`].
    pub successors: SuccessorList,
    /// Finger table: `fingers.get(i)` ≈ `successor(id + 2^i)`. Inline
    /// (heap-free) — see [`crate::arena`].
    pub fingers: FingerTable,
    /// The peer's local data (primary copies).
    pub store: LocalStore,
    /// Replicas held on behalf of other peers, keyed by the primary's id,
    /// with a lease age (rounds since last refresh; garbage-collected when
    /// the lease expires).
    pub replicas: BTreeMap<RingId, (LocalStore, u32)>,
}

impl Node {
    /// A fresh node with empty routing state and no data.
    pub fn new(id: RingId) -> Self {
        Self {
            id,
            predecessor: None,
            successors: SuccessorList::new(),
            fingers: FingerTable::new(),
            store: LocalStore::new(),
            replicas: BTreeMap::new(),
        }
    }

    /// The immediate successor, if known.
    pub fn successor(&self) -> Option<RingId> {
        self.successors.first().copied()
    }

    /// The fraction of the ring this node believes it owns (its inclusion
    /// probability under uniform ring-position probing).
    ///
    /// `None` when the predecessor is unknown (a node that has not finished
    /// joining).
    pub fn arc_fraction(&self) -> Option<f64> {
        self.predecessor.map(|p| self.id.arc_fraction_from(p))
    }

    /// Whether ring point `t` falls in this node's believed arc.
    pub fn owns(&self, t: RingId) -> bool {
        match self.predecessor {
            Some(p) => t.in_arc(p, self.id),
            None => false,
        }
    }

    /// Routing candidates for reaching `target`, best first: every known
    /// peer in the open arc `(self.id, target)`, ordered by decreasing
    /// clockwise progress. The caller (the network) tries them in order,
    /// skipping dead ones.
    pub fn route_candidates(&self, target: RingId) -> Vec<RingId> {
        let mut buf = RouteBuf::new();
        self.route_candidates_into(target, &mut buf);
        buf.as_slice().to_vec()
    }

    /// Allocation-free form of [`Node::route_candidates`]: fills `buf` with
    /// the same candidates in the same best-first order.
    pub fn route_candidates_into(&self, target: RingId, buf: &mut RouteBuf) {
        buf.clear();
        for c in self.fingers.present().chain(self.successors.iter().copied()) {
            if c != self.id && c.in_open_arc(self.id, target) {
                buf.insert_by_progress(self.id, c);
            }
        }
    }

    /// Copies the successor list into a fixed stack array (callers iterate
    /// the copy because `forget` may shrink the live list mid-walk).
    pub(crate) fn successors_snapshot(&self) -> SuccessorSnapshot {
        debug_assert!(self.successors.len() <= SUCCESSOR_LIST_LEN);
        let mut ids = [self.id; SUCCESSOR_LIST_LEN];
        let len = self.successors.len().min(SUCCESSOR_LIST_LEN);
        ids[..len].copy_from_slice(&self.successors[..len]);
        (ids, len)
    }

    /// Purges a (discovered-dead) peer from all routing state.
    pub fn forget(&mut self, dead: RingId) {
        self.successors.retain(|&s| s != dead);
        self.fingers.forget(dead);
        if self.predecessor == Some(dead) {
            self.predecessor = None;
        }
    }

    /// Installs `peer` into the successor list if it belongs there (closer
    /// than an existing entry or list not full), keeping the list sorted by
    /// clockwise distance and bounded by [`SUCCESSOR_LIST_LEN`].
    pub fn offer_successor(&mut self, peer: RingId) {
        if peer == self.id {
            return;
        }
        let me = self.id;
        self.successors.offer_by_distance(me, peer);
    }

    /// Updates the predecessor if `peer` is closer (in the arc
    /// `(current_pred, self)`), or sets it when unknown.
    pub fn offer_predecessor(&mut self, peer: RingId) {
        if peer == self.id {
            return;
        }
        match self.predecessor {
            None => self.predecessor = Some(peer),
            Some(p) => {
                if peer.in_open_arc(p, self.id) {
                    self.predecessor = Some(peer);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_owns_nothing() {
        let n = Node::new(RingId(100));
        assert!(!n.owns(RingId(100)));
        assert!(n.successor().is_none());
        assert!(n.arc_fraction().is_none());
    }

    #[test]
    fn ownership_follows_arc() {
        let mut n = Node::new(RingId(100));
        n.predecessor = Some(RingId(50));
        assert!(n.owns(RingId(100)));
        assert!(n.owns(RingId(51)));
        assert!(!n.owns(RingId(50)));
        assert!(!n.owns(RingId(101)));
    }

    #[test]
    fn route_candidates_ordered_by_progress() {
        let mut n = Node::new(RingId(0));
        n.fingers.set(4, Some(RingId(16)));
        n.fingers.set(6, Some(RingId(64)));
        n.successors = [RingId(5), RingId(16)].into();
        let cands = n.route_candidates(RingId(100));
        assert_eq!(cands, vec![RingId(64), RingId(16), RingId(5)]);
        // Target closer than some fingers: only preceding peers qualify.
        let cands = n.route_candidates(RingId(10));
        assert_eq!(cands, vec![RingId(5)]);
    }

    #[test]
    fn route_candidates_exclude_target_itself() {
        let mut n = Node::new(RingId(0));
        n.successors = [RingId(7)].into();
        // Target == candidate: open arc excludes it.
        assert!(n.route_candidates(RingId(7)).is_empty());
    }

    #[test]
    fn forget_purges_everywhere() {
        let mut n = Node::new(RingId(0));
        n.predecessor = Some(RingId(90));
        n.successors = [RingId(5), RingId(9)].into();
        n.fingers.set(0, Some(RingId(5)));
        n.fingers.set(3, Some(RingId(9)));
        n.forget(RingId(5));
        assert_eq!(n.successors, vec![RingId(9)]);
        assert_eq!(n.fingers.get(0), None);
        assert_eq!(n.fingers.get(3), Some(RingId(9)));
        n.forget(RingId(90));
        assert_eq!(n.predecessor, None);
    }

    #[test]
    fn offer_successor_keeps_sorted_bounded() {
        let mut n = Node::new(RingId(0));
        for i in (1..=20).rev() {
            n.offer_successor(RingId(i * 10));
        }
        assert_eq!(n.successors.len(), SUCCESSOR_LIST_LEN);
        assert_eq!(n.successor(), Some(RingId(10)));
        // Offering self is ignored.
        n.offer_successor(RingId(0));
        assert!(!n.successors.contains(&RingId(0)));
        // Offering a duplicate doesn't grow the list.
        n.offer_successor(RingId(10));
        assert_eq!(n.successors.len(), SUCCESSOR_LIST_LEN);
    }

    #[test]
    fn offer_successor_handles_wraparound() {
        let mut n = Node::new(RingId(u64::MAX - 10));
        n.offer_successor(RingId(5)); // wraps around 0
        n.offer_successor(RingId(u64::MAX)); // nearer
        assert_eq!(n.successor(), Some(RingId(u64::MAX)));
    }

    #[test]
    fn offer_predecessor_takes_closer() {
        let mut n = Node::new(RingId(100));
        n.offer_predecessor(RingId(10));
        assert_eq!(n.predecessor, Some(RingId(10)));
        n.offer_predecessor(RingId(50)); // closer to 100
        assert_eq!(n.predecessor, Some(RingId(50)));
        n.offer_predecessor(RingId(20)); // farther: ignored
        assert_eq!(n.predecessor, Some(RingId(50)));
        n.offer_predecessor(RingId(100)); // self: ignored
        assert_eq!(n.predecessor, Some(RingId(50)));
    }
}
