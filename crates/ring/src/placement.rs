//! Data placement: mapping data values onto the identifier ring.
//!
//! Two modes, mirroring the two families of ring-based P2P systems:
//!
//! * **Hashed** (classic Chord/DHT): an item's ring position is a hash of its
//!   value. Every peer holds a uniform random subset of the global data, so
//!   data volume per peer is balanced but ring position says nothing about
//!   the data domain.
//! * **Range** (order-preserving, Mercury / P-Ring style): the data domain
//!   `[lo, hi]` is mapped affinely onto the ring, so each peer owns a
//!   contiguous *data range*. Skewed data now means skewed per-peer volume —
//!   the regime where naive peer sampling is biased and the paper's
//!   distribution-free correction matters.

use crate::id::RingId;
use dde_stats::rng::splitmix64;

/// An affine, order-preserving map between a bounded data domain and the
/// identifier ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainMap {
    lo: f64,
    hi: f64,
}

impl DomainMap {
    /// Creates the map for domain `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad domain [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The data domain `[lo, hi]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Ring position of data value `x` (clamped into the domain).
    ///
    /// The top of the domain maps to the top of the ring, never wrapping to
    /// 0, so domain order is preserved on the un-wrapped ring `[0, 2⁶⁴)`.
    pub fn to_ring(&self, x: f64) -> RingId {
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        // Scale into [0, 2^64); clamp the open end.
        let pos = frac * 2f64.powi(64);
        RingId(if pos >= 2f64.powi(64) { u64::MAX } else { pos as u64 })
    }

    /// Data value at ring position `p` (the inverse map).
    pub fn to_domain(&self, p: RingId) -> f64 {
        let frac = p.0 as f64 / 2f64.powi(64);
        self.lo + frac * (self.hi - self.lo)
    }
}

/// How items are assigned ring positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Hash of the value's bits (uniform on the ring).
    Hashed {
        /// Domain bounds, kept for ground-truth bookkeeping.
        map: DomainMap,
    },
    /// Order-preserving affine map of the value.
    Range {
        /// The domain↔ring map.
        map: DomainMap,
    },
}

impl Placement {
    /// Order-preserving placement on `[lo, hi]`.
    pub fn range(lo: f64, hi: f64) -> Self {
        Placement::Range { map: DomainMap::new(lo, hi) }
    }

    /// Hashed placement, remembering `[lo, hi]` as the data domain.
    pub fn hashed(lo: f64, hi: f64) -> Self {
        Placement::Hashed { map: DomainMap::new(lo, hi) }
    }

    /// The data domain.
    pub fn domain(&self) -> (f64, f64) {
        match self {
            Placement::Hashed { map } | Placement::Range { map } => map.domain(),
        }
    }

    /// Whether this placement preserves domain order on the ring.
    pub fn is_order_preserving(&self) -> bool {
        matches!(self, Placement::Range { .. })
    }

    /// Ring position where item `x` is stored.
    pub fn place(&self, x: f64) -> RingId {
        match self {
            Placement::Hashed { .. } => RingId(splitmix64(x.to_bits())),
            Placement::Range { map } => map.to_ring(x),
        }
    }

    /// The order-preserving map, if this is range placement.
    pub fn domain_map(&self) -> Option<&DomainMap> {
        match self {
            Placement::Range { map } => Some(map),
            Placement::Hashed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domain_map_endpoints() {
        let m = DomainMap::new(0.0, 100.0);
        assert_eq!(m.to_ring(0.0), RingId(0));
        assert_eq!(m.to_ring(100.0), RingId(u64::MAX));
        assert_eq!(m.to_ring(-5.0), RingId(0)); // clamped
        assert_eq!(m.to_ring(105.0), RingId(u64::MAX));
    }

    #[test]
    fn domain_map_midpoint() {
        let m = DomainMap::new(0.0, 100.0);
        let mid = m.to_ring(50.0);
        assert!((mid.0 as f64 / 2f64.powi(64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_accuracy() {
        let m = DomainMap::new(-500.0, 1500.0);
        for x in [-500.0, -123.456, 0.0, 777.0, 1499.999] {
            let back = m.to_domain(m.to_ring(x));
            assert!((back - x).abs() < 1e-9, "x={x} back={back}");
        }
    }

    #[test]
    fn range_placement_is_monotone() {
        let p = Placement::range(0.0, 1.0);
        let mut prev = RingId(0);
        for i in 0..=100 {
            let pos = p.place(i as f64 / 100.0);
            assert!(pos.0 >= prev.0, "not monotone at {i}");
            prev = pos;
        }
    }

    #[test]
    fn hashed_placement_scatters() {
        let p = Placement::hashed(0.0, 1.0);
        // Adjacent values land far apart: 20 increasing inputs must not map
        // to monotone ring positions.
        let pos: Vec<u64> = (1..=20).map(|i| p.place(i as f64 / 1000.0).0).collect();
        let ascending = pos.windows(2).all(|w| w[0] <= w[1]);
        let descending = pos.windows(2).all(|w| w[0] >= w[1]);
        assert!(!ascending && !descending);
        let a = p.place(0.001);
        // And must be deterministic.
        assert_eq!(p.place(0.001), a);
    }

    #[test]
    fn hashed_placement_spreads_uniformly() {
        // Bucket 10k hashed positions into 16 ring sectors; each should get
        // roughly 1/16.
        let p = Placement::hashed(0.0, 1.0);
        let mut buckets = [0u32; 16];
        for i in 0..10_000 {
            let pos = p.place(i as f64 / 10_000.0);
            buckets[(pos.0 >> 60) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((450..=800).contains(&b), "sector {i} got {b}");
        }
    }

    proptest! {
        #[test]
        fn range_monotone_prop(a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
            let p = Placement::range(0.0, 1000.0);
            if a <= b {
                prop_assert!(p.place(a).0 <= p.place(b).0);
            } else {
                prop_assert!(p.place(a).0 >= p.place(b).0);
            }
        }

        #[test]
        fn round_trip_prop(x in -1000.0f64..1000.0) {
            let m = DomainMap::new(-1000.0, 1000.0);
            let back = m.to_domain(m.to_ring(x));
            prop_assert!((back - x).abs() < 1e-9);
        }
    }
}
