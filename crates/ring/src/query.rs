//! Range-query execution over the overlay — the consumer of selectivity
//! estimates.
//!
//! Under **range placement** a value interval `[lo, hi]` maps to a
//! contiguous ring segment, so a query routes to the owner of `φ(lo)`
//! (`O(log P)` hops) and then walks successors through the segment,
//! collecting matches — total cost `O(log P + peers(segment))` messages.
//! Under **hashed placement** matching items are scattered uniformly, so the
//! query must visit every peer (a ring-wide scatter walk) — which is exactly
//! why range-partitioned systems exist, and why their load skew makes the
//! paper's density estimate necessary.

use crate::id::RingId;
use crate::messages::MessageKind;
use crate::network::{LookupError, Network};

/// Result of executing a range query.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeQueryResult {
    /// Matching items, sorted ascending.
    pub items: Vec<f64>,
    /// Peers that were asked to scan.
    pub peers_visited: usize,
    /// Routing hops spent reaching the segment (0 under hashed placement's
    /// full scan, which starts at the initiator).
    pub routing_hops: u32,
}

impl Network {
    /// Executes the range query `[lo, hi]` from `initiator`, charging all
    /// traffic. Chooses the strategy by placement: segment walk under range
    /// placement, full scatter walk under hashed placement.
    pub fn range_query(
        &mut self,
        initiator: RingId,
        lo: f64,
        hi: f64,
    ) -> Result<RangeQueryResult, LookupError> {
        if !self.is_alive(initiator) {
            return Err(LookupError::InitiatorDead);
        }
        if hi < lo {
            return Ok(RangeQueryResult { items: Vec::new(), peers_visited: 0, routing_hops: 0 });
        }
        match self.placement.domain_map().copied() {
            Some(map) => {
                let start = map.to_ring(lo);
                let end = map.to_ring(hi);
                let first = self.lookup(initiator, start)?;
                let mut items = Vec::new();
                let mut cur = first.owner;
                let mut visited = 0usize;
                let limit = self.len() * 2 + 8;
                // The affine map never wraps, so the segment's peers are in
                // plain numeric id order; a peer with id ≥ end covers the
                // segment tail. If the start owner's id is *below* `start`,
                // the lookup wrapped: no peer has an id ≥ start, so the
                // smallest-id peer's wrap arc holds the entire tail of the
                // domain — one visit suffices.
                let single_wrap_owner = first.owner.0 < start.0;
                let mut last_visit = single_wrap_owner;
                loop {
                    let node = self.nodes.get(&cur).expect("walk on alive peers");
                    let (succs, succ_len) = node.successors_snapshot();
                    let matched: Vec<f64> = node
                        .store
                        .values()
                        .iter()
                        .copied()
                        .filter(|&x| (lo..=hi).contains(&x))
                        .collect();
                    self.stats.record(MessageKind::Probe, 16);
                    self.stats.record(MessageKind::ProbeReply, 8 * matched.len());
                    items.extend(matched);
                    visited += 1;
                    if last_visit || cur.0 >= end.0 || visited >= limit {
                        break;
                    }
                    let next = succs[..succ_len].iter().copied().find(|&s| self.is_alive(s));
                    let Some(next) = next else { break };
                    if next == first.owner {
                        break; // full circle
                    }
                    if next.0 < cur.0 {
                        // Wrapped past the ring top: no peer has id ≥ end,
                        // so the wrap owner holds the segment's tail — visit
                        // it once and stop.
                        last_visit = true;
                    }
                    cur = next;
                }
                items.sort_by(f64::total_cmp);
                Ok(RangeQueryResult { items, peers_visited: visited, routing_hops: first.hops })
            }
            None => {
                // Hashed placement: visit everyone via the successor ring.
                let mut items = Vec::new();
                let mut cur = initiator;
                let mut visited = 0usize;
                let limit = self.len() * 2 + 8;
                loop {
                    let node = self.nodes.get(&cur).expect("walk on alive peers");
                    let (succs, succ_len) = node.successors_snapshot();
                    let matched: Vec<f64> = node
                        .store
                        .values()
                        .iter()
                        .copied()
                        .filter(|&x| (lo..=hi).contains(&x))
                        .collect();
                    if cur != initiator {
                        self.stats.record(MessageKind::Probe, 16);
                        self.stats.record(MessageKind::ProbeReply, 8 * matched.len());
                    }
                    items.extend(matched);
                    visited += 1;
                    let next = succs[..succ_len].iter().copied().find(|&s| self.is_alive(s));
                    let Some(next) = next else { break };
                    if next == initiator || visited >= limit {
                        break;
                    }
                    cur = next;
                }
                items.sort_by(f64::total_cmp);
                Ok(RangeQueryResult { items, peers_visited: visited, routing_hops: 0 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::Rng;

    fn net(placement: Placement, peers: usize, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut n = Network::build(ids, placement);
        // 10 copies of every integer 0..1000.
        let data: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64).collect();
        n.bulk_load(&data);
        n
    }

    #[test]
    fn range_walk_returns_exact_matches() {
        let mut n = net(Placement::range(0.0, 1000.0), 128, 1);
        let seq = SeedSequence::new(2);
        let mut rng = seq.stream(Component::Workload, 0);
        let from = n.random_peer(&mut rng).unwrap();
        for (lo, hi, expect) in [(100.0, 199.0, 1000), (0.0, 0.0, 10), (950.0, 999.0, 500)] {
            let r = n.range_query(from, lo, hi).unwrap();
            assert_eq!(r.items.len(), expect, "[{lo}, {hi}]");
            assert!(r.items.iter().all(|&x| (lo..=hi).contains(&x)));
            // Targeted: visits only the segment's share of peers (+slack).
            let frac = (hi - lo + 1.0) / 1000.0;
            let budget = (128.0 * frac * 3.0 + 8.0) as usize;
            assert!(r.peers_visited <= budget, "visited {} of 128", r.peers_visited);
        }
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut n = net(Placement::range(0.0, 1000.0), 32, 3);
        let from = n.ids().next().unwrap();
        let r = n.range_query(from, 500.0, 100.0).unwrap();
        assert!(r.items.is_empty());
        assert_eq!(r.peers_visited, 0);
        // A range between stored integers matches nothing but still walks.
        let r = n.range_query(from, 100.2, 100.8).unwrap();
        assert!(r.items.is_empty());
        assert!(r.peers_visited >= 1);
    }

    #[test]
    fn hashed_placement_floods_everyone() {
        let mut n = net(Placement::hashed(0.0, 1000.0), 64, 4);
        let from = n.ids().next().unwrap();
        let r = n.range_query(from, 100.0, 199.0).unwrap();
        assert_eq!(r.items.len(), 1000);
        assert_eq!(r.peers_visited, 64, "hashed placement must scan all peers");
    }

    #[test]
    fn charges_messages() {
        let mut n = net(Placement::range(0.0, 1000.0), 64, 5);
        let from = n.ids().next().unwrap();
        let before = n.stats().clone();
        let r = n.range_query(from, 300.0, 400.0).unwrap();
        let d = n.stats().since(&before);
        assert_eq!(d.count(MessageKind::Probe) as usize, r.peers_visited);
        assert!(d.total_bytes() >= 8 * r.items.len() as u64);
    }

    #[test]
    fn dead_initiator_errors() {
        let mut n = net(Placement::range(0.0, 1000.0), 8, 6);
        assert_eq!(n.range_query(RingId(1), 0.0, 1.0).unwrap_err(), LookupError::InitiatorDead);
    }

    #[test]
    fn survives_mid_segment_failures() {
        let mut n = net(Placement::range(0.0, 1000.0), 128, 7);
        // Kill a few peers, no stabilization: successor lists carry the walk.
        let ids: Vec<RingId> = n.ids().collect();
        for i in [30usize, 31, 60, 90] {
            n.fail(ids[i]).unwrap();
        }
        let seq = SeedSequence::new(8);
        let mut rng = seq.stream(Component::Workload, 1);
        let from = n.random_peer(&mut rng).unwrap();
        let r = n.range_query(from, 0.0, 999.0).unwrap();
        // Everything still owned by alive peers is found (the dead peers'
        // primaries are gone — that loss is the crash's, not the query's).
        assert_eq!(r.items.len() as u64, n.total_items());
    }
}
