//! Successor-list replication — the availability mechanism dynamic DHTs pair
//! with churn.
//!
//! With replication factor `r`, every peer keeps a copy of its primary data
//! on its first `r` alive successors. The protocol pieces:
//!
//! * **Refresh** (lease renewal): during stabilization, each primary pushes
//!   its current store to its first `r` alive successors. Only the *delta*
//!   (items the replica is missing) is charged on the wire; the entry's
//!   lease age resets.
//! * **Promotion**: when a peer holds a replica whose primary is dead and
//!   the replica's items fall inside the peer's (repaired) arc, it promotes
//!   them into its primary store — this is how crashed peers' data survives.
//!   Ownership-gating guarantees exactly one surviving replica holder
//!   promotes each item, so no duplicates arise even with `r > 1`.
//! * **Lease expiry**: replica entries not refreshed for
//!   [`REPLICA_LEASE_ROUNDS`] stabilization rounds are dropped (the primary
//!   moved on, or we are no longer among its successors).
//!
//! Replication is off (`r = 0`) by default; experiment F10 sweeps it against
//! crash storms.

use crate::id::RingId;
use crate::messages::MessageKind;
use crate::network::Network;
use crate::store::LocalStore;

/// Stabilization rounds a replica entry survives without a refresh.
pub const REPLICA_LEASE_ROUNDS: u32 = 4;

impl Network {
    /// (Re)seeds replicas from current primaries, construction-time (free of
    /// message charges). Called by [`Network::set_replication`].
    pub(crate) fn reseed_replicas(&mut self) {
        let ids: Vec<RingId> = self.nodes.keys().copied().collect();
        // Clear all existing replica state first (positional walk: the
        // index hands out one mutable record at a time).
        for i in 0..self.nodes.len() {
            self.nodes.node_at_mut(i).replicas.clear();
        }
        if self.replication == 0 {
            return;
        }
        let p = ids.len();
        for (i, &id) in ids.iter().enumerate() {
            let store = self.nodes[&id].store.clone();
            if store.is_empty() {
                continue;
            }
            for k in 1..=self.replication.min(p - 1) {
                let target = ids[(i + k) % p];
                self.nodes
                    .get_mut(&target)
                    .expect("listed id")
                    .replicas
                    .insert(id, (store.clone(), 0));
            }
        }
    }

    /// One peer's replication maintenance (called from stabilization):
    /// promotion of dead primaries' data, lease aging/expiry, and pushing
    /// fresh replicas to the first `r` alive successors. Returns the number
    /// of items promoted.
    pub(crate) fn replicate_node(&mut self, id: RingId) -> usize {
        if self.replication == 0 {
            return 0;
        }
        let mut promoted = 0;

        // 1. Promotion + lease bookkeeping.
        {
            let Some(node) = self.nodes.get(&id) else { return 0 };
            let (pred, my_id) = (node.predecessor, node.id);
            let primaries: Vec<RingId> = node.replicas.keys().copied().collect();
            let placement = self.placement;
            for primary in primaries {
                let primary_alive = self.is_alive(primary);
                let node = self.nodes.get_mut(&id).expect("alive");
                if !primary_alive {
                    // Promote the part of the replica that now falls in OUR
                    // arc (ownership-gated: only the heir promotes).
                    if let Some(p) = pred {
                        let (store, _) = node.replicas.get_mut(&primary).expect("listed");
                        let mine = store.drain_by(|x| placement.place(x).in_arc(p, my_id));
                        if !mine.is_empty() {
                            promoted += mine.len();
                            node.store.extend_values(mine);
                        }
                        // Whatever remains belongs to other heirs; keep it
                        // until the lease expires (they may still promote
                        // from their own copies — ours is then garbage).
                    }
                }
                // Age the lease; drop expired entries.
                let (_, age) = node.replicas.get_mut(&primary).expect("listed");
                *age += 1;
                if *age > REPLICA_LEASE_ROUNDS {
                    node.replicas.remove(&primary);
                }
            }
        }

        if promoted > 0 {
            self.bump_epoch();
        }

        // 2. Refresh our own replicas on the first r alive successors.
        let (store, succs, succ_len) = {
            let Some(node) = self.nodes.get(&id) else { return promoted };
            let (succs, succ_len) = node.successors_snapshot();
            (node.store.clone(), succs, succ_len)
        };
        if store.is_empty() {
            return promoted;
        }
        let mut placed = 0;
        for &s in &succs[..succ_len] {
            if placed >= self.replication {
                break;
            }
            if s == id || !self.is_alive(s) {
                continue;
            }
            let target = self.nodes.get_mut(&s).expect("alive");
            let delta = match target.replicas.get(&id) {
                Some((existing, _)) => store.missing_from(existing),
                None => store.len(),
            };
            target.replicas.insert(id, (store.clone(), 0));
            self.stats.record(MessageKind::Replicate, 8 * delta);
            placed += 1;
        }
        promoted
    }

    /// Total items held as replicas across the network (diagnostics).
    pub fn total_replica_items(&self) -> u64 {
        self.nodes.values().flat_map(|n| n.replicas.values()).map(|(s, _)| s.len() as u64).sum()
    }
}

/// Convenience: a store's values as a sorted clone (test helper).
#[allow(dead_code)]
fn sorted_clone(s: &LocalStore) -> Vec<f64> {
    s.values().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use dde_stats::rng::{Component, SeedSequence};
    use rand::Rng;

    fn net_with_data(peers: usize, items: usize, seed: u64) -> Network {
        let seq = SeedSequence::new(seed);
        let mut id_rng = seq.stream(Component::NodeIds, 0);
        let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
        ids.sort();
        ids.dedup();
        let mut net = Network::build(ids, Placement::range(0.0, 1000.0));
        let mut data_rng = seq.stream(Component::Dataset, 0);
        let data: Vec<f64> = (0..items).map(|_| data_rng.gen::<f64>() * 1000.0).collect();
        net.bulk_load(&data);
        net
    }

    #[test]
    fn seeding_places_r_copies() {
        let mut net = net_with_data(32, 3_200, 1);
        net.set_replication(2);
        // Every non-empty primary has 2 replicas ⇒ replica items ≈ 2 × total.
        let total = net.total_items();
        assert_eq!(net.total_replica_items(), 2 * total);
        // Replication off clears them.
        net.set_replication(0);
        assert_eq!(net.total_replica_items(), 0);
    }

    #[test]
    fn crash_then_stabilize_recovers_data() {
        let mut net = net_with_data(64, 6_400, 2);
        net.set_replication(2);
        let before = net.total_items();
        // Crash 10 spread-out, non-adjacent peers.
        let ids: Vec<RingId> = net.ids().collect();
        for i in (0..60).step_by(6) {
            net.fail(ids[i]).unwrap();
        }
        assert!(net.total_items() < before, "crashes lose primaries initially");
        for _ in 0..6 {
            net.stabilize_round();
        }
        let after = net.total_items();
        assert_eq!(after, before, "replication must restore all crashed data");
        assert!(net.check_invariants().is_empty(), "{:?}", net.check_invariants());
    }

    #[test]
    fn adjacent_crashes_beyond_r_lose_data() {
        let mut net = net_with_data(64, 6_400, 3);
        net.set_replication(1);
        let before = net.total_items();
        // Crash 3 ADJACENT peers: with r = 1, the middle one's replica lived
        // on its (also crashed) successor ⇒ its data is unrecoverable.
        let ids: Vec<RingId> = net.ids().collect();
        for &id in &ids[20..23] {
            net.fail(id).unwrap();
        }
        for _ in 0..6 {
            net.stabilize_round();
        }
        let after = net.total_items();
        assert!(after < before, "r=1 cannot survive 3 adjacent crashes");
        assert!(after > before - before / 10, "only the unlucky arcs may vanish");
    }

    #[test]
    fn no_duplicates_with_multiple_replicas() {
        let mut net = net_with_data(48, 4_800, 4);
        net.set_replication(3);
        let before = net.total_items();
        let ids: Vec<RingId> = net.ids().collect();
        net.fail(ids[10]).unwrap();
        net.fail(ids[30]).unwrap();
        for _ in 0..6 {
            net.stabilize_round();
        }
        // Exactly restored — promotion is ownership-gated, so three replica
        // holders never triple-promote.
        assert_eq!(net.total_items(), before);
    }

    #[test]
    fn leases_garbage_collect_stale_entries() {
        let mut net = net_with_data(16, 800, 5);
        net.set_replication(1);
        let replica_items_seeded = net.total_replica_items();
        assert!(replica_items_seeded > 0);
        // A graceful leave removes the primary; its data moves to the heir,
        // whose own replication re-replicates it. The departed peer's stale
        // entries must disappear within the lease window.
        let victim = net.ids().nth(3).unwrap();
        net.leave(victim).unwrap();
        for _ in 0..(REPLICA_LEASE_ROUNDS + 2) {
            net.stabilize_round();
        }
        let stale: u64 = net
            .ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| {
                let n = net.node(id).unwrap();
                n.replicas.keys().filter(|p| !net.is_alive(**p)).count() as u64
            })
            .sum();
        assert_eq!(stale, 0, "stale replica entries must be GC'd");
        // Data is intact throughout.
        assert_eq!(net.total_items(), 800);
    }

    #[test]
    fn replication_traffic_is_charged_as_deltas() {
        let mut net = net_with_data(16, 1_600, 6);
        net.set_replication(1);
        let before = net.stats().clone();
        net.stabilize_round();
        let d1 = net.stats().since(&before);
        // First maintained round: replicas already seeded, deltas are zero ⇒
        // messages exist but bytes are header-only.
        let msgs = d1.count(MessageKind::Replicate);
        assert_eq!(msgs, 16, "one refresh per peer (r = 1)");
        let snapshot = net.stats().clone();
        net.stabilize_round();
        let d2 = net.stats().since(&snapshot);
        assert_eq!(d2.count(MessageKind::Replicate), 16);
    }
}
