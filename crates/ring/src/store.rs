//! Per-peer local data stores.
//!
//! Each peer keeps its items sorted by value, which makes rank queries,
//! range handoff (on join/leave), uniform tuple draws, and equi-depth
//! summary construction all cheap — exactly the operations the estimators
//! exercise.

use dde_stats::equidepth::EquiDepthSummary;
use rand::Rng;
use std::sync::Arc;

/// The process-wide empty backing vector. Every fresh store borrows this
/// allocation until its first write, so constructing a [`crate::Node`] —
/// and hence staging a join in a `ChurnBatch` — costs zero allocations
/// (fenced in `ring/tests/alloc_free.rs`). `Arc::make_mut` sees the shared
/// count and detaches on first mutation, exactly like a forked store.
fn shared_empty() -> Arc<Vec<f64>> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<Arc<Vec<f64>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A peer's local data: values sorted ascending.
///
/// The backing vector sits behind an [`Arc`] so cloning a store — and hence
/// forking a whole loaded [`crate::Network`] from a cached scenario
/// snapshot — is O(1) per peer; the first mutation of a shared store copies
/// it (`Arc::make_mut`).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalStore {
    sorted: Arc<Vec<f64>>,
}

impl Default for LocalStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalStore {
    /// An empty store (no allocation: the backing vector is the shared
    /// process-wide empty until the first write).
    pub fn new() -> Self {
        Self { sorted: shared_empty() }
    }

    /// Builds from unsorted values.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.sort_by(f64::total_cmp);
        Self { sorted: Arc::new(values) }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Inserts one value, keeping order (`O(n)` worst case; bulk loading
    /// should use [`LocalStore::extend_values`]).
    pub fn insert(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        let pos = self.sorted.partition_point(|&v| v <= x);
        Arc::make_mut(&mut self.sorted).insert(pos, x);
    }

    /// Adds many values at once, re-sorting once (`O((n+m) log (n+m))`).
    /// An empty iterator is a guaranteed no-op (no copy-on-write detach), so
    /// empty handoffs under batched churn stay allocation-free.
    pub fn extend_values(&mut self, values: impl IntoIterator<Item = f64>) {
        let mut it = values.into_iter();
        let Some(first) = it.next() else { return };
        let sorted = Arc::make_mut(&mut self.sorted);
        sorted.push(first);
        sorted.extend(it);
        sorted.sort_by(f64::total_cmp);
    }

    /// Drops all items, keeping the backing allocation when this store owns
    /// it (so a recycled arena slot's store can refill without reallocating).
    pub fn clear(&mut self) {
        match Arc::get_mut(&mut self.sorted) {
            Some(v) => v.clear(),
            None => self.sorted = shared_empty(),
        }
    }

    /// Number of items `<= x` (exact).
    pub fn count_le(&self, x: f64) -> usize {
        self.sorted.partition_point(|&v| v <= x)
    }

    /// Number of items in `[lo, hi]` (exact).
    pub fn count_range(&self, lo: f64, hi: f64) -> usize {
        if hi < lo {
            return 0;
        }
        let a = self.sorted.partition_point(|&v| v < lo);
        let b = self.sorted.partition_point(|&v| v <= hi);
        b - a
    }

    /// All items, sorted.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Removes and returns every item strictly greater than `split_lo` and
    /// `<= split_hi` — the handoff set when a new peer takes over the data
    /// arc `(split_lo, split_hi]` in value space.
    pub fn drain_range(&mut self, split_lo: f64, split_hi: f64) -> Vec<f64> {
        let a = self.sorted.partition_point(|&v| v <= split_lo);
        let b = self.sorted.partition_point(|&v| v <= split_hi);
        if a >= b {
            return Vec::new();
        }
        Arc::make_mut(&mut self.sorted).drain(a..b).collect()
    }

    /// Removes and returns all items (graceful-leave handoff). Guaranteed
    /// not to allocate (or detach a shared backing) when already empty.
    pub fn drain_all(&mut self) -> Vec<f64> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        std::mem::take(Arc::make_mut(&mut self.sorted))
    }

    /// Removes one occurrence of `x`; returns whether it was present.
    pub fn remove(&mut self, x: f64) -> bool {
        let pos = self.sorted.partition_point(|&v| v < x);
        if pos < self.sorted.len() && self.sorted[pos] == x {
            Arc::make_mut(&mut self.sorted).remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns every item matching `pred`, preserving order of
    /// the remainder. Used for handoff under hashed placement, where the
    /// handoff set is defined in *ring* space, not value space.
    pub fn drain_by(&mut self, mut pred: impl FnMut(f64) -> bool) -> Vec<f64> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        Arc::make_mut(&mut self.sorted).retain(|&x| {
            if pred(x) {
                out.push(x);
                false
            } else {
                true
            }
        });
        out
    }

    /// One uniform random item, or `None` if empty.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted[rng.gen_range(0..self.sorted.len())])
        }
    }

    /// The item at the local `q`-quantile, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// The equi-depth summary with `buckets` buckets this peer would ship in
    /// a probe reply.
    pub fn summary(&self, buckets: usize) -> EquiDepthSummary {
        EquiDepthSummary::from_sorted(&self.sorted, buckets.max(1))
    }

    /// Number of items in `self` that are missing from `other` (multiset
    /// difference size, linear merge over both sorted stores). Used to
    /// charge only the *delta* when refreshing replicas.
    pub fn missing_from(&self, other: &LocalStore) -> usize {
        let (a, b) = (&self.sorted, &other.sorted);
        let (mut i, mut j, mut missing) = (0usize, 0usize, 0usize);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                missing += 1;
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        missing
    }

    /// Sum of all stored values (for aggregate queries).
    pub fn sum(&self) -> f64 {
        self.sorted.iter().sum()
    }

    /// Sum of squares of all stored values (for variance estimation).
    pub fn sum_sq(&self) -> f64 {
        self.sorted.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_keeps_sorted() {
        let mut s = LocalStore::new();
        for x in [5.0, 1.0, 3.0, 3.0, 9.0, 0.0] {
            s.insert(x);
        }
        assert_eq!(s.values(), &[0.0, 1.0, 3.0, 3.0, 5.0, 9.0]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn count_queries() {
        let s = LocalStore::from_values(vec![1.0, 2.0, 2.0, 5.0, 8.0]);
        assert_eq!(s.count_le(0.0), 0);
        assert_eq!(s.count_le(2.0), 3);
        assert_eq!(s.count_le(100.0), 5);
        assert_eq!(s.count_range(2.0, 5.0), 3);
        assert_eq!(s.count_range(3.0, 4.0), 0);
        assert_eq!(s.count_range(5.0, 1.0), 0); // inverted
    }

    #[test]
    fn drain_range_is_half_open() {
        let mut s = LocalStore::from_values((1..=10).map(f64::from).collect());
        // (3, 7]: items 4, 5, 6, 7.
        let moved = s.drain_range(3.0, 7.0);
        assert_eq!(moved, vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 8.0, 9.0, 10.0]);
        // Draining again is a no-op.
        assert!(s.drain_range(3.0, 7.0).is_empty());
    }

    #[test]
    fn drain_all_empties() {
        let mut s = LocalStore::from_values(vec![1.0, 2.0]);
        assert_eq!(s.drain_all(), vec![1.0, 2.0]);
        assert!(s.is_empty());
    }

    #[test]
    fn sample_uniform_covers_items() {
        let s = LocalStore::from_values(vec![1.0, 2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let x = s.sample_uniform(&mut rng).unwrap();
            seen[(x as usize) - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(LocalStore::new().sample_uniform(&mut rng).is_none());
    }

    #[test]
    fn quantiles() {
        let s = LocalStore::from_values((1..=100).map(f64::from).collect());
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(LocalStore::new().quantile(0.5), None);
    }

    #[test]
    fn summary_matches_store_counts() {
        let s = LocalStore::from_values((0..1000).map(|i| (i % 97) as f64).collect());
        let sum = s.summary(16);
        assert_eq!(sum.total(), 1000);
        for x in [0.0, 10.0, 48.0, 96.0] {
            let exact = s.count_le(x) as f64;
            let approx = sum.count_le(x);
            assert!(
                (approx - exact).abs() <= 1000.0 / 16.0,
                "x={x}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn extend_values_bulk() {
        let mut s = LocalStore::from_values(vec![5.0]);
        s.extend_values([3.0, 9.0, 1.0]);
        assert_eq!(s.values(), &[1.0, 3.0, 5.0, 9.0]);
    }
}
