//! Proof that the steady-state lookup hot path never touches the heap.
//!
//! This binary installs [`CountingAlloc`] as its global allocator and counts
//! this thread's allocations across a block of warmed-up lookups. The
//! routing path is designed allocation-free — stack [`dde_ring::RouteBuf`]
//! candidates, stack successor snapshots, array-indexed message counters —
//! and this test is the regression fence that keeps it that way.

use dde_ring::{BatchRouter, ChurnBatch, Network, Placement, RingId};
use dde_stats::alloc::{thread_allocations, CountingAlloc};
use dde_stats::rng::{Component, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_lookup_allocates_nothing() {
    let seq = SeedSequence::new(42);
    let mut id_rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..512).map(|_| RingId(id_rng.gen())).collect();
    ids.sort();
    ids.dedup();
    let mut net = Network::build(ids, Placement::range(0.0, 1000.0));
    let mut rng = seq.stream(Component::Workload, 0);
    let from = net.random_peer(&mut rng).expect("nonempty");

    // Warm-up: fault-free, churn-free lookups have no lazy state to pull in,
    // but a warm-up block keeps the fence honest if that ever changes.
    for _ in 0..64 {
        net.lookup(from, RingId(rng.gen())).expect("routes");
    }

    let before = thread_allocations();
    let mut hops = 0u32;
    for _ in 0..1_000 {
        hops += net.lookup(from, RingId(rng.gen())).expect("routes").hops;
    }
    let delta = thread_allocations() - before;
    assert!(hops > 1_000, "multi-hop routes expected in a 512-peer ring");
    assert_eq!(delta, 0, "lookup hot path allocated {delta} times over 1000 lookups");
}

#[test]
fn warmed_batched_lookup_allocates_nothing() {
    // The serving hot path: same-origin windows routed through a shared
    // BatchRouter. The router's edge buffer grows during warm-up and is
    // reused (`begin_window` clears, never shrinks), so warmed windows must
    // stay off the heap exactly like per-op lookups. Warm-up windows are
    // wider than measured ones, so the edge high-water mark is already set.
    let seq = SeedSequence::new(1404);
    let mut id_rng = seq.stream(Component::NodeIds, 3);
    let mut ids: Vec<RingId> = (0..512).map(|_| RingId(id_rng.gen())).collect();
    ids.sort();
    ids.dedup();
    let mut net = Network::build(ids, Placement::range(0.0, 1000.0));
    let mut rng = seq.stream(Component::Workload, 3);
    let from = net.random_peer(&mut rng).expect("nonempty");
    let mut batch = BatchRouter::new();

    for _ in 0..4 {
        batch.begin_window();
        for _ in 0..64 {
            net.lookup_batched(from, RingId(rng.gen()), &mut batch).expect("routes");
        }
    }

    let before = thread_allocations();
    let mut hops = 0u32;
    for _ in 0..63 {
        batch.begin_window();
        for _ in 0..16 {
            hops += net.lookup_batched(from, RingId(rng.gen()), &mut batch).expect("routes").hops;
        }
    }
    let delta = thread_allocations() - before;
    assert!(hops > 1_000, "multi-hop routes expected in a 512-peer ring");
    assert_eq!(delta, 0, "batched lookup hot path allocated {delta} times over 1008 lookups");
}

#[test]
fn bulk_built_lookup_stays_allocation_free() {
    // The mega-scale construction path: `build_bulk` wires the arena in one
    // O(P·log P) pass and `bulk_join` re-wires it after a block of joiners.
    // Both must leave the same kind of arena layout the incremental path
    // produces — warmed lookups stay off the heap.
    let seq = SeedSequence::new(99);
    let mut id_rng = seq.stream(Component::NodeIds, 2);
    let ids: Vec<RingId> = (0..512).map(|_| RingId(id_rng.gen())).collect();
    let mut net = Network::build_bulk(ids, Placement::range(0.0, 1000.0));
    let block: Vec<RingId> = (0..64).map(|_| RingId(id_rng.gen())).collect();
    assert!(net.bulk_join(&block) > 0, "the join block must add peers");
    let mut rng = seq.stream(Component::Workload, 2);
    let from = net.random_peer(&mut rng).expect("nonempty");

    for _ in 0..64 {
        net.lookup(from, RingId(rng.gen())).expect("routes");
    }

    let before = thread_allocations();
    let mut hops = 0u32;
    for _ in 0..1_000 {
        hops += net.lookup(from, RingId(rng.gen())).expect("routes").hops;
    }
    let delta = thread_allocations() - before;
    assert!(hops > 1_000, "multi-hop routes expected in a 500+-peer ring");
    assert_eq!(delta, 0, "bulk-built lookup allocated {delta} times over 1000 lookups");
}

/// One churn window: 8 joins at fresh uniform ids, 4 graceful leaves, and
/// 4 crashes, coalesced into a single batched repair sweep. Returns the
/// number of membership events actually applied.
fn churn_window(net: &mut Network, batch: &mut ChurnBatch, rng: &mut StdRng) -> u64 {
    for _ in 0..8 {
        batch.join(RingId(rng.gen()));
    }
    for _ in 0..4 {
        batch.leave(net.random_peer(rng).expect("nonempty"));
    }
    for _ in 0..4 {
        batch.crash(net.random_peer(rng).expect("nonempty"));
    }
    let applied = batch.apply(net);
    applied.joins + applied.leaves + applied.crashes
}

#[test]
fn warmed_batch_churn_allocates_nothing() {
    // The amortized mutation path: a warmed `ChurnBatch` window — staged
    // joins in recycled arena slots, column splice through the batch's
    // retained spare buffers, one monotone repair sweep — must stay off the
    // heap on a data-free ring. Every buffer involved is cleared between
    // windows, never dropped, and each window's deaths release the very
    // slots the next window's joins claim through the arena's LIFO free
    // list. Windows are kept small enough (16 events) that the batch's
    // id-ordering sorts stay in their no-buffer insertion regime.
    let seq = SeedSequence::new(0xC4A2);
    let mut id_rng = seq.stream(Component::NodeIds, 4);
    let mut ids: Vec<RingId> = (0..512).map(|_| RingId(id_rng.gen())).collect();
    ids.sort();
    ids.dedup();
    let mut net = Network::build_bulk(ids, Placement::range(0.0, 1000.0));
    let mut rng = seq.stream(Component::Churn, 0);
    let mut batch = ChurnBatch::new();

    // Warm-up: sets the event/overlay/spare-column high-water marks and
    // seeds the free list with the slots the measured joins will reuse.
    for _ in 0..4 {
        churn_window(&mut net, &mut batch, &mut rng);
    }

    let before = thread_allocations();
    let mut applied = 0u64;
    for _ in 0..64 {
        applied += churn_window(&mut net, &mut batch, &mut rng);
    }
    let delta = thread_allocations() - before;
    assert!(applied > 900, "windows must actually churn, applied only {applied} events");
    assert_eq!(delta, 0, "warmed batch churn allocated {delta} times over 64 windows");
}

#[test]
fn hotspot_arc_lookup_stays_allocation_free() {
    // The adversarial scenario pack's id shape: most peers packed into one
    // narrow arc (1/64th of the ring), a handful spread over the rest, and
    // every lookup aimed *into* the packed arc. Degenerate finger tables
    // must not push the warmed routing path onto the heap.
    let seq = SeedSequence::new(77);
    let mut id_rng = seq.stream(Component::NodeIds, 1);
    let arc_start = 0xC000_0000_0000_0000u64;
    let arc_span = u64::MAX / 64;
    let mut ids: Vec<RingId> =
        (0..448).map(|_| RingId(arc_start.wrapping_add(id_rng.gen::<u64>() % arc_span))).collect();
    ids.extend((0..64).map(|_| RingId(id_rng.gen())));
    ids.sort();
    ids.dedup();
    let mut net = Network::build(ids, Placement::range(0.0, 1000.0));
    let mut rng = seq.stream(Component::Workload, 1);
    let from = net.random_peer(&mut rng).expect("nonempty");
    let hot = move |rng: &mut rand::rngs::StdRng| {
        RingId(arc_start.wrapping_add(rng.gen::<u64>() % arc_span))
    };

    for _ in 0..64 {
        let target = hot(&mut rng);
        net.lookup(from, target).expect("routes");
    }

    let before = thread_allocations();
    for _ in 0..1_000 {
        let target = hot(&mut rng);
        net.lookup(from, target).expect("routes");
    }
    let delta = thread_allocations() - before;
    assert_eq!(delta, 0, "hotspot-arc lookup allocated {delta} times over 1000 lookups");
}
