//! Property tests for routing under injected faults: whatever the fault
//! plan and churn mix, a lookup either returns the true owner or fails with
//! a typed error — it never silently returns a wrong owner — and identical
//! fault seeds replay identically.

use dde_ring::{FaultPlan, LookupError, Network, Placement, RingId};
use dde_stats::rng::{Component, SeedSequence};
use proptest::prelude::*;
use rand::Rng;

fn random_net(p: usize, seed: u64) -> Network {
    let seq = SeedSequence::new(seed);
    let mut rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
    ids.sort();
    ids.dedup();
    Network::build(ids, Placement::range(0.0, 1000.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a fully-alive ring, transient faults (lost requests, lost replies,
    /// sick peers) may fail a lookup but must NEVER make it return a wrong
    /// owner: the true owner is alive, so passing ownership to a successor
    /// would be an integrity violation.
    #[test]
    fn transient_faults_never_yield_wrong_owner(
        seed in 0u64..500,
        fault_seed: u64,
        loss in 0.0f64..0.5,
        reply_loss in 0.0f64..0.3,
        sick in 0.0f64..0.2,
    ) {
        let mut net = random_net(48, seed);
        net.set_fault_plan(
            FaultPlan::new(fault_seed)
                .with_loss(loss)
                .with_reply_loss(reply_loss)
                .with_sick(sick, 16),
        );
        let seq = SeedSequence::new(seed ^ 0xF0);
        let mut rng = seq.stream(Component::Test, 0);
        let from = net.random_peer(&mut rng).expect("nonempty");
        for _ in 0..20 {
            let target = RingId(rng.gen());
            match net.lookup(from, target) {
                Ok(res) => prop_assert_eq!(
                    res.owner,
                    net.true_owner(target),
                    "wrong owner under transient faults"
                ),
                // Typed failures are the allowed outcome.
                Err(
                    LookupError::MessageLost
                    | LookupError::NoRoute
                    | LookupError::HopLimitExceeded,
                ) => {}
                Err(e) => panic!("unexpected error on an alive ring: {e}"),
            }
        }
    }

    /// With a churn mix on top (a fraction of peers abruptly dead, plus
    /// crash faults killing peers mid-request), a lookup still only ever
    /// returns an alive owner — or a typed error.
    #[test]
    fn faults_and_churn_return_alive_owner_or_typed_error(
        seed in 0u64..500,
        fault_seed: u64,
        kill in 0.0f64..0.3,
        loss in 0.0f64..0.4,
        crash in 0.0f64..0.05,
    ) {
        let mut net = random_net(64, seed);
        let seq = SeedSequence::new(seed ^ 0xC4);
        let mut rng = seq.stream(Component::Churn, 0);
        let victims: Vec<RingId> = {
            let ids: Vec<RingId> = net.ids().collect();
            // Leave at least a handful alive.
            ids.iter().copied().filter(|_| rng.gen::<f64>() < kill).take(48).collect()
        };
        for v in victims {
            let _ = net.fail(v);
        }
        net.set_fault_plan(
            FaultPlan::new(fault_seed).with_loss(loss).with_crash(crash),
        );
        let from = net.random_peer(&mut rng).expect("nonempty");
        for _ in 0..20 {
            if !net.is_alive(from) {
                break; // a crash fault can kill the initiator's node
            }
            let target = RingId(rng.gen());
            // Every error is typed and acceptable here; an Ok owner must be
            // alive.
            if let Ok(res) = net.lookup(from, target) {
                prop_assert!(net.is_alive(res.owner), "lookup returned a dead owner");
            }
        }
    }

    /// The same fault seed against the same operation sequence replays
    /// byte-identically — outcomes and message accounting included.
    #[test]
    fn same_fault_seed_replays_lookups_identically(
        seed in 0u64..200,
        fault_seed: u64,
        loss in 0.0f64..0.4,
    ) {
        let run = || {
            let mut net = random_net(32, seed);
            net.set_fault_plan(FaultPlan::new(fault_seed).with_loss(loss));
            let seq = SeedSequence::new(seed ^ 0xAB);
            let mut rng = seq.stream(Component::Test, 1);
            let from = net.random_peer(&mut rng).expect("nonempty");
            let outcomes: Vec<String> = (0..15)
                .map(|_| format!("{:?}", net.lookup(from, RingId(rng.gen()))))
                .collect();
            (outcomes, format!("{:?}", net.stats()))
        };
        prop_assert_eq!(run(), run());
    }
}
