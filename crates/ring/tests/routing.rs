//! Integration tests for overlay routing: correctness against ground truth,
//! logarithmic hop counts, resilience to failures, and message accounting.

use dde_ring::{LookupError, MessageKind, Network, Placement, RingId};
use dde_stats::rng::{Component, SeedSequence};
use proptest::prelude::*;
use rand::Rng;

fn random_net(p: usize, seed: u64) -> Network {
    let seq = SeedSequence::new(seed);
    let mut rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..p).map(|_| RingId(rng.gen())).collect();
    ids.sort();
    ids.dedup();
    Network::build(ids, Placement::range(0.0, 1000.0))
}

#[test]
fn lookup_matches_true_owner_everywhere() {
    let mut net = random_net(128, 42);
    let seq = SeedSequence::new(7);
    let mut rng = seq.stream(Component::Test, 0);
    let initiators: Vec<RingId> = net.ids().collect();
    for i in 0..500 {
        let target = RingId(rng.gen());
        let from = initiators[i % initiators.len()];
        let res = net.lookup(from, target).expect("perfect ring must route");
        assert_eq!(res.owner, net.true_owner(target), "target {target} from {from}");
    }
}

#[test]
fn hops_are_logarithmic() {
    for (p, max_mean) in [(64usize, 8.0), (512, 11.0), (4096, 14.0)] {
        let mut net = random_net(p, 1);
        let seq = SeedSequence::new(2);
        let mut rng = seq.stream(Component::Test, p as u64);
        let from = net.random_peer(&mut rng).unwrap();
        let mut total_hops = 0u64;
        let n_lookups = 200;
        for _ in 0..n_lookups {
            let res = net.lookup(from, RingId(rng.gen())).unwrap();
            total_hops += u64::from(res.hops);
        }
        let mean = total_hops as f64 / n_lookups as f64;
        // Chord bound: ~0.5·log2(P) expected hops.
        assert!(mean <= max_mean, "P={p}: mean hops {mean}");
        assert!(mean >= 1.0, "P={p}: implausibly low hop count {mean}");
    }
}

#[test]
fn lookup_own_arc_is_free() {
    let mut net = random_net(64, 3);
    let ids: Vec<RingId> = net.ids().collect();
    for &id in &ids {
        let res = net.lookup(id, id).unwrap();
        assert_eq!(res.owner, id);
        assert_eq!(res.hops, 0);
    }
}

#[test]
fn probe_reply_is_consistent() {
    let mut net = random_net(32, 5);
    let items: Vec<f64> = (0..2000).map(|i| (i % 1000) as f64).collect();
    net.bulk_load(&items);
    let seq = SeedSequence::new(4);
    let mut rng = seq.stream(Component::Probes, 0);
    let from = net.random_peer(&mut rng).unwrap();
    for _ in 0..50 {
        let point = RingId(rng.gen());
        let reply = net.probe(from, point).unwrap();
        assert_eq!(reply.peer, net.true_owner(point));
        let node = net.node(reply.peer).unwrap();
        assert_eq!(reply.count, node.store.len() as u64);
        assert_eq!(reply.summary.total(), reply.count);
        assert_eq!(reply.predecessor, node.predecessor);
    }
    assert_eq!(net.stats().count(MessageKind::Probe), 50);
    assert_eq!(net.stats().count(MessageKind::ProbeReply), 50);
}

#[test]
fn routing_survives_failures_without_stabilization() {
    let mut net = random_net(256, 9);
    let seq = SeedSequence::new(10);
    let mut rng = seq.stream(Component::Churn, 0);
    // Kill 20% of peers abruptly; successor lists (len 8) must carry lookups.
    let victims: Vec<RingId> = {
        let ids: Vec<RingId> = net.ids().collect();
        ids.iter().copied().filter(|_| rng.gen::<f64>() < 0.2).collect()
    };
    for v in &victims {
        net.fail(*v).unwrap();
    }
    let from = net.random_peer(&mut rng).unwrap();
    let mut ok = 0;
    let trials = 200;
    for _ in 0..trials {
        let target = RingId(rng.gen());
        match net.lookup(from, target) {
            Ok(res) => {
                assert!(net.is_alive(res.owner));
                ok += 1;
            }
            Err(LookupError::NoRoute | LookupError::HopLimitExceeded) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(ok as f64 / trials as f64 > 0.95, "only {ok}/{trials} lookups survived");
    // Timeouts must have been charged for dead hops.
    assert!(net.stats().count(MessageKind::LookupTimeout) > 0);
}

#[test]
fn lookup_errors_on_dead_initiator() {
    let mut net = random_net(8, 11);
    assert_eq!(net.lookup(RingId(12345), RingId(1)), Err(LookupError::InitiatorDead));
}

#[test]
fn single_node_owns_everything() {
    let mut net = Network::build(vec![RingId(77)], Placement::range(0.0, 1.0));
    net.bulk_load(&[0.1, 0.5, 0.9]);
    for t in [0u64, 77, u64::MAX] {
        let res = net.lookup(RingId(77), RingId(t)).unwrap();
        assert_eq!(res.owner, RingId(77));
    }
    assert_eq!(net.total_items(), 3);
}

#[test]
fn message_accounting_matches_hops() {
    let mut net = random_net(128, 13);
    let seq = SeedSequence::new(6);
    let mut rng = seq.stream(Component::Test, 1);
    let from = net.random_peer(&mut rng).unwrap();
    let before = net.stats().clone();
    let res = net.lookup(from, RingId(rng.gen())).unwrap();
    let delta = net.stats().since(&before);
    // 2 messages per hop on a healthy ring, no timeouts.
    assert_eq!(delta.count(MessageKind::LookupHop), 2 * u64::from(res.hops));
    assert_eq!(delta.count(MessageKind::LookupTimeout), 0);
    assert_eq!(delta.lookups(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a perfectly wired ring, lookup owner == ground-truth owner.
    #[test]
    fn lookup_correct_prop(seed in 0u64..1000, target: u64) {
        let mut net = random_net(48, seed);
        let from = net.ids().next().unwrap();
        let res = net.lookup(from, RingId(target)).unwrap();
        prop_assert_eq!(res.owner, net.true_owner(RingId(target)));
    }

    /// Bulk-loaded items always sit on their true owner.
    #[test]
    fn bulk_load_places_correctly(seed in 0u64..200) {
        let mut net = random_net(16, seed);
        let vals: Vec<f64> = (0..200).map(|i| i as f64 * 5.0).collect();
        net.bulk_load(&vals);
        prop_assert!(net.check_invariants().is_empty());
        prop_assert_eq!(net.total_items(), 200);
        let _ = &mut net;
    }
}
