//! Regression tests for the epoch-invalidated ground-truth cache.
//!
//! [`Network::global_values`] memoizes the collected-and-sorted global
//! multiset behind a mutation epoch. These tests pin the two ways that can
//! go wrong: serving a *stale* snapshot after a mutation (correctness), and
//! recomputing on every read (the perf property the cache exists for).

use dde_ring::{Network, Placement, RingId};
use dde_stats::rng::{Component, SeedSequence};
use rand::Rng;
use std::sync::Arc;

fn net_with_data(peers: usize, items: usize, seed: u64) -> Network {
    let seq = SeedSequence::new(seed);
    let mut id_rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = (0..peers).map(|_| RingId(id_rng.gen())).collect();
    ids.sort();
    ids.dedup();
    let mut net = Network::build(ids, Placement::range(0.0, 1000.0));
    let mut data_rng = seq.stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..items).map(|_| data_rng.gen::<f64>() * 1000.0).collect();
    net.bulk_load(&data);
    net
}

/// The cache-independent oracle: walk every store directly.
fn collected_truth(net: &Network) -> Vec<f64> {
    let mut all: Vec<f64> =
        net.ids().flat_map(|id| net.node(id).unwrap().store.values().to_vec()).collect();
    all.sort_by(f64::total_cmp);
    all
}

#[test]
fn same_epoch_reads_share_one_computation() {
    let net = net_with_data(32, 3_200, 1);
    let a = net.global_values_arc();
    let b = net.global_values_arc();
    assert!(Arc::ptr_eq(&a, &b), "a second same-epoch read must hit the cache");
    assert_eq!(*a, collected_truth(&net));
}

#[test]
fn insert_evaluate_delete_evaluate_never_sees_stale_truth() {
    let mut net = net_with_data(32, 3_200, 2);
    let initiator = net.ids().next().unwrap();
    let before = net.global_values();
    let epoch0 = net.mutation_epoch();

    // Insert → evaluate: the inserted value must be visible immediately.
    net.insert(initiator, 123.25).unwrap();
    assert_ne!(net.mutation_epoch(), epoch0, "insert must bump the epoch");
    let with = net.global_values();
    assert_eq!(with.len(), before.len() + 1);
    assert!(with.binary_search_by(|v| v.total_cmp(&123.25)).is_ok());
    assert_eq!(with, collected_truth(&net));

    // Delete → evaluate: back to the original multiset, not the cached one.
    let (removed, _) = net.delete(initiator, 123.25).unwrap();
    assert!(removed);
    let after = net.global_values();
    assert_eq!(after, before, "delete must invalidate the insert-epoch cache");
    assert_eq!(after, collected_truth(&net));
}

#[test]
fn membership_churn_invalidates_the_cache() {
    let mut net = net_with_data(64, 6_400, 3);
    let _ = net.global_values(); // warm the cache
    let ids: Vec<RingId> = net.ids().collect();

    // A graceful leave hands data off (multiset preserved), a crash loses
    // the victim's primaries; either way cached truth must track the oracle.
    net.leave(ids[5]).unwrap();
    assert_eq!(net.global_values(), collected_truth(&net), "stale truth after leave");

    net.fail(ids[20]).unwrap();
    let after_fail = net.global_values();
    assert_eq!(after_fail, collected_truth(&net), "stale truth after fail");
    assert!(after_fail.len() < 6_400, "the crash should have lost data");

    for _ in 0..3 {
        net.stabilize_round();
    }
    assert_eq!(net.global_values(), collected_truth(&net), "stale truth after stabilization");
}

/// The exact-aggregation estimator consumes `global_values()`-style state
/// after churn; a stale cache shows up as an N mismatch there. Pin the raw
/// count instead, through the same mutation sequence.
#[test]
fn total_items_and_truth_agree_through_churn() {
    let mut net = net_with_data(48, 4_800, 4);
    let ids: Vec<RingId> = net.ids().collect();
    for (i, &id) in ids.iter().enumerate().take(12) {
        if i % 3 == 0 {
            net.fail(id).unwrap();
        } else {
            net.leave(id).unwrap();
        }
        net.stabilize_round();
        let truth = net.global_values();
        assert_eq!(truth.len() as u64, net.total_items(), "cache and counters diverged");
        assert_eq!(truth, collected_truth(&net));
    }
}
