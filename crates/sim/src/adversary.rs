//! Deterministic adversarial node placement.
//!
//! The paper's stratified sampler probes ring positions; a position's owner
//! is the peer whose arc covers it, so a peer's chance of being sampled is
//! its arc *length* — not its data share. The placement that maximizes the
//! bias of an uncorrected (arc-uniform) estimator therefore packs almost
//! every peer into the *sparsest* data region (a thicket of tiny, empty
//! arcs that soak up samples) while a handful of peers cover the dense
//! region with giant arcs. This module generates that layout — fully
//! deterministically, with no RNG: the ids are a pure function of the
//! dataset and peer count, so seed purity is inherited from the dataset and
//! two builds of the same scenario place identically.

use dde_ring::{DomainMap, Network, RingId};

/// Equal-width value windows scanned when classifying dense/sparse regions.
pub const WINDOWS: usize = 16;

/// Fraction of peers packed into the sparsest window: `PACKED_NUM /
/// PACKED_DEN` of them (the rest spread over the remaining ring).
const PACKED_NUM: usize = 7;
const PACKED_DEN: usize = 8;

/// Item count per equal-width value window over `[lo, hi]`.
///
/// `sorted` must be ascending; counts come from binary searches, so this is
/// O(WINDOWS · log n).
fn window_counts(sorted: &[f64], lo: f64, hi: f64) -> [usize; WINDOWS] {
    let width = (hi - lo) / WINDOWS as f64;
    let mut counts = [0usize; WINDOWS];
    let mut prev = sorted.partition_point(|&x| x < lo);
    for (w, slot) in counts.iter_mut().enumerate() {
        let edge = if w + 1 == WINDOWS { hi } else { lo + (w + 1) as f64 * width };
        let next = sorted.partition_point(|&x| x <= edge);
        *slot = next - prev;
        prev = next;
    }
    counts
}

/// Index of the window holding the *fewest* items (ties → lowest index).
pub fn sparsest_window(sorted: &[f64], lo: f64, hi: f64) -> usize {
    let counts = window_counts(sorted, lo, hi);
    counts.iter().enumerate().min_by_key(|&(_, c)| *c).map(|(w, _)| w).expect("WINDOWS > 0")
}

/// Index of the window holding the *most* items (ties → lowest index).
pub fn densest_window(sorted: &[f64], lo: f64, hi: f64) -> usize {
    let counts = window_counts(sorted, lo, hi);
    counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(w, _)| w).expect("WINDOWS > 0")
}

/// The ring arc `(start, span)` that value window `w` maps to under `map`.
pub fn window_arc(w: usize, lo: f64, hi: f64, map: &DomainMap) -> (u64, u64) {
    let width = (hi - lo) / WINDOWS as f64;
    let start = map.to_ring(lo + w as f64 * width).0;
    let end = if w + 1 == WINDOWS { u64::MAX } else { map.to_ring(lo + (w + 1) as f64 * width).0 };
    (start, end.wrapping_sub(start))
}

/// The bias-maximizing node layout for `peers` peers over `sorted` data
/// (ascending) on `[lo, hi]` under range placement `map`: 7/8 of the peers
/// evenly packed into the sparsest window's arc, the rest evenly spread
/// over the remaining ring. Deterministic — no RNG.
///
/// The caller sorts/dedups; evenly-spaced ids cannot collide within one
/// group, and cross-group collisions would need the two lattices to align
/// exactly (measure zero; dedup handles it regardless).
pub fn adversarial_ids(
    peers: usize,
    sorted: &[f64],
    lo: f64,
    hi: f64,
    map: &DomainMap,
) -> Vec<RingId> {
    let w = sparsest_window(sorted, lo, hi);
    let (start, span) = window_arc(w, lo, hi, map);
    let packed = (peers * PACKED_NUM / PACKED_DEN).max(1).min(peers);
    let rest = peers - packed;
    let mut ids = Vec::with_capacity(peers);
    // Evenly spaced inside the packed arc, offset to midpoints so the first
    // id is never exactly the arc start (which the sparse side also emits).
    for i in 0..packed {
        let off = (span as u128 * (2 * i as u128 + 1) / (2 * packed as u128)) as u64;
        ids.push(RingId(start.wrapping_add(off)));
    }
    let rest_start = start.wrapping_add(span);
    let rest_span = span.wrapping_neg(); // 2^64 - span, mod 2^64
    for i in 0..rest {
        let off = (rest_span as u128 * (2 * i as u128 + 1) / (2 * rest as u128)) as u64;
        ids.push(RingId(rest_start.wrapping_add(off)));
    }
    ids
}

/// Relative bias of the *uncorrected* arc-uniform estimator on `net`: the
/// expected naive total estimate `P · Σᵢ arc_fracᵢ · countᵢ` against the
/// true item total, as a fraction of the total. Near 0 when arc length and
/// data share are uncorrelated (uniform ids); large and positive when dense
/// peers own long arcs (this module's layout). Diagnostic for tests and the
/// F13 report.
pub fn arc_weighted_bias(net: &Network) -> f64 {
    let ids: Vec<RingId> = net.ids().collect();
    let p = ids.len();
    let total: u64 = net.total_items();
    if p == 0 || total == 0 {
        return 0.0;
    }
    let mut naive = 0.0;
    for (i, &id) in ids.iter().enumerate() {
        let pred = ids[(i + p - 1) % p];
        let arc = id.0.wrapping_sub(pred.0);
        let frac = arc as f64 / 2f64.powi(64);
        let count = net.node(id).expect("listed id").store.len() as f64;
        naive += frac * count;
    }
    (naive * p as f64 - total as f64) / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_counts_partition_the_dataset() {
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let counts = window_counts(&sorted, 0.0, 1000.0);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // Uniform data: every window gets ~1000/16.
        for c in counts {
            assert!((50..=75).contains(&c), "uniform window count off: {c}");
        }
    }

    #[test]
    fn sparse_and_dense_windows_found() {
        // All mass in the first sixteenth: window 0 densest, window 1 the
        // first empty one.
        let sorted: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect(); // [0, 49.5]
        assert_eq!(densest_window(&sorted, 0.0, 1000.0), 0);
        assert_eq!(sparsest_window(&sorted, 0.0, 1000.0), 1);
    }

    #[test]
    fn adversarial_ids_are_deterministic_and_distinct() {
        let sorted: Vec<f64> = (0..500).map(|i| (i as f64).powf(1.5)).collect();
        let map = DomainMap::new(0.0, 12_000.0);
        let a = adversarial_ids(64, &sorted, 0.0, 12_000.0, &map);
        let b = adversarial_ids(64, &sorted, 0.0, 12_000.0, &map);
        assert_eq!(a, b, "generator must be a pure function");
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "evenly spaced ids must not collide");
    }

    #[test]
    fn most_ids_land_in_the_sparsest_arc() {
        let sorted: Vec<f64> = (0..500).map(|i| (i as f64).powf(1.5)).collect();
        let (lo, hi) = (0.0, 12_000.0);
        let map = DomainMap::new(lo, hi);
        let ids = adversarial_ids(64, &sorted, lo, hi, &map);
        let (start, span) = window_arc(sparsest_window(&sorted, lo, hi), lo, hi, &map);
        let inside = ids.iter().filter(|id| id.0.wrapping_sub(start) < span).count();
        assert_eq!(inside, 64 * PACKED_NUM / PACKED_DEN);
    }
}
