//! Turning a [`Scenario`] into a live network with data and ground truth.

use crate::adversary;
use crate::scenario::{NodeLayout, PlacementMode, Scenario};
use dde_ring::{FaultPlan, Network, Placement, RingId};
use dde_stats::dist::Distribution;
use dde_stats::rng::{splitmix64, Component, SeedSequence};
use dde_stats::streaming::StreamingTruth;
use dde_stats::{CdfFn, Ecdf};
use rand::Rng;
use std::sync::{Arc, Mutex};

/// Item count at or above which the realized-data ground truth switches
/// from a materialized [`Ecdf`] to the analytic [`StreamingTruth`]: sorting
/// and retaining tens of millions of doubles per cell would dominate the
/// mega-scale build budget, and above this size the empirical CDF is within
/// DKW noise (`ε(10⁶, 10⁻³) ≈ 0.002`) of the generator anyway.
pub const STREAMING_TRUTH_ITEMS: usize = 1_000_000;

/// The realized dataset's ground truth — what a perfect estimator would
/// recover. Materialized at quick-suite scales, analytic (the generating
/// distribution standing in, exact to DKW noise) in the mega-scale regime.
#[derive(Debug)]
pub enum DataTruth {
    /// The dataset's empirical CDF, materialized (differs from the
    /// generator by the dataset's own sampling noise).
    Empirical(Ecdf),
    /// Analytic stand-in above [`STREAMING_TRUTH_ITEMS`]: the generator's
    /// exact CDF plus the realized item count (see
    /// [`dde_stats::streaming`]).
    Analytic(StreamingTruth),
}

impl DataTruth {
    /// The materialized samples, when this truth is empirical.
    pub fn samples(&self) -> Option<&[f64]> {
        match self {
            DataTruth::Empirical(e) => Some(e.samples()),
            DataTruth::Analytic(_) => None,
        }
    }

    /// The empirical CDF, when materialized.
    pub fn ecdf(&self) -> Option<&Ecdf> {
        match self {
            DataTruth::Empirical(e) => Some(e),
            DataTruth::Analytic(_) => None,
        }
    }

    /// Whether this truth is the analytic (streamed) flavour.
    pub fn is_analytic(&self) -> bool {
        matches!(self, DataTruth::Analytic(_))
    }
}

impl CdfFn for DataTruth {
    fn cdf(&self, x: f64) -> f64 {
        match self {
            DataTruth::Empirical(e) => e.cdf(x),
            DataTruth::Analytic(t) => t.cdf(x),
        }
    }

    fn domain(&self) -> (f64, f64) {
        match self {
            DataTruth::Empirical(e) => e.domain(),
            DataTruth::Analytic(t) => t.domain(),
        }
    }

    fn inv_cdf(&self, u: f64) -> f64 {
        match self {
            DataTruth::Empirical(e) => e.inv_cdf(u),
            DataTruth::Analytic(t) => t.inv_cdf(u),
        }
    }
}

/// A built scenario: the network plus both flavours of ground truth.
pub struct BuiltScenario {
    /// The live overlay with data loaded.
    pub net: Network,
    /// The generating distribution (analytic ground truth).
    pub truth: Box<dyn Distribution>,
    /// The realized dataset's ground truth (empirical at quick-suite
    /// scales, analytic in the mega-scale regime).
    pub data_truth: DataTruth,
    /// The scenario this was built from.
    pub scenario: Scenario,
}

/// One cached build: everything in a [`BuiltScenario`] that is immutable
/// and cheap to hand out again. The analytic `truth` is *not* stored — a
/// `Box<dyn Distribution>` is rebuilt per caller from the scenario (pure
/// parameters, no sampling), which keeps the snapshot `Send + Sync`.
struct Snapshot {
    net: Network,
    /// `None` in the mega-scale regime — the analytic truth is rebuilt per
    /// caller from the scenario (pure parameters, no sampling).
    data_ecdf: Option<Ecdf>,
    /// The scenario the build actually used (the load-balanced + hashed
    /// combination falls back to uniform ids, so this can differ from the
    /// requested one).
    scenario: Scenario,
}

/// Most distinct scenarios kept alive at once. The quick suite builds a few
/// dozen distinct cells; evicting FIFO beyond this just re-runs a build.
const SNAPSHOT_CAP: usize = 32;

/// Content-keyed snapshot cache. A linear scan over `Debug`-rendered
/// scenario keys — at ≤ [`SNAPSHOT_CAP`] entries this is cheaper than any
/// map, and `Vec` keeps iteration order deterministic.
static SNAPSHOTS: Mutex<Vec<(String, Arc<Snapshot>)>> = Mutex::new(Vec::new());

fn snapshot_lookup(key: &str) -> Option<Arc<Snapshot>> {
    let cache = SNAPSHOTS.lock().expect("snapshot cache poisoned");
    cache.iter().find(|(k, _)| k == key).map(|(_, s)| Arc::clone(s))
}

fn snapshot_store(key: String, snap: Snapshot) {
    let mut cache = SNAPSHOTS.lock().expect("snapshot cache poisoned");
    if cache.iter().any(|(k, _)| *k == key) {
        return; // lost a benign build race; first writer wins
    }
    if cache.len() >= SNAPSHOT_CAP {
        cache.remove(0);
    }
    cache.push((key, Arc::new(snap)));
}

/// Builds the scenario, sharing work across repeated builds: the first
/// build of a given scenario runs [`build_fresh`] and caches an immutable
/// snapshot; later builds [`Network::fork`] the snapshot (cheap, copy-on-
/// write stores) instead of regenerating and re-sorting the dataset.
///
/// The cache is keyed on the scenario's entire content, so any parameter
/// change — including the seed — is a different entry. Forked and fresh
/// builds are byte-for-byte interchangeable (proven by the determinism
/// suite), so cache hits never change experiment output.
///
/// # Panics
/// Panics on degenerate scenarios (zero peers, zero items).
pub fn build(scenario: &Scenario) -> BuiltScenario {
    // ddelint::allow(wallclock, "timing-only: the duration feeds the build-time perf counter, never an experiment value — this site-level review also stops D8 taint here")
    let start = std::time::Instant::now();
    let built = build_cached(scenario);
    crate::exec::note_build(start.elapsed());
    built
}

fn build_cached(scenario: &Scenario) -> BuiltScenario {
    let key = format!("{scenario:?}");
    if let Some(snap) = snapshot_lookup(&key) {
        let (lo, hi) = snap.scenario.domain;
        let data_truth = match &snap.data_ecdf {
            Some(e) => DataTruth::Empirical(e.clone()),
            None => DataTruth::Analytic(StreamingTruth::new(
                snap.scenario.distribution.build(lo, hi),
                snap.net.total_items(),
            )),
        };
        return BuiltScenario {
            net: snap.net.fork(),
            truth: snap.scenario.distribution.build(lo, hi),
            data_truth,
            scenario: snap.scenario.clone(),
        };
    }
    let built = build_fresh(scenario);
    snapshot_store(
        key,
        Snapshot {
            net: built.net.fork(),
            data_ecdf: built.data_truth.ecdf().cloned(),
            scenario: built.scenario.clone(),
        },
    );
    built
}

/// Builds the scenario from scratch, bypassing the snapshot cache: derives
/// the dataset and node ids from the master seed, wires a perfect ring, and
/// bulk-loads the data.
///
/// # Panics
/// Panics on degenerate scenarios (zero peers, zero items).
pub fn build_fresh(scenario: &Scenario) -> BuiltScenario {
    assert!(scenario.peers > 0, "scenario needs peers");
    assert!(scenario.items > 0, "scenario needs items");
    let (lo, hi) = scenario.domain;
    let seq = SeedSequence::new(scenario.seed);
    let truth = scenario.distribution.build(lo, hi);

    // Dataset first: the load-balanced layout needs its quantiles.
    let mut data_rng = seq.stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..scenario.items).map(|_| truth.sample(&mut data_rng)).collect();

    let placement = match scenario.placement {
        PlacementMode::Range => Placement::range(lo, hi),
        PlacementMode::Hashed => Placement::hashed(lo, hi),
    };

    let mut id_rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = match scenario.layout {
        NodeLayout::UniformIds => (0..scenario.peers).map(|_| RingId(id_rng.gen())).collect(),
        NodeLayout::LoadBalanced => {
            // Ids at the dataset's quantiles (plus id-space jitter to break
            // ties between duplicate values). Only meaningful under range
            // placement; under hashing it degenerates to uniform anyway.
            let map = match placement.domain_map() {
                Some(m) => *m,
                None => {
                    // Hashed placement: quantile layout is meaningless;
                    // fall back to uniform ids.
                    return build_fresh(&Scenario {
                        layout: NodeLayout::UniformIds,
                        ..scenario.clone()
                    });
                }
            };
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            (1..=scenario.peers)
                .map(|i| {
                    let q = sorted[(i * scenario.items / scenario.peers).min(scenario.items - 1)];
                    let base = map.to_ring(q).0;
                    RingId(base.wrapping_add(id_rng.gen_range(0..1u64 << 20)))
                })
                .collect()
        }
        NodeLayout::Adversarial => {
            // Worst case for uncorrected arc-uniform sampling: most peers
            // packed into the sparsest data window (see `crate::adversary`).
            // Pure function of the dataset — consumes no id entropy.
            let map = match placement.domain_map() {
                Some(m) => *m,
                None => {
                    // Hashed placement decouples arcs from data; the layout
                    // is meaningless there, as for LoadBalanced.
                    return build_fresh(&Scenario {
                        layout: NodeLayout::UniformIds,
                        ..scenario.clone()
                    });
                }
            };
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            adversary::adversarial_ids(scenario.peers, &sorted, lo, hi, &map)
        }
    };
    ids.sort();
    ids.dedup();

    let mut net = Network::build(ids, placement);
    net.set_summary_buckets(scenario.summary_buckets);
    net.bulk_load(&data);

    if scenario.flash_crowd > 0 {
        // A crowd of peers joins back-to-back through the overlay — no
        // stabilization rounds in between — clustered on the densest data
        // region (that's where flash crowds land: the content being
        // mobbed). Joins go through the real membership path so item
        // conservation is the overlay's own guarantee, not the builder's.
        let mut fc_rng = seq.stream(Component::Churn, 0xF1A5);
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let bootstrap = net.ids().next().expect("built network has peers");
        for _ in 0..scenario.flash_crowd {
            let id = match placement.domain_map() {
                Some(map) => {
                    let w = adversary::densest_window(&sorted, lo, hi);
                    let (start, span) = adversary::window_arc(w, lo, hi, map);
                    let off = ((u128::from(fc_rng.gen::<u64>()) * u128::from(span)) >> 64) as u64;
                    RingId(start.wrapping_add(off))
                }
                None => RingId(fc_rng.gen()),
            };
            // An occupied id is skipped, not retried: the crowd size is
            // "up to N", and retry loops would couple the entropy stream
            // to the current membership.
            let _ = net.join(id, bootstrap);
        }
    }

    match (scenario.capacity, scenario.partition) {
        (None, None) => {}
        (cap, part) => {
            // Static environment axes live in a fault plan installed at
            // build time; its decision stream is seeded off the scenario so
            // forked snapshots replay it identically.
            let mut plan = FaultPlan::new(splitmix64(scenario.seed ^ 0xA7E5));
            if let Some(c) = cap {
                plan = plan.with_capacity(f64::from(c.slow_pm) / 1000.0, c.factor, c.deadline);
            }
            if let Some(p) = part {
                plan = plan.with_partition(pm_to_ring(p.start_pm), pm_to_ring(p.span_pm));
            }
            net.set_fault_plan(plan);
        }
    }

    // Construction traffic (flash-crowd joins, handoffs) is free: counters
    // measure the estimators, not the builder.
    net.stats_mut().reset();

    let data_truth = if scenario.items >= STREAMING_TRUTH_ITEMS {
        // Mega-scale regime: keep the generator's analytic CDF instead of
        // sorting and retaining the realized dataset (see
        // [`STREAMING_TRUTH_ITEMS`]).
        DataTruth::Analytic(StreamingTruth::new(
            scenario.distribution.build(lo, hi),
            net.total_items(),
        ))
    } else {
        DataTruth::Empirical(Ecdf::new(data))
    };
    BuiltScenario { net, truth, data_truth, scenario: scenario.clone() }
}

/// Converts a per-mille ring position/span to id space (1000 = full ring).
pub(crate) fn pm_to_ring(pm: u32) -> u64 {
    ((u128::from(pm) << 64) / 1000).min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::dist::DistributionKind;

    #[test]
    fn build_is_deterministic() {
        let s = Scenario::default().with_peers(32).with_items(1_000);
        let a = build(&s);
        let b = build(&s);
        assert_eq!(a.net.len(), b.net.len());
        assert_eq!(a.net.global_values(), b.net.global_values());
        assert_eq!(a.data_truth.samples(), b.data_truth.samples());
    }

    #[test]
    fn cached_build_matches_fresh() {
        let s = Scenario::default().with_peers(24).with_items(2_000).with_seed(7701);
        let fresh = build_fresh(&s);
        let first = build(&s); // populates the snapshot cache
        let forked = build(&s); // guaranteed cache hit → Network::fork path
        for b in [&first, &forked] {
            assert_eq!(b.net.len(), fresh.net.len());
            assert_eq!(b.net.global_values(), fresh.net.global_values());
            assert_eq!(b.data_truth.samples(), fresh.data_truth.samples());
            assert_eq!(b.scenario, fresh.scenario);
            assert!(b.net.check_invariants().is_empty());
        }
    }

    #[test]
    fn fallback_scenario_is_cached_consistently() {
        // LoadBalanced + Hashed falls back to UniformIds inside build_fresh;
        // the cached snapshot must reproduce the *returned* scenario.
        let s = Scenario::default()
            .with_peers(16)
            .with_items(1_000)
            .with_seed(7702)
            .with_layout(NodeLayout::LoadBalanced)
            .with_placement(PlacementMode::Hashed);
        let miss = build(&s);
        let hit = build(&s);
        assert_eq!(miss.scenario.layout, NodeLayout::UniformIds);
        assert_eq!(hit.scenario, miss.scenario);
        assert_eq!(hit.net.global_values(), miss.net.global_values());
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(1));
        let b = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(2));
        assert_ne!(a.net.global_values(), b.net.global_values());
    }

    #[test]
    fn data_matches_generator() {
        let s = Scenario::default().with_peers(16).with_items(20_000);
        let built = build(&s);
        assert_eq!(built.net.total_items(), 20_000);
        let ks = built.data_truth.ecdf().expect("quick scale").ks_distance_to(built.truth.as_ref());
        // Dataset noise only: KS ~ 1/√N.
        assert!(ks < 0.02, "dataset diverges from generator: {ks}");
        assert!(built.net.check_invariants().is_empty());
    }

    #[test]
    fn load_balanced_layout_equalizes_volume() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_layout(NodeLayout::LoadBalanced);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Under uniform ids with Pareto data the max would be tens of times
        // the mean; load balancing keeps it within a small factor.
        assert!(max < 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn uniform_ids_with_skew_have_hotspots() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 });
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max > 5.0 * mean, "expected hotspots: max {max} vs mean {mean}");
    }

    #[test]
    fn hashed_placement_balances_any_data() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_placement(PlacementMode::Hashed);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Hashing decouples volume from value skew; remaining imbalance is
        // the arc-length variance of consistent hashing (Θ(log P) factor).
        assert!(max < 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn adversarial_layout_maximizes_sampling_bias() {
        let base = Scenario::default()
            .with_peers(64)
            .with_items(20_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_seed(7703);
        let uniform = build(&base.clone());
        let adv = build(&base.with_layout(NodeLayout::Adversarial));
        let bias_u = crate::adversary::arc_weighted_bias(&uniform.net).abs();
        let bias_a = crate::adversary::arc_weighted_bias(&adv.net).abs();
        assert!(
            bias_a > 3.0 * bias_u.max(0.05),
            "adversarial placement must dominate uniform bias: {bias_a} vs {bias_u}"
        );
        assert!(adv.net.check_invariants().is_empty());
    }

    #[test]
    fn adversarial_layout_falls_back_under_hashing() {
        let s = Scenario::default()
            .with_peers(16)
            .with_items(1_000)
            .with_seed(7704)
            .with_layout(NodeLayout::Adversarial)
            .with_placement(PlacementMode::Hashed);
        let built = build(&s);
        assert_eq!(built.scenario.layout, NodeLayout::UniformIds);
        assert!(built.net.check_invariants().is_empty());
    }

    #[test]
    fn flash_crowd_joins_conserve_items_and_grow_the_ring() {
        let base = Scenario::default().with_peers(32).with_items(4_000).with_seed(7705);
        let calm = build_fresh(&base.clone());
        let crowd = build_fresh(&base.with_flash_crowd(12));
        assert_eq!(crowd.net.total_items(), calm.net.total_items(), "joins must conserve items");
        assert!(crowd.net.len() > calm.net.len(), "crowd must actually join");
        assert!(crowd.net.len() <= calm.net.len() + 12);
        // Construction traffic is not billed to the experiment.
        assert_eq!(crowd.net.stats().total_messages(), 0);
        assert!(crowd.net.check_invariants().is_empty());
    }

    #[test]
    fn capacity_and_partition_axes_install_a_plan() {
        use crate::scenario::{CapacitySpec, PartitionSpec};
        let s = Scenario::default()
            .with_peers(16)
            .with_items(500)
            .with_seed(7706)
            .with_capacity(CapacitySpec { slow_pm: 250, factor: 4, deadline: 0 })
            .with_partition(PartitionSpec { start_pm: 100, span_pm: 200 });
        let built = build_fresh(&s);
        let plan = built.net.fault_plan().expect("axes install a plan");
        assert!(plan.capacity_active());
        assert!(build_fresh(&Scenario::default().with_peers(16).with_items(500))
            .net
            .fault_plan()
            .is_none());
    }

    #[test]
    fn forked_axis_builds_replay_build_fresh_exactly() {
        use crate::scenario::{CapacitySpec, PartitionSpec};
        let base = Scenario::default().with_peers(24).with_items(2_000);
        let variants = [
            base.clone().with_seed(7710).with_layout(NodeLayout::Adversarial),
            base.clone().with_seed(7711).with_flash_crowd(6),
            base.clone().with_seed(7712).with_capacity(CapacitySpec {
                slow_pm: 300,
                factor: 4,
                deadline: 8,
            }),
            base.clone()
                .with_seed(7713)
                .with_partition(PartitionSpec { start_pm: 250, span_pm: 300 }),
            base.clone().with_seed(7714).with_distribution(DistributionKind::HotspotZipf {
                cells: 32,
                exponent: 1.2,
                arcs: 2,
            }),
        ];
        for s in &variants {
            let fresh = build_fresh(s);
            let _warm = build(s); // populate the cache
            let forked = build(s); // guaranteed hit → Network::fork path
            assert_eq!(forked.net.len(), fresh.net.len(), "{s:?}");
            assert_eq!(forked.net.global_values(), fresh.net.global_values(), "{s:?}");
            assert_eq!(forked.data_truth.samples(), fresh.data_truth.samples(), "{s:?}");
            assert_eq!(forked.scenario, fresh.scenario, "{s:?}");
            assert_eq!(
                format!("{:?}", forked.net.fault_plan()),
                format!("{:?}", fresh.net.fault_plan()),
                "forked plan must replay the fresh decision stream: {s:?}"
            );
            assert!(forked.net.check_invariants().is_empty(), "{s:?}");
        }
    }

    #[test]
    fn axis_parameters_never_collide_in_the_cache_key() {
        use crate::scenario::{CapacitySpec, PartitionSpec};
        // The snapshot cache is keyed on the Debug rendering of the whole
        // scenario; every distinct axis parameterization must produce a
        // distinct key or cells would silently share networks.
        let base = Scenario::default().with_peers(8).with_items(100).with_seed(9);
        let variants: Vec<Scenario> = vec![
            base.clone(),
            base.clone().with_layout(NodeLayout::Adversarial),
            base.clone().with_flash_crowd(1),
            base.clone().with_flash_crowd(2),
            base.clone().with_capacity(CapacitySpec { slow_pm: 250, factor: 4, deadline: 0 }),
            base.clone().with_capacity(CapacitySpec { slow_pm: 250, factor: 4, deadline: 8 }),
            base.clone().with_capacity(CapacitySpec { slow_pm: 250, factor: 8, deadline: 0 }),
            base.clone().with_capacity(CapacitySpec { slow_pm: 500, factor: 4, deadline: 0 }),
            base.clone().with_partition(PartitionSpec { start_pm: 0, span_pm: 100 }),
            base.clone().with_partition(PartitionSpec { start_pm: 100, span_pm: 100 }),
            base.clone().with_partition(PartitionSpec { start_pm: 0, span_pm: 200 }),
            base.clone().with_distribution(DistributionKind::HotspotZipf {
                cells: 32,
                exponent: 1.2,
                arcs: 2,
            }),
            base.clone().with_distribution(DistributionKind::HotspotZipf {
                cells: 32,
                exponent: 1.2,
                arcs: 3,
            }),
        ];
        let keys: Vec<String> = variants.iter().map(|s| format!("{s:?}")).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "cache-key collision between variants {i} and {j}");
            }
        }
    }

    #[test]
    fn domain_is_respected() {
        let mut s = Scenario::default().with_peers(8).with_items(500);
        s.domain = (-50.0, 75.0);
        let built = build(&s);
        let (lo, hi) = built.truth.domain();
        assert_eq!((lo, hi), (-50.0, 75.0));
        for &v in built.data_truth.samples().expect("quick scale") {
            assert!((lo..=hi).contains(&v));
        }
    }
}
