//! Turning a [`Scenario`] into a live network with data and ground truth.

use crate::scenario::{NodeLayout, PlacementMode, Scenario};
use dde_ring::{Network, Placement, RingId};
use dde_stats::dist::Distribution;
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;
use rand::Rng;

/// A built scenario: the network plus both flavours of ground truth.
pub struct BuiltScenario {
    /// The live overlay with data loaded.
    pub net: Network,
    /// The generating distribution (analytic ground truth).
    pub truth: Box<dyn Distribution>,
    /// The realized dataset's empirical CDF (exact ground truth — what a
    /// perfect estimator would recover; differs from `truth` by the
    /// dataset's own sampling noise).
    pub data_ecdf: Ecdf,
    /// The scenario this was built from.
    pub scenario: Scenario,
}

/// Builds the scenario: derives the dataset and node ids from the master
/// seed, wires a perfect ring, and bulk-loads the data.
///
/// # Panics
/// Panics on degenerate scenarios (zero peers, zero items).
pub fn build(scenario: &Scenario) -> BuiltScenario {
    assert!(scenario.peers > 0, "scenario needs peers");
    assert!(scenario.items > 0, "scenario needs items");
    let (lo, hi) = scenario.domain;
    let seq = SeedSequence::new(scenario.seed);
    let truth = scenario.distribution.build(lo, hi);

    // Dataset first: the load-balanced layout needs its quantiles.
    let mut data_rng = seq.stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..scenario.items).map(|_| truth.sample(&mut data_rng)).collect();

    let placement = match scenario.placement {
        PlacementMode::Range => Placement::range(lo, hi),
        PlacementMode::Hashed => Placement::hashed(lo, hi),
    };

    let mut id_rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = match scenario.layout {
        NodeLayout::UniformIds => (0..scenario.peers).map(|_| RingId(id_rng.gen())).collect(),
        NodeLayout::LoadBalanced => {
            // Ids at the dataset's quantiles (plus id-space jitter to break
            // ties between duplicate values). Only meaningful under range
            // placement; under hashing it degenerates to uniform anyway.
            let map = match placement.domain_map() {
                Some(m) => *m,
                None => {
                    // Hashed placement: quantile layout is meaningless;
                    // fall back to uniform ids.
                    return build(&Scenario { layout: NodeLayout::UniformIds, ..scenario.clone() });
                }
            };
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            (1..=scenario.peers)
                .map(|i| {
                    let q = sorted[(i * scenario.items / scenario.peers).min(scenario.items - 1)];
                    let base = map.to_ring(q).0;
                    RingId(base.wrapping_add(id_rng.gen_range(0..1u64 << 20)))
                })
                .collect()
        }
    };
    ids.sort();
    ids.dedup();

    let mut net = Network::build(ids, placement);
    net.set_summary_buckets(scenario.summary_buckets);
    net.bulk_load(&data);

    let data_ecdf = Ecdf::new(data);
    BuiltScenario { net, truth, data_ecdf, scenario: scenario.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::dist::DistributionKind;

    #[test]
    fn build_is_deterministic() {
        let s = Scenario::default().with_peers(32).with_items(1_000);
        let a = build(&s);
        let b = build(&s);
        assert_eq!(a.net.len(), b.net.len());
        assert_eq!(a.net.global_values(), b.net.global_values());
        assert_eq!(a.data_ecdf.samples(), b.data_ecdf.samples());
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(1));
        let b = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(2));
        assert_ne!(a.net.global_values(), b.net.global_values());
    }

    #[test]
    fn data_matches_generator() {
        let s = Scenario::default().with_peers(16).with_items(20_000);
        let built = build(&s);
        assert_eq!(built.net.total_items(), 20_000);
        let ks = built.data_ecdf.ks_distance_to(built.truth.as_ref());
        // Dataset noise only: KS ~ 1/√N.
        assert!(ks < 0.02, "dataset diverges from generator: {ks}");
        assert!(built.net.check_invariants().is_empty());
    }

    #[test]
    fn load_balanced_layout_equalizes_volume() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_layout(NodeLayout::LoadBalanced);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Under uniform ids with Pareto data the max would be tens of times
        // the mean; load balancing keeps it within a small factor.
        assert!(max < 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn uniform_ids_with_skew_have_hotspots() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 });
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max > 5.0 * mean, "expected hotspots: max {max} vs mean {mean}");
    }

    #[test]
    fn hashed_placement_balances_any_data() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_placement(PlacementMode::Hashed);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Hashing decouples volume from value skew; remaining imbalance is
        // the arc-length variance of consistent hashing (Θ(log P) factor).
        assert!(max < 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn domain_is_respected() {
        let mut s = Scenario::default().with_peers(8).with_items(500);
        s.domain = (-50.0, 75.0);
        let built = build(&s);
        let (lo, hi) = built.truth.domain();
        assert_eq!((lo, hi), (-50.0, 75.0));
        for &v in built.data_ecdf.samples() {
            assert!((lo..=hi).contains(&v));
        }
    }
}
