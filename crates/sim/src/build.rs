//! Turning a [`Scenario`] into a live network with data and ground truth.

use crate::scenario::{NodeLayout, PlacementMode, Scenario};
use dde_ring::{Network, Placement, RingId};
use dde_stats::dist::Distribution;
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;
use rand::Rng;
use std::sync::{Arc, Mutex};

/// A built scenario: the network plus both flavours of ground truth.
pub struct BuiltScenario {
    /// The live overlay with data loaded.
    pub net: Network,
    /// The generating distribution (analytic ground truth).
    pub truth: Box<dyn Distribution>,
    /// The realized dataset's empirical CDF (exact ground truth — what a
    /// perfect estimator would recover; differs from `truth` by the
    /// dataset's own sampling noise).
    pub data_ecdf: Ecdf,
    /// The scenario this was built from.
    pub scenario: Scenario,
}

/// One cached build: everything in a [`BuiltScenario`] that is immutable
/// and cheap to hand out again. The analytic `truth` is *not* stored — a
/// `Box<dyn Distribution>` is rebuilt per caller from the scenario (pure
/// parameters, no sampling), which keeps the snapshot `Send + Sync`.
struct Snapshot {
    net: Network,
    data_ecdf: Ecdf,
    /// The scenario the build actually used (the load-balanced + hashed
    /// combination falls back to uniform ids, so this can differ from the
    /// requested one).
    scenario: Scenario,
}

/// Most distinct scenarios kept alive at once. The quick suite builds a few
/// dozen distinct cells; evicting FIFO beyond this just re-runs a build.
const SNAPSHOT_CAP: usize = 32;

/// Content-keyed snapshot cache. A linear scan over `Debug`-rendered
/// scenario keys — at ≤ [`SNAPSHOT_CAP`] entries this is cheaper than any
/// map, and `Vec` keeps iteration order deterministic.
static SNAPSHOTS: Mutex<Vec<(String, Arc<Snapshot>)>> = Mutex::new(Vec::new());

fn snapshot_lookup(key: &str) -> Option<Arc<Snapshot>> {
    let cache = SNAPSHOTS.lock().expect("snapshot cache poisoned");
    cache.iter().find(|(k, _)| k == key).map(|(_, s)| Arc::clone(s))
}

fn snapshot_store(key: String, snap: Snapshot) {
    let mut cache = SNAPSHOTS.lock().expect("snapshot cache poisoned");
    if cache.iter().any(|(k, _)| *k == key) {
        return; // lost a benign build race; first writer wins
    }
    if cache.len() >= SNAPSHOT_CAP {
        cache.remove(0);
    }
    cache.push((key, Arc::new(snap)));
}

/// Builds the scenario, sharing work across repeated builds: the first
/// build of a given scenario runs [`build_fresh`] and caches an immutable
/// snapshot; later builds [`Network::fork`] the snapshot (cheap, copy-on-
/// write stores) instead of regenerating and re-sorting the dataset.
///
/// The cache is keyed on the scenario's entire content, so any parameter
/// change — including the seed — is a different entry. Forked and fresh
/// builds are byte-for-byte interchangeable (proven by the determinism
/// suite), so cache hits never change experiment output.
///
/// # Panics
/// Panics on degenerate scenarios (zero peers, zero items).
pub fn build(scenario: &Scenario) -> BuiltScenario {
    // ddelint::allow(wallclock, "timing-only: the duration feeds the build-time perf counter, never an experiment value")
    let start = std::time::Instant::now();
    let built = build_cached(scenario);
    crate::exec::note_build(start.elapsed());
    built
}

fn build_cached(scenario: &Scenario) -> BuiltScenario {
    let key = format!("{scenario:?}");
    if let Some(snap) = snapshot_lookup(&key) {
        let (lo, hi) = snap.scenario.domain;
        return BuiltScenario {
            net: snap.net.fork(),
            truth: snap.scenario.distribution.build(lo, hi),
            data_ecdf: snap.data_ecdf.clone(),
            scenario: snap.scenario.clone(),
        };
    }
    let built = build_fresh(scenario);
    snapshot_store(
        key,
        Snapshot {
            net: built.net.fork(),
            data_ecdf: built.data_ecdf.clone(),
            scenario: built.scenario.clone(),
        },
    );
    built
}

/// Builds the scenario from scratch, bypassing the snapshot cache: derives
/// the dataset and node ids from the master seed, wires a perfect ring, and
/// bulk-loads the data.
///
/// # Panics
/// Panics on degenerate scenarios (zero peers, zero items).
pub fn build_fresh(scenario: &Scenario) -> BuiltScenario {
    assert!(scenario.peers > 0, "scenario needs peers");
    assert!(scenario.items > 0, "scenario needs items");
    let (lo, hi) = scenario.domain;
    let seq = SeedSequence::new(scenario.seed);
    let truth = scenario.distribution.build(lo, hi);

    // Dataset first: the load-balanced layout needs its quantiles.
    let mut data_rng = seq.stream(Component::Dataset, 0);
    let data: Vec<f64> = (0..scenario.items).map(|_| truth.sample(&mut data_rng)).collect();

    let placement = match scenario.placement {
        PlacementMode::Range => Placement::range(lo, hi),
        PlacementMode::Hashed => Placement::hashed(lo, hi),
    };

    let mut id_rng = seq.stream(Component::NodeIds, 0);
    let mut ids: Vec<RingId> = match scenario.layout {
        NodeLayout::UniformIds => (0..scenario.peers).map(|_| RingId(id_rng.gen())).collect(),
        NodeLayout::LoadBalanced => {
            // Ids at the dataset's quantiles (plus id-space jitter to break
            // ties between duplicate values). Only meaningful under range
            // placement; under hashing it degenerates to uniform anyway.
            let map = match placement.domain_map() {
                Some(m) => *m,
                None => {
                    // Hashed placement: quantile layout is meaningless;
                    // fall back to uniform ids.
                    return build_fresh(&Scenario {
                        layout: NodeLayout::UniformIds,
                        ..scenario.clone()
                    });
                }
            };
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            (1..=scenario.peers)
                .map(|i| {
                    let q = sorted[(i * scenario.items / scenario.peers).min(scenario.items - 1)];
                    let base = map.to_ring(q).0;
                    RingId(base.wrapping_add(id_rng.gen_range(0..1u64 << 20)))
                })
                .collect()
        }
    };
    ids.sort();
    ids.dedup();

    let mut net = Network::build(ids, placement);
    net.set_summary_buckets(scenario.summary_buckets);
    net.bulk_load(&data);

    let data_ecdf = Ecdf::new(data);
    BuiltScenario { net, truth, data_ecdf, scenario: scenario.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::dist::DistributionKind;

    #[test]
    fn build_is_deterministic() {
        let s = Scenario::default().with_peers(32).with_items(1_000);
        let a = build(&s);
        let b = build(&s);
        assert_eq!(a.net.len(), b.net.len());
        assert_eq!(a.net.global_values(), b.net.global_values());
        assert_eq!(a.data_ecdf.samples(), b.data_ecdf.samples());
    }

    #[test]
    fn cached_build_matches_fresh() {
        let s = Scenario::default().with_peers(24).with_items(2_000).with_seed(7701);
        let fresh = build_fresh(&s);
        let first = build(&s); // populates the snapshot cache
        let forked = build(&s); // guaranteed cache hit → Network::fork path
        for b in [&first, &forked] {
            assert_eq!(b.net.len(), fresh.net.len());
            assert_eq!(b.net.global_values(), fresh.net.global_values());
            assert_eq!(b.data_ecdf.samples(), fresh.data_ecdf.samples());
            assert_eq!(b.scenario, fresh.scenario);
            assert!(b.net.check_invariants().is_empty());
        }
    }

    #[test]
    fn fallback_scenario_is_cached_consistently() {
        // LoadBalanced + Hashed falls back to UniformIds inside build_fresh;
        // the cached snapshot must reproduce the *returned* scenario.
        let s = Scenario::default()
            .with_peers(16)
            .with_items(1_000)
            .with_seed(7702)
            .with_layout(NodeLayout::LoadBalanced)
            .with_placement(PlacementMode::Hashed);
        let miss = build(&s);
        let hit = build(&s);
        assert_eq!(miss.scenario.layout, NodeLayout::UniformIds);
        assert_eq!(hit.scenario, miss.scenario);
        assert_eq!(hit.net.global_values(), miss.net.global_values());
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(1));
        let b = build(&Scenario::default().with_peers(32).with_items(1_000).with_seed(2));
        assert_ne!(a.net.global_values(), b.net.global_values());
    }

    #[test]
    fn data_matches_generator() {
        let s = Scenario::default().with_peers(16).with_items(20_000);
        let built = build(&s);
        assert_eq!(built.net.total_items(), 20_000);
        let ks = built.data_ecdf.ks_distance_to(built.truth.as_ref());
        // Dataset noise only: KS ~ 1/√N.
        assert!(ks < 0.02, "dataset diverges from generator: {ks}");
        assert!(built.net.check_invariants().is_empty());
    }

    #[test]
    fn load_balanced_layout_equalizes_volume() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_layout(NodeLayout::LoadBalanced);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Under uniform ids with Pareto data the max would be tens of times
        // the mean; load balancing keeps it within a small factor.
        assert!(max < 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn uniform_ids_with_skew_have_hotspots() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 });
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max > 5.0 * mean, "expected hotspots: max {max} vs mean {mean}");
    }

    #[test]
    fn hashed_placement_balances_any_data() {
        let s = Scenario::default()
            .with_peers(64)
            .with_items(50_000)
            .with_distribution(DistributionKind::Pareto { shape: 1.2 })
            .with_placement(PlacementMode::Hashed);
        let built = build(&s);
        let counts: Vec<usize> =
            built.net.ids().map(|id| built.net.node(id).unwrap().store.len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Hashing decouples volume from value skew; remaining imbalance is
        // the arc-length variance of consistent hashing (Θ(log P) factor).
        assert!(max < 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn domain_is_respected() {
        let mut s = Scenario::default().with_peers(8).with_items(500);
        s.domain = (-50.0, 75.0);
        let built = build(&s);
        let (lo, hi) = built.truth.domain();
        assert_eq!((lo, hi), (-50.0, 75.0));
        for &v in built.data_ecdf.samples() {
            assert!((lo..=hi).contains(&v));
        }
    }
}
