//! Deterministic simulation testing (DST): a FoundationDB-style adversarial
//! test bed for the whole estimator stack.
//!
//! Four pieces, all seed-deterministic:
//!
//! * **Schedule fuzzer** — [`generate`] derives an arbitrary interleaving of
//!   `Join / Leave / Crash / Heal / Insert / Probe / EstimateRefresh /
//!   FaultWindow` events — plus the adversarial pack: `FlashCrowd /
//!   HotspotBurst / CapacitySkew / ArcPartition / AdversarialJoin /
//!   BulkJoinBlock / WorkloadBurst / ChurnWindow` (see
//!   `TESTING.md` §scenario axes) — from a master seed. Every event carries *concrete*
//!   parameters (entropy words, peer ranks resolved against the alive set at
//!   application time), never a shared RNG — so removing events during
//!   shrinking cannot perturb how the remaining ones apply.
//! * **Invariant oracle** — after *every* event the always-true local
//!   invariants ([`dde_ring::Network::check_local_invariants`]), message-stat
//!   monotonicity, item conservation, and probe/estimate monotonicity are
//!   checked; after every `Heal` (which stabilizes to quiescence) the
//!   ground-truth ring+data invariants
//!   ([`dde_ring::Network::check_invariants`]) must be empty.
//! * **Shrinker** — [`shrink`] ddmin-reduces a failing schedule to a
//!   1-minimal reproducer by re-running candidate sub-schedules.
//! * **Replayable repro** — [`to_repro`] / [`parse_repro`] round-trip a
//!   schedule through a human-readable RON-like text file, replayed with
//!   `expts dst --replay <file>`; the failure report is byte-identical
//!   across replays.
//!
//! [`fuzz`] runs many schedules through the parallel [`ExecPlan`] runner;
//! results are scanned in push order, so the reported first failure (and its
//! shrunk reproducer) is independent of `--jobs`.

use crate::build::build;
use crate::exec::ExecPlan;
use crate::scenario::Scenario;
use dde_core::{ContinuousConfig, ContinuousEstimator, DfDde, DfDdeConfig, ProbePlan};
use dde_ring::{BatchRouter, ChurnBatch, FaultPlan, Network, RingId};
use dde_stats::rng::{splitmix64, Component, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stabilization rounds a `Heal` event may spend reaching quiescence before
/// the oracle calls non-convergence itself a violation.
pub const MAX_HEAL_ROUNDS: usize = 64;

/// Churn events never shrink the network below this many peers.
const MIN_PEERS: usize = 5;

/// One fuzzed event. All parameters are concrete: peer choices are encoded
/// as *ranks* reduced modulo the alive-peer count at application time, so an
/// event stays applicable (and deterministic) no matter which other events a
/// shrinking pass removed around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstEvent {
    /// A new peer joins through a bootstrap peer.
    Join {
        /// Raw entropy for the joiner's ring id.
        id_entropy: u64,
        /// Rank (mod alive count) of the bootstrap peer.
        bootstrap_rank: u64,
    },
    /// A peer leaves gracefully, handing its data to its heir.
    Leave {
        /// Rank (mod alive count) of the departing peer.
        victim_rank: u64,
    },
    /// A peer crash-fails: data lost, nobody told.
    Crash {
        /// Rank (mod alive count) of the crashing peer.
        victim_rank: u64,
    },
    /// The network settles: faults clear and stabilization runs until a
    /// round makes zero corrections (bounded by [`MAX_HEAL_ROUNDS`]).
    Heal,
    /// A peer inserts one value through the overlay.
    Insert {
        /// Rank (mod alive count) of the inserting peer.
        initiator_rank: u64,
        /// Raw entropy mapped to a value inside the data domain.
        value_entropy: u64,
    },
    /// A peer probes the owner of a ring point (the estimator's primitive).
    Probe {
        /// Rank (mod alive count) of the probing peer.
        initiator_rank: u64,
        /// The probed ring point.
        point: u64,
    },
    /// The resident continuous estimator refreshes part of its probe window.
    EstimateRefresh {
        /// Rank (mod alive count) of the estimating peer.
        initiator_rank: u64,
        /// Seed for the refresh's probe positions.
        entropy: u64,
    },
    /// A fault plan (loss/reply-loss/sick windows) switches on for the next
    /// `duration` events (or until a `Heal`).
    FaultWindow {
        /// Seed for the plan's per-link streams.
        entropy: u64,
        /// Request loss probability in per-mille.
        loss_pm: u16,
        /// Reply loss probability in per-mille.
        reply_loss_pm: u16,
        /// Sick-peer probability in per-mille.
        sick_pm: u16,
        /// Events the window stays installed for.
        duration: u16,
    },
    /// A flash crowd: several peers join back-to-back — within one
    /// stabilization window, no repair rounds in between.
    FlashCrowd {
        /// Raw entropy the joiners' ring ids (and bootstrap rank) derive
        /// from.
        id_entropy: u64,
        /// Peers joining back-to-back.
        count: u16,
    },
    /// A burst of probes from one initiator, all aimed inside one narrow
    /// hot arc (Zipf-head traffic in miniature).
    HotspotBurst {
        /// Rank (mod alive count) of the probing peer.
        initiator_rank: u64,
        /// Raw entropy for the hot arc's centre and per-probe jitter.
        entropy: u64,
        /// Probes in the burst.
        count: u16,
    },
    /// A heterogeneous-capacity window: a static slow class whose outgoing
    /// messages are delay-scaled (and may miss reply deadlines) for the
    /// next `duration` events (or until a `Heal`).
    CapacitySkew {
        /// Seed for the plan's decision streams.
        entropy: u64,
        /// Per-mille of peers in the slow class.
        slow_pm: u16,
        /// Delay multiplier for messages sent by slow peers.
        factor: u16,
        /// Reply deadline in delay units (0 = callers wait forever).
        deadline: u16,
        /// Events the window stays installed for.
        duration: u16,
    },
    /// A spatially-correlated partition: a contiguous ring arc is cut off
    /// from the rest for the next `duration` events (or until a `Heal`).
    ArcPartition {
        /// Arc start in per-mille of the ring.
        start_pm: u16,
        /// Arc span in per-mille of the ring.
        span_pm: u16,
        /// Events the partition stays up for.
        duration: u16,
    },
    /// An adversarially placed joiner: lands mid-arc of the peer holding
    /// the fewest items, maximizing arc-uniform sampling bias (the
    /// event-level cousin of `NodeLayout::Adversarial`).
    AdversarialJoin {
        /// Jitter entropy positioning the joiner inside the target arc.
        jitter: u64,
    },
    /// A block of peers joins through the O(P) bulk path
    /// ([`dde_ring::Network::bulk_join`]): ids derive from `id_entropy`, the
    /// whole ring is rewired perfectly in one pass, and misplaced items
    /// re-home — the mega-scale counterpart of [`DstEvent::FlashCrowd`]'s
    /// one-by-one overlay joins.
    BulkJoinBlock {
        /// Raw entropy the block's ring ids derive from.
        id_entropy: u64,
        /// Peers joining in the block.
        count: u16,
    },
    /// A same-origin burst of open-loop serving traffic: a 300/700‰
    /// insert/lookup mix routed through one shared batch window
    /// ([`dde_ring::BatchRouter`]), with the lookups' resolved owners
    /// piggybacking a small probe plan ([`dde_core::ProbePlan`]) completed
    /// by dedicated probes at burst end — the serving engine's hot path
    /// ([`crate::workload`]) in miniature, under fuzz.
    WorkloadBurst {
        /// Rank (mod alive count) of the burst's origin peer.
        origin_rank: u64,
        /// Raw entropy for the burst's op kinds, values, and probe plan.
        entropy: u64,
        /// Foreground ops in the burst.
        count: u16,
    },
    /// A coalesced membership window: ~`count` joins, leaves, and crashes
    /// (split 2:1:1) queued together and applied as one
    /// [`dde_ring::ChurnBatch`] — a single column splice plus one monotone
    /// repair sweep, the amortized mega-scale mutation path under fuzz.
    /// On a converged ring the sweep must leave the *full* ground-truth
    /// invariants clean, with item losses exactly the crashed primaries'.
    ChurnWindow {
        /// Raw entropy the joiner ids and victim ranks derive from.
        entropy: u64,
        /// Membership events queued in the window.
        count: u16,
    },
}

impl std::fmt::Display for DstEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DstEvent::Join { id_entropy, bootstrap_rank } => {
                write!(f, "Join(id_entropy: {id_entropy}, bootstrap_rank: {bootstrap_rank})")
            }
            DstEvent::Leave { victim_rank } => write!(f, "Leave(victim_rank: {victim_rank})"),
            DstEvent::Crash { victim_rank } => write!(f, "Crash(victim_rank: {victim_rank})"),
            DstEvent::Heal => write!(f, "Heal"),
            DstEvent::Insert { initiator_rank, value_entropy } => {
                write!(
                    f,
                    "Insert(initiator_rank: {initiator_rank}, value_entropy: {value_entropy})"
                )
            }
            DstEvent::Probe { initiator_rank, point } => {
                write!(f, "Probe(initiator_rank: {initiator_rank}, point: {point})")
            }
            DstEvent::EstimateRefresh { initiator_rank, entropy } => {
                write!(f, "EstimateRefresh(initiator_rank: {initiator_rank}, entropy: {entropy})")
            }
            DstEvent::FaultWindow { entropy, loss_pm, reply_loss_pm, sick_pm, duration } => write!(
                f,
                "FaultWindow(entropy: {entropy}, loss_pm: {loss_pm}, reply_loss_pm: \
                 {reply_loss_pm}, sick_pm: {sick_pm}, duration: {duration})"
            ),
            DstEvent::FlashCrowd { id_entropy, count } => {
                write!(f, "FlashCrowd(id_entropy: {id_entropy}, count: {count})")
            }
            DstEvent::HotspotBurst { initiator_rank, entropy, count } => {
                write!(
                    f,
                    "HotspotBurst(initiator_rank: {initiator_rank}, entropy: {entropy}, \
                     count: {count})"
                )
            }
            DstEvent::CapacitySkew { entropy, slow_pm, factor, deadline, duration } => write!(
                f,
                "CapacitySkew(entropy: {entropy}, slow_pm: {slow_pm}, factor: {factor}, \
                 deadline: {deadline}, duration: {duration})"
            ),
            DstEvent::ArcPartition { start_pm, span_pm, duration } => {
                write!(
                    f,
                    "ArcPartition(start_pm: {start_pm}, span_pm: {span_pm}, duration: {duration})"
                )
            }
            DstEvent::AdversarialJoin { jitter } => {
                write!(f, "AdversarialJoin(jitter: {jitter})")
            }
            DstEvent::BulkJoinBlock { id_entropy, count } => {
                write!(f, "BulkJoinBlock(id_entropy: {id_entropy}, count: {count})")
            }
            DstEvent::WorkloadBurst { origin_rank, entropy, count } => {
                write!(
                    f,
                    "WorkloadBurst(origin_rank: {origin_rank}, entropy: {entropy}, count: {count})"
                )
            }
            DstEvent::ChurnWindow { entropy, count } => {
                write!(f, "ChurnWindow(entropy: {entropy}, count: {count})")
            }
        }
    }
}

/// A deliberately injected protocol bug, for validating that the oracle and
/// shrinker actually work (and for demos).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// During a `Heal` that follows at least one `Crash`, one survivor's
    /// immediate successor pointer is dropped after stabilization — the
    /// classic crash-heal race where a repair step skips a list entry. The
    /// post-heal ground-truth oracle must catch it; the minimal reproducer
    /// is `[Crash, Heal]`.
    SkipSuccessorOnHeal,
    /// The capacity axis's per-link FIFO delivery clamp is dropped, so a
    /// later message on a jittered slow link can overtake an earlier one.
    /// The always-on reordering oracle must catch it; the minimal
    /// reproducer is `[CapacitySkew, HotspotBurst]` (repeated deliveries on
    /// one slow initiator→owner link).
    DropCapacityFifoGuard,
}

/// Configuration for schedule generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DstConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Initial network size.
    pub peers: usize,
    /// Initial bulk-loaded items.
    pub items: usize,
    /// Events per schedule.
    pub events: usize,
    /// Replication factor installed at build time.
    pub replication: usize,
    /// Injected bug, if any.
    pub bug: Option<InjectedBug>,
}

impl Default for DstConfig {
    fn default() -> Self {
        Self { seed: 0xD57, peers: 24, items: 1500, events: 48, replication: 1, bug: None }
    }
}

/// A fully concrete, self-contained event schedule: replaying it (via
/// [`run_schedule`]) is deterministic and needs nothing but this value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Seed the initial network/data build derives from.
    pub seed: u64,
    /// Initial network size.
    pub peers: usize,
    /// Initial bulk-loaded items.
    pub items: usize,
    /// Replication factor installed at build time.
    pub replication: usize,
    /// Injected bug, if any.
    pub bug: Option<InjectedBug>,
    /// The event sequence.
    pub events: Vec<DstEvent>,
}

/// Generates the schedule for `cfg`: `cfg.events` events drawn from a
/// dedicated RNG stream of the master seed.
pub fn generate(cfg: &DstConfig) -> Schedule {
    let seq = SeedSequence::new(cfg.seed);
    let mut rng = seq.stream(Component::Test, 0);
    let events = (0..cfg.events).map(|_| random_event(&mut rng)).collect();
    Schedule {
        seed: cfg.seed,
        peers: cfg.peers,
        items: cfg.items,
        replication: cfg.replication,
        bug: cfg.bug,
        events,
    }
}

fn random_event(rng: &mut StdRng) -> DstEvent {
    match rng.gen_range(0..128u32) {
        0..=9 => DstEvent::Join { id_entropy: rng.gen(), bootstrap_rank: rng.gen() },
        10..=17 => DstEvent::Leave { victim_rank: rng.gen() },
        18..=25 => DstEvent::Crash { victim_rank: rng.gen() },
        26..=37 => DstEvent::Heal,
        38..=55 => DstEvent::Insert { initiator_rank: rng.gen(), value_entropy: rng.gen() },
        56..=73 => DstEvent::Probe { initiator_rank: rng.gen(), point: rng.gen() },
        74..=84 => DstEvent::EstimateRefresh { initiator_rank: rng.gen(), entropy: rng.gen() },
        85..=93 => DstEvent::FaultWindow {
            entropy: rng.gen(),
            loss_pm: rng.gen_range(0..=300),
            reply_loss_pm: rng.gen_range(0..=150),
            sick_pm: rng.gen_range(0..=100),
            duration: rng.gen_range(1..=8),
        },
        94..=98 => DstEvent::FlashCrowd { id_entropy: rng.gen(), count: rng.gen_range(2..=6) },
        99..=103 => DstEvent::HotspotBurst {
            initiator_rank: rng.gen(),
            entropy: rng.gen(),
            count: rng.gen_range(4..=16),
        },
        104..=109 => DstEvent::CapacitySkew {
            entropy: rng.gen(),
            slow_pm: rng.gen_range(100..=600),
            factor: rng.gen_range(2..=8),
            deadline: rng.gen_range(0..=12),
            duration: rng.gen_range(1..=8),
        },
        110..=114 => DstEvent::ArcPartition {
            start_pm: rng.gen_range(0..1000),
            span_pm: rng.gen_range(50..=400),
            duration: rng.gen_range(1..=8),
        },
        115..=117 => DstEvent::AdversarialJoin { jitter: rng.gen() },
        118..=121 => DstEvent::BulkJoinBlock { id_entropy: rng.gen(), count: rng.gen_range(2..=8) },
        122..=124 => DstEvent::ChurnWindow { entropy: rng.gen(), count: rng.gen_range(6..=24) },
        _ => DstEvent::WorkloadBurst {
            origin_rank: rng.gen(),
            entropy: rng.gen(),
            count: rng.gen_range(8..=32),
        },
    }
}

/// An invariant violation: where in the schedule it surfaced and what broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DstFailure {
    /// Index of the offending event in the schedule.
    pub event_index: usize,
    /// Rendered event (see [`DstEvent`]'s `Display`).
    pub event: String,
    /// The oracle's violation list.
    pub violations: Vec<String>,
}

impl std::fmt::Display for DstFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violation after event {}: {}", self.event_index, self.event)?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Summary of a clean schedule run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DstReport {
    /// Events applied.
    pub events: usize,
    /// Alive peers at the end.
    pub final_peers: usize,
    /// Items held at the end.
    pub final_items: u64,
    /// Successful continuous-estimator refreshes.
    pub estimates: usize,
}

/// Runs `schedule` from a fresh network, evaluating the oracle after every
/// event. Fully deterministic in the schedule value.
pub fn run_schedule(schedule: &Schedule) -> Result<DstReport, DstFailure> {
    let mut world = World::setup(schedule);
    for (index, &event) in schedule.events.iter().enumerate() {
        world.apply(index, event)?;
    }
    Ok(DstReport {
        events: schedule.events.len(),
        final_peers: world.net.len(),
        final_items: world.net.total_items(),
        estimates: world.estimates,
    })
}

/// The live state a schedule runs against.
struct World {
    net: Network,
    domain: (f64, f64),
    est: ContinuousEstimator,
    bug: Option<InjectedBug>,
    replication: usize,
    initial_items: u64,
    inserts_attempted: u64,
    crashes: usize,
    fault_countdown: usize,
    prev_messages: u64,
    prev_bytes: u64,
    prev_delay: u64,
    estimates: usize,
    /// Whether the ring's wiring is fully converged (perfect successors,
    /// lists, and fingers everywhere). True after the bulk build, a
    /// quiesced `Heal`, or a `BulkJoinBlock` full rewire; false once any
    /// one-at-a-time overlay membership event leaves stale fingers behind.
    /// Gates the `ChurnWindow` full-oracle check: a batched repair sweep
    /// preserves convergence, but cannot be blamed for staleness it
    /// inherited.
    converged: bool,
}

impl World {
    fn setup(schedule: &Schedule) -> Self {
        let scenario = Scenario::default()
            .with_peers(schedule.peers)
            .with_items(schedule.items)
            .with_seed(schedule.seed);
        let built = build(&scenario);
        let mut net = built.net;
        net.set_replication(schedule.replication);
        let initial_items = net.total_items();
        Self {
            net,
            domain: scenario.domain,
            est: ContinuousEstimator::new(ContinuousConfig {
                window: 32,
                refresh_per_tick: 4,
                ..ContinuousConfig::default()
            }),
            bug: schedule.bug,
            replication: schedule.replication,
            initial_items,
            inserts_attempted: 0,
            crashes: 0,
            fault_countdown: 0,
            prev_messages: 0,
            prev_bytes: 0,
            prev_delay: 0,
            estimates: 0,
            converged: true,
        }
    }

    /// The alive peer at `rank % alive_count`, in ring order.
    fn peer_at(&self, rank: u64) -> RingId {
        let len = self.net.len() as u64;
        self.net.ids().nth((rank % len) as usize).expect("rank reduced mod len")
    }

    fn apply(&mut self, index: usize, event: DstEvent) -> Result<(), DstFailure> {
        let mut extra: Vec<String> = Vec::new();
        match event {
            DstEvent::Join { id_entropy, bootstrap_rank } => {
                let id = RingId(id_entropy);
                if !self.net.is_alive(id) {
                    let bootstrap = self.peer_at(bootstrap_rank);
                    // Joins may legitimately fail under faults (lookup lost).
                    let _ = self.net.join(id, bootstrap);
                    self.converged = false;
                }
            }
            DstEvent::Leave { victim_rank } => {
                if self.net.len() > MIN_PEERS {
                    let victim = self.peer_at(victim_rank);
                    let _ = self.net.leave(victim);
                    self.converged = false;
                }
            }
            DstEvent::Crash { victim_rank } => {
                if self.net.len() > MIN_PEERS {
                    let victim = self.peer_at(victim_rank);
                    let _ = self.net.fail(victim);
                    self.crashes += 1;
                    self.converged = false;
                }
            }
            DstEvent::Heal => {
                self.fault_countdown = 0;
                self.drop_plan(&mut extra);
                let mut quiesced = false;
                for _ in 0..MAX_HEAL_ROUNDS {
                    if self.net.stabilize_round() == 0 {
                        quiesced = true;
                        break;
                    }
                }
                if self.bug == Some(InjectedBug::SkipSuccessorOnHeal) && self.crashes > 0 {
                    // The injected crash-heal race: the repair pass "skips"
                    // the first survivor's immediate successor entry.
                    let victim = self.net.ids().next().expect("nonempty");
                    let node = self.net.node_mut(victim).expect("alive");
                    if !node.successors.is_empty() {
                        node.successors.remove(0);
                    }
                }
                if !quiesced {
                    extra.push(format!(
                        "stabilization failed to quiesce within {MAX_HEAL_ROUNDS} rounds"
                    ));
                }
                for v in self.net.check_invariants() {
                    extra.push(format!("post-heal: {v}"));
                }
                self.converged = quiesced;
            }
            DstEvent::Insert { initiator_rank, value_entropy } => {
                let initiator = self.peer_at(initiator_rank);
                let (lo, hi) = self.domain;
                let frac = value_entropy as f64 / u64::MAX as f64;
                let value = lo + frac * (hi - lo);
                // A reply-lost insert stores the item but reports failure, so
                // conservation is bounded by *attempts*, not successes.
                self.inserts_attempted += 1;
                let _ = self.net.insert(initiator, value);
            }
            DstEvent::Probe { initiator_rank, point } => {
                let initiator = self.peer_at(initiator_rank);
                if let Ok(reply) = self.net.probe(initiator, RingId(point)) {
                    let b = reply.summary.boundaries();
                    if b.windows(2).any(|w| w[0] > w[1]) {
                        extra.push(format!("probe reply summary boundaries not sorted: {b:?}"));
                    }
                    if reply.summary.total() != reply.count {
                        extra.push(format!(
                            "probe reply summary total {} != count {}",
                            reply.summary.total(),
                            reply.count
                        ));
                    }
                    let (lo, hi) = self.domain;
                    let mut prev = -1.0;
                    for i in 0..=16 {
                        let x = lo + (hi - lo) * i as f64 / 16.0;
                        let c = reply.summary.count_le(x);
                        if c < prev - 1e-9 {
                            extra.push(format!("probe reply count_le not monotone at x = {x}"));
                            break;
                        }
                        prev = c;
                    }
                }
            }
            DstEvent::EstimateRefresh { initiator_rank, entropy } => {
                let initiator = self.peer_at(initiator_rank);
                // Per-event RNG: refreshing stays deterministic even when the
                // shrinker removes earlier refreshes.
                let mut rng = StdRng::seed_from_u64(splitmix64(entropy));
                if self.est.tick(&mut self.net, initiator, &mut rng).is_ok() {
                    self.estimates += 1;
                }
                if self.est.probes_held() > 32 {
                    extra.push(format!(
                        "estimator window overflow: {} probes held",
                        self.est.probes_held()
                    ));
                }
                if let Ok(estimate) = self.est.current_estimate(self.domain) {
                    let (lo, hi) = self.domain;
                    let mut prev = f64::NEG_INFINITY;
                    for i in 0..=16 {
                        let x = lo + (hi - lo) * i as f64 / 16.0;
                        let c = estimate.cdf(x);
                        if !(-1e-9..=1.0 + 1e-9).contains(&c) {
                            extra.push(format!("estimate cdf({x}) = {c} outside [0, 1]"));
                            break;
                        }
                        if c < prev - 1e-9 {
                            extra.push(format!("estimate cdf not monotone at x = {x}"));
                            break;
                        }
                        prev = c;
                    }
                }
            }
            DstEvent::FaultWindow { entropy, loss_pm, reply_loss_pm, sick_pm, duration } => {
                let plan = FaultPlan::new(splitmix64(entropy))
                    .with_loss(f64::from(loss_pm) / 1000.0)
                    .with_reply_loss(f64::from(reply_loss_pm) / 1000.0)
                    .with_sick(f64::from(sick_pm) / 1000.0, 8);
                self.net.set_fault_plan(plan);
                self.fault_countdown = usize::from(duration);
            }
            DstEvent::FlashCrowd { id_entropy, count } => {
                let (items_before, peers_before) = (self.net.total_items(), self.net.len());
                let bootstrap = self.peer_at(id_entropy);
                for i in 0..u64::from(count) {
                    let id = RingId(splitmix64(id_entropy.wrapping_add(i)));
                    if !self.net.is_alive(id) {
                        // Individual joins may fail under faults; what must
                        // hold regardless is conservation, checked below.
                        let _ = self.net.join(id, bootstrap);
                        self.converged = false;
                    }
                }
                // Joins move items, never mint or destroy them (DST plans
                // never enable crash decisions, so no store can vanish
                // mid-join).
                let items_after = self.net.total_items();
                if items_after != items_before {
                    extra.push(format!(
                        "flash crowd broke item conservation: {items_before} -> {items_after}"
                    ));
                }
                if self.net.len() < peers_before {
                    extra.push(format!(
                        "flash crowd shrank the ring: {peers_before} -> {}",
                        self.net.len()
                    ));
                }
            }
            DstEvent::HotspotBurst { initiator_rank, entropy, count } => {
                let initiator = self.peer_at(initiator_rank);
                let before = self.net.stats().total_messages();
                let centre = splitmix64(entropy);
                for i in 0..u64::from(count) {
                    // All probes land inside a 1/256th-ring hot arc.
                    let jitter = splitmix64(entropy ^ (i + 1)) >> 8;
                    let _ = self.net.probe(initiator, RingId(centre.wrapping_add(jitter)));
                }
                // Every probe attempt bills at least one message: a routed
                // probe, or the timeout marker of whatever fault ate it.
                let delta = self.net.stats().total_messages() - before;
                if delta < u64::from(count) {
                    extra.push(format!(
                        "hotspot burst of {count} probes billed only {delta} messages"
                    ));
                }
            }
            DstEvent::CapacitySkew { entropy, slow_pm, factor, deadline, duration } => {
                let mut plan = FaultPlan::new(splitmix64(entropy)).with_capacity(
                    f64::from(slow_pm) / 1000.0,
                    u64::from(factor),
                    u64::from(deadline),
                );
                if self.bug == Some(InjectedBug::DropCapacityFifoGuard) {
                    // The injected delivery bug: the per-link FIFO clamp is
                    // gone, so jittered slow links can reorder.
                    plan = plan.without_fifo_guard();
                }
                self.net.set_fault_plan(plan);
                self.fault_countdown = usize::from(duration);
            }
            DstEvent::ArcPartition { start_pm, span_pm, duration } => {
                let entropy = (u64::from(start_pm) << 16) | u64::from(span_pm);
                let plan = FaultPlan::new(splitmix64(entropy)).with_partition(
                    crate::build::pm_to_ring(u32::from(start_pm)),
                    crate::build::pm_to_ring(u32::from(span_pm)),
                );
                self.net.set_fault_plan(plan);
                self.fault_countdown = usize::from(duration);
            }
            DstEvent::AdversarialJoin { jitter } => {
                // Target the peer holding the fewest items: splitting its
                // arc adds another tiny, data-free arc — the worst case for
                // uncorrected arc-uniform sampling.
                let target = self
                    .net
                    .ids()
                    .min_by_key(|&id| (self.net.node(id).map_or(0, |n| n.store.len()), id))
                    .expect("nonempty network");
                let ids: Vec<RingId> = self.net.ids().collect();
                let pos = ids.iter().position(|&id| id == target).expect("alive");
                let pred = ids[(pos + ids.len() - 1) % ids.len()];
                let arc = target.0.wrapping_sub(pred.0);
                if arc >= 4 {
                    // Middle half of the arc: never collides with either end.
                    let off = arc / 4 + jitter % (arc / 2);
                    let id = RingId(pred.0.wrapping_add(off));
                    let items_before = self.net.total_items();
                    if !self.net.is_alive(id) {
                        let _ = self.net.join(id, target);
                        self.converged = false;
                    }
                    let items_after = self.net.total_items();
                    if items_after != items_before {
                        extra.push(format!(
                            "adversarial join broke item conservation: \
                             {items_before} -> {items_after}"
                        ));
                    }
                }
            }
            DstEvent::BulkJoinBlock { id_entropy, count } => {
                let (items_before, peers_before) = (self.net.total_items(), self.net.len());
                let ids: Vec<RingId> = (0..u64::from(count))
                    .map(|i| RingId(splitmix64(id_entropy.wrapping_add(i))))
                    .collect();
                self.net.bulk_join(&ids);
                // Bulk wiring is perfect by construction, whatever state the
                // ring was in before (crashed peers leave the columns when
                // they die): the *full* convergence oracle must be clean
                // immediately, no Heal in between.
                self.converged = true;
                for v in self.net.check_invariants() {
                    extra.push(format!("post-bulk-join: {v}"));
                }
                let items_after = self.net.total_items();
                if items_after != items_before {
                    extra.push(format!(
                        "bulk join broke item conservation: {items_before} -> {items_after}"
                    ));
                }
                if self.net.len() < peers_before {
                    extra.push(format!(
                        "bulk join shrank the ring: {peers_before} -> {}",
                        self.net.len()
                    ));
                }
                // The CoW fork path at the new scale: forking right after a
                // bulk rewire must conserve the item total column-for-column.
                if self.net.fork().total_items() != items_after {
                    extra.push("fork changed the item total after bulk join".into());
                }
            }
            DstEvent::WorkloadBurst { origin_rank, entropy, count } => {
                let origin = self.peer_at(origin_rank);
                // Per-event RNG, like EstimateRefresh: the burst stays
                // deterministic no matter what the shrinker removes.
                let mut rng = StdRng::seed_from_u64(splitmix64(entropy));
                let est = DfDde::new(DfDdeConfig::with_probes(8));
                let mut plan = ProbePlan::plan(&est, &mut rng);
                let mut batch = BatchRouter::new();
                batch.begin_window();
                let (lo, hi) = self.domain;
                for i in 0..u64::from(count) {
                    let word = splitmix64(entropy ^ (i + 1));
                    let value = lo + (hi - lo) * ((word >> 11) as f64 / (1u64 << 53) as f64);
                    if word % 1000 < 300 {
                        // A reply-lost insert stores the item but reports
                        // failure; conservation is bounded by attempts.
                        self.inserts_attempted += 1;
                        let _ = self.net.insert(origin, value);
                    } else {
                        let target = self.net.placement().place(value);
                        if let Ok(r) = self.net.lookup_batched(origin, target, &mut batch) {
                            plan.offer_owner(&mut self.net, r.owner);
                        }
                    }
                }
                // Dedicated probes cover whatever the traffic missed; every
                // reply must be internally consistent whichever transport
                // carried it.
                if let Ok(replies) = plan.complete(&est, &mut self.net, origin, &mut rng) {
                    for r in &replies {
                        if r.summary.total() != r.count {
                            extra.push(format!(
                                "workload burst probe reply summary total {} != count {}",
                                r.summary.total(),
                                r.count
                            ));
                        }
                    }
                }
            }
            DstEvent::ChurnWindow { entropy, count } => {
                let was_converged = self.converged;
                let items_before = self.net.total_items();
                let mut batch = ChurnBatch::new();
                let joins = (usize::from(count) / 2).max(1);
                // Deaths are capped so the window alone can never sink the
                // ring below the floor, even if every queued join collides.
                let deaths =
                    (usize::from(count) / 4).min(self.net.len().saturating_sub(MIN_PEERS) / 2);
                for i in 0..joins as u64 {
                    batch.join(RingId(splitmix64(entropy.wrapping_add(i))));
                }
                for i in 0..deaths as u64 {
                    batch.leave(self.peer_at(splitmix64(entropy ^ (2 * i + 1))));
                }
                for i in 0..deaths as u64 {
                    batch.crash(self.peer_at(splitmix64(entropy ^ (2 * i + 2))));
                }
                let applied = batch.apply(&mut self.net);
                self.crashes += applied.crashes as usize;
                if applied.crashes > 0 {
                    // Crashed primaries' data is gone until a Heal promotes
                    // replicas; the conservation oracle accounts per-event
                    // below, but the running bound must shrink too.
                    self.initial_items =
                        self.initial_items.saturating_sub(applied.lost.len() as u64);
                }
                // Handoffs conserve: the only items a window may lose are
                // the crashed primaries', and the batch reports each one.
                let items_after = self.net.total_items();
                if items_after + applied.lost.len() as u64 != items_before {
                    extra.push(format!(
                        "churn window broke item conservation: {items_before} -> {items_after} \
                         with {} reported lost",
                        applied.lost.len()
                    ));
                }
                // On a converged ring, one batched repair sweep must restore
                // *full* convergence — perfect successors, lists, and
                // fingers everywhere — with no Heal in between. (On a ring
                // already degraded by one-at-a-time churn, the sweep repairs
                // only what it touched; the full oracle waits for Heal.)
                if was_converged {
                    for v in self.net.check_invariants() {
                        extra.push(format!("post-churn-window: {v}"));
                    }
                }
            }
        }

        // Expire an installed fault window (installer events don't tick).
        let installer = matches!(
            event,
            DstEvent::FaultWindow { .. }
                | DstEvent::CapacitySkew { .. }
                | DstEvent::ArcPartition { .. }
        );
        if self.fault_countdown > 0 && !installer {
            self.fault_countdown -= 1;
            if self.fault_countdown == 0 {
                self.drop_plan(&mut extra);
            }
        }

        self.oracle(index, event, extra)
    }

    /// Uninstalls the fault plan, folding its terminal reordering tally into
    /// the violation list first — the tally dies with the plan, and FIFO
    /// delivery must hold over the plan's whole lifetime.
    fn drop_plan(&mut self, extra: &mut Vec<String>) {
        if let Some(plan) = self.net.clear_fault_plan() {
            if plan.reorderings() > 0 {
                extra.push(format!(
                    "FIFO delivery violated: {} same-link reordering(s)",
                    plan.reorderings()
                ));
            }
        }
    }

    /// The always-on oracle, evaluated after every event. `extra` carries
    /// event-specific violations found during application.
    fn oracle(
        &mut self,
        index: usize,
        event: DstEvent,
        mut violations: Vec<String>,
    ) -> Result<(), DstFailure> {
        violations.extend(self.net.check_local_invariants());

        if self.net.len() < 2 {
            violations.push(format!("network shrank to {} peers", self.net.len()));
        }

        // Message-stat conservation: counters only ever grow.
        let stats = self.net.stats();
        let (messages, bytes, delay) =
            (stats.total_messages(), stats.total_bytes(), stats.total_delay());
        if messages < self.prev_messages {
            violations.push(format!(
                "message counter went backwards: {messages} < {}",
                self.prev_messages
            ));
        }
        if bytes < self.prev_bytes {
            violations.push(format!("byte counter went backwards: {bytes} < {}", self.prev_bytes));
        }
        if delay < self.prev_delay {
            violations.push(format!("delay counter went backwards: {delay} < {}", self.prev_delay));
        }
        self.prev_messages = messages;
        self.prev_bytes = bytes;
        self.prev_delay = delay;

        // Per-link FIFO delivery: the capacity axis may delay messages,
        // never reorder them on one directed link.
        if let Some(plan) = self.net.fault_plan() {
            if plan.reorderings() > 0 {
                violations.push(format!(
                    "FIFO delivery violated: {} same-link reordering(s)",
                    plan.reorderings()
                ));
            }
        }

        // Item conservation (replication off only: with replication on, a
        // promotion against adversarially stale arcs may legitimately race a
        // hand-off, so the primary-store total is not a tight invariant).
        if self.replication == 0 {
            let total = self.net.total_items();
            let bound = self.initial_items + self.inserts_attempted;
            if total > bound {
                violations.push(format!(
                    "item conservation broken: {total} items > {} initial + {} inserted",
                    self.initial_items, self.inserts_attempted
                ));
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(DstFailure { event_index: index, event: event.to_string(), violations })
        }
    }
}

/// A shrunk failing schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// The 1-minimal schedule.
    pub schedule: Schedule,
    /// Its failure (the reproducer's expected output).
    pub failure: DstFailure,
    /// Schedule executions the shrink spent.
    pub runs: usize,
}

/// ddmin-shrinks `schedule` to a 1-minimal failing reproducer: repeatedly
/// removes event chunks (halving granularity) while the remainder still
/// fails. Returns `None` if the schedule does not fail at all. Deterministic:
/// the candidate order is fixed, and candidate runs share nothing.
pub fn shrink(schedule: &Schedule) -> Option<Shrunk> {
    let mut failure = run_schedule(schedule).err()?;
    let mut best = schedule.clone();
    let mut runs = 1;

    let mut chunks = 2;
    while best.events.len() >= 2 {
        let len = best.events.len();
        chunks = chunks.min(len);
        let granularity = chunks;
        let mut reduced = false;
        for chunk in 0..granularity {
            let start = chunk * len / granularity;
            let end = (chunk + 1) * len / granularity;
            if start == end {
                continue;
            }
            let mut candidate = best.clone();
            candidate.events.drain(start..end);
            runs += 1;
            if let Err(f) = run_schedule(&candidate) {
                best = candidate;
                failure = f;
                chunks = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if chunks >= len {
                break; // 1-minimal: no single event can be removed
            }
            chunks = (chunks * 2).min(len);
        }
    }
    Some(Shrunk { schedule: best, failure, runs })
}

/// The seed of fuzz schedule `index` under master seed `master`.
pub fn schedule_seed(master: u64, index: usize) -> u64 {
    splitmix64(master.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A failure found by [`fuzz`], already shrunk.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Index of the first failing schedule (in seed order).
    pub schedule_index: usize,
    /// The original failing schedule.
    pub schedule: Schedule,
    /// The original failure.
    pub failure: DstFailure,
    /// The shrunk reproducer.
    pub shrunk: Schedule,
    /// The shrunk reproducer's failure.
    pub shrunk_failure: DstFailure,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// Schedules executed.
    pub schedules: usize,
    /// The first failure (by schedule index), shrunk — or `None`.
    pub failure: Option<FuzzFailure>,
}

/// Runs `schedules` generated schedules (seeds derived from `base.seed` via
/// [`schedule_seed`]) through the parallel cell runner, then shrinks the
/// first failure. The outcome is byte-identical for every worker count:
/// results come back in push order and shrinking is serial.
pub fn fuzz(base: &DstConfig, schedules: usize) -> FuzzOutcome {
    let mut plan = ExecPlan::new();
    for index in 0..schedules {
        let cfg = DstConfig { seed: schedule_seed(base.seed, index), ..*base };
        plan.push(move || {
            let schedule = generate(&cfg);
            let result = run_schedule(&schedule).err();
            (schedule, result)
        });
    }
    for (index, cell) in plan.run().into_iter().enumerate() {
        let (schedule, result) = cell.value;
        if let Some(failure) = result {
            let shrunk = shrink(&schedule).expect("schedule failed once, so it fails again");
            return FuzzOutcome {
                schedules,
                failure: Some(FuzzFailure {
                    schedule_index: index,
                    schedule,
                    failure,
                    shrunk: shrunk.schedule,
                    shrunk_failure: shrunk.failure,
                }),
            };
        }
    }
    FuzzOutcome { schedules, failure: None }
}

// ---------------------------------------------------------------------------
// Repro files: a hand-rolled RON-like text format (no serde in-tree).
// ---------------------------------------------------------------------------

/// Serializes a schedule as a replayable repro file.
pub fn to_repro(schedule: &Schedule) -> String {
    let mut out = String::from("DstRepro(\n");
    out.push_str(&format!("    seed: {},\n", schedule.seed));
    out.push_str(&format!("    peers: {},\n", schedule.peers));
    out.push_str(&format!("    items: {},\n", schedule.items));
    out.push_str(&format!("    replication: {},\n", schedule.replication));
    match schedule.bug {
        None => out.push_str("    bug: None,\n"),
        Some(InjectedBug::SkipSuccessorOnHeal) => out.push_str("    bug: SkipSuccessorOnHeal,\n"),
        Some(InjectedBug::DropCapacityFifoGuard) => {
            out.push_str("    bug: DropCapacityFifoGuard,\n");
        }
    }
    out.push_str("    events: [\n");
    for event in &schedule.events {
        out.push_str(&format!("        {event},\n"));
    }
    out.push_str("    ],\n)\n");
    out
}

/// Parses a repro file produced by [`to_repro`] (whitespace-tolerant).
pub fn parse_repro(text: &str) -> Result<Schedule, String> {
    let mut seed = None;
    let mut peers = None;
    let mut items = None;
    let mut replication = None;
    let mut bug = None;
    let mut events = Vec::new();
    let mut in_events = false;

    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "DstRepro(" || line == ")" {
            continue;
        }
        if line == "events: [" {
            in_events = true;
            continue;
        }
        if in_events {
            if line == "]" {
                in_events = false;
                continue;
            }
            events.push(parse_event(line)?);
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("malformed line: {line:?}"))?;
        match key {
            "seed" => seed = Some(parse_num(value, "seed")?),
            "peers" => peers = Some(parse_num(value, "peers")? as usize),
            "items" => items = Some(parse_num(value, "items")? as usize),
            "replication" => replication = Some(parse_num(value, "replication")? as usize),
            "bug" => {
                bug = match value {
                    "None" => None,
                    "SkipSuccessorOnHeal" => Some(InjectedBug::SkipSuccessorOnHeal),
                    "DropCapacityFifoGuard" => Some(InjectedBug::DropCapacityFifoGuard),
                    other => return Err(format!("unknown bug: {other:?}")),
                }
            }
            other => return Err(format!("unknown field: {other:?}")),
        }
    }

    Ok(Schedule {
        seed: seed.ok_or("missing seed")?,
        peers: peers.ok_or("missing peers")?,
        items: items.ok_or("missing items")?,
        replication: replication.ok_or("missing replication")?,
        bug,
        events,
    })
}

fn parse_num(value: &str, field: &str) -> Result<u64, String> {
    value.parse::<u64>().map_err(|e| format!("bad {field} {value:?}: {e}"))
}

fn parse_event(line: &str) -> Result<DstEvent, String> {
    if line == "Heal" {
        return Ok(DstEvent::Heal);
    }
    let (name, rest) = line.split_once('(').ok_or_else(|| format!("malformed event: {line:?}"))?;
    let args = rest.strip_suffix(')').ok_or_else(|| format!("unclosed event: {line:?}"))?;
    let mut fields = std::collections::BTreeMap::new();
    for pair in args.split(',') {
        let (k, v) = pair
            .split_once(':')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("malformed event field {pair:?} in {line:?}"))?;
        fields.insert(k.to_string(), parse_num(v, k)?);
    }
    let get = |key: &str| -> Result<u64, String> {
        fields.get(key).copied().ok_or_else(|| format!("event {line:?} missing field {key:?}"))
    };
    match name {
        "Join" => Ok(DstEvent::Join {
            id_entropy: get("id_entropy")?,
            bootstrap_rank: get("bootstrap_rank")?,
        }),
        "Leave" => Ok(DstEvent::Leave { victim_rank: get("victim_rank")? }),
        "Crash" => Ok(DstEvent::Crash { victim_rank: get("victim_rank")? }),
        "Insert" => Ok(DstEvent::Insert {
            initiator_rank: get("initiator_rank")?,
            value_entropy: get("value_entropy")?,
        }),
        "Probe" => {
            Ok(DstEvent::Probe { initiator_rank: get("initiator_rank")?, point: get("point")? })
        }
        "EstimateRefresh" => Ok(DstEvent::EstimateRefresh {
            initiator_rank: get("initiator_rank")?,
            entropy: get("entropy")?,
        }),
        "FaultWindow" => Ok(DstEvent::FaultWindow {
            entropy: get("entropy")?,
            loss_pm: get("loss_pm")? as u16,
            reply_loss_pm: get("reply_loss_pm")? as u16,
            sick_pm: get("sick_pm")? as u16,
            duration: get("duration")? as u16,
        }),
        "FlashCrowd" => {
            Ok(DstEvent::FlashCrowd { id_entropy: get("id_entropy")?, count: get("count")? as u16 })
        }
        "HotspotBurst" => Ok(DstEvent::HotspotBurst {
            initiator_rank: get("initiator_rank")?,
            entropy: get("entropy")?,
            count: get("count")? as u16,
        }),
        "CapacitySkew" => Ok(DstEvent::CapacitySkew {
            entropy: get("entropy")?,
            slow_pm: get("slow_pm")? as u16,
            factor: get("factor")? as u16,
            deadline: get("deadline")? as u16,
            duration: get("duration")? as u16,
        }),
        "ArcPartition" => Ok(DstEvent::ArcPartition {
            start_pm: get("start_pm")? as u16,
            span_pm: get("span_pm")? as u16,
            duration: get("duration")? as u16,
        }),
        "AdversarialJoin" => Ok(DstEvent::AdversarialJoin { jitter: get("jitter")? }),
        "BulkJoinBlock" => Ok(DstEvent::BulkJoinBlock {
            id_entropy: get("id_entropy")?,
            count: get("count")? as u16,
        }),
        "WorkloadBurst" => Ok(DstEvent::WorkloadBurst {
            origin_rank: get("origin_rank")?,
            entropy: get("entropy")?,
            count: get("count")? as u16,
        }),
        "ChurnWindow" => {
            Ok(DstEvent::ChurnWindow { entropy: get("entropy")?, count: get("count")? as u16 })
        }
        other => Err(format!("unknown event: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let cfg = DstConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = DstConfig { seed: cfg.seed + 1, ..cfg };
        assert_ne!(generate(&cfg).events, generate(&other).events);
    }

    #[test]
    fn repro_round_trips() {
        let cfg = DstConfig { bug: Some(InjectedBug::SkipSuccessorOnHeal), ..DstConfig::default() };
        let schedule = generate(&cfg);
        let text = to_repro(&schedule);
        let parsed = parse_repro(&text).expect("parses");
        assert_eq!(parsed, schedule);
        assert_eq!(to_repro(&parsed), text);
    }

    #[test]
    fn workload_burst_round_trips_and_runs_clean() {
        let schedule = Schedule {
            seed: 0xB0057,
            peers: 16,
            items: 800,
            replication: 0,
            bug: None,
            events: vec![
                DstEvent::WorkloadBurst { origin_rank: 3, entropy: 0x5EED, count: 24 },
                DstEvent::Heal,
                DstEvent::WorkloadBurst { origin_rank: 9, entropy: 0xFACE, count: 16 },
            ],
        };
        let text = to_repro(&schedule);
        assert_eq!(parse_repro(&text).expect("parses"), schedule);
        // The burst's inserts are counted as attempts, so the conservation
        // oracle holds; batched routing and piggybacked probes keep every
        // always-on invariant green on a healthy ring.
        run_schedule(&schedule).expect("healthy serving bursts violate nothing");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_repro("DstRepro(\n  seed: x,\n)").is_err());
        assert!(parse_repro("DstRepro(\n  seed: 1,\n)").is_err()); // missing fields
        let cfg = DstConfig::default();
        let text = to_repro(&generate(&cfg)).replace("Heal", "Hea1");
        assert!(parse_repro(&text).is_err() || !text.contains("Hea1"));
    }

    #[test]
    fn minimal_injected_bug_schedule_fails_and_clean_one_passes() {
        let base = Schedule {
            seed: 7,
            peers: 24,
            items: 500,
            replication: 0,
            bug: None,
            events: vec![DstEvent::Crash { victim_rank: 3 }, DstEvent::Heal],
        };
        assert!(run_schedule(&base).is_ok(), "{:?}", run_schedule(&base).err());
        let buggy = Schedule { bug: Some(InjectedBug::SkipSuccessorOnHeal), ..base };
        let failure = run_schedule(&buggy).expect_err("bug must trip the post-heal oracle");
        assert_eq!(failure.event_index, 1);
        assert!(failure.violations.iter().any(|v| v.contains("successor")), "{failure}");
    }

    #[test]
    fn new_adversarial_events_round_trip_through_repro() {
        let schedule = Schedule {
            seed: 3,
            peers: 10,
            items: 100,
            replication: 0,
            bug: Some(InjectedBug::DropCapacityFifoGuard),
            events: vec![
                DstEvent::FlashCrowd { id_entropy: 5, count: 3 },
                DstEvent::HotspotBurst { initiator_rank: 1, entropy: 8, count: 6 },
                DstEvent::CapacitySkew {
                    entropy: 2,
                    slow_pm: 400,
                    factor: 4,
                    deadline: 9,
                    duration: 3,
                },
                DstEvent::ArcPartition { start_pm: 120, span_pm: 250, duration: 2 },
                DstEvent::AdversarialJoin { jitter: 77 },
            ],
        };
        let text = to_repro(&schedule);
        let parsed = parse_repro(&text).expect("parses");
        assert_eq!(parsed, schedule);
        assert_eq!(to_repro(&parsed), text);
    }

    #[test]
    fn adversarial_event_mix_runs_clean_without_bugs() {
        let schedule = Schedule {
            seed: 11,
            peers: 24,
            items: 800,
            replication: 0,
            bug: None,
            events: vec![
                DstEvent::FlashCrowd { id_entropy: 0xAB, count: 4 },
                DstEvent::CapacitySkew {
                    entropy: 7,
                    slow_pm: 500,
                    factor: 4,
                    deadline: 6,
                    duration: 2,
                },
                DstEvent::HotspotBurst { initiator_rank: 3, entropy: 0xC0FFEE, count: 8 },
                DstEvent::ArcPartition { start_pm: 100, span_pm: 300, duration: 2 },
                DstEvent::Probe { initiator_rank: 5, point: 1 << 60 },
                DstEvent::AdversarialJoin { jitter: 13 },
                DstEvent::Heal,
            ],
        };
        let report = run_schedule(&schedule).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.events, 7);
    }

    #[test]
    fn minimal_fifo_guard_drill_fails_and_clean_one_passes() {
        let base = Schedule {
            seed: 7,
            peers: 24,
            items: 500,
            replication: 0,
            bug: None,
            events: vec![
                DstEvent::CapacitySkew {
                    entropy: 11,
                    slow_pm: 1000,
                    factor: 6,
                    deadline: 0,
                    duration: 4,
                },
                DstEvent::HotspotBurst { initiator_rank: 2, entropy: 99, count: 12 },
            ],
        };
        assert!(run_schedule(&base).is_ok(), "{:?}", run_schedule(&base).err());
        let buggy = Schedule { bug: Some(InjectedBug::DropCapacityFifoGuard), ..base };
        let failure = run_schedule(&buggy).expect_err("dropped guard must trip the FIFO oracle");
        assert_eq!(failure.event_index, 1);
        assert!(failure.violations.iter().any(|v| v.contains("reordering")), "{failure}");
    }

    #[test]
    fn fifo_drill_shrinks_to_the_two_event_reproducer() {
        let buggy = Schedule {
            seed: 7,
            peers: 24,
            items: 500,
            replication: 0,
            bug: Some(InjectedBug::DropCapacityFifoGuard),
            events: vec![
                DstEvent::CapacitySkew {
                    entropy: 11,
                    slow_pm: 1000,
                    factor: 6,
                    deadline: 0,
                    duration: 4,
                },
                DstEvent::HotspotBurst { initiator_rank: 2, entropy: 99, count: 12 },
            ],
        };
        let shrunk = shrink(&buggy).expect("fails");
        assert_eq!(shrunk.schedule.events, buggy.events, "already minimal");
    }

    #[test]
    fn shrink_is_a_fixpoint_on_minimal_schedules() {
        let buggy = Schedule {
            seed: 7,
            peers: 24,
            items: 500,
            replication: 0,
            bug: Some(InjectedBug::SkipSuccessorOnHeal),
            events: vec![DstEvent::Crash { victim_rank: 3 }, DstEvent::Heal],
        };
        let shrunk = shrink(&buggy).expect("fails");
        assert_eq!(shrunk.schedule.events, buggy.events, "already minimal");
    }
}
