//! Deterministic parallel execution of experiment cells.
//!
//! An [`ExecPlan`] decomposes an experiment into independent **cells** —
//! typically one `(scenario build, estimator, repeat block)` each — and
//! executes them across `N` worker threads while reassembling results in
//! **submission order**. Because every cell derives all of its randomness
//! from `(scenario.seed, Component, run_index)` and owns a freshly built
//! [`crate::BuiltScenario`] (no shared mutable network state), the output is
//! byte-identical for every worker count: `jobs = N` replays `jobs = 1`
//! exactly. `crates/sim/tests/determinism.rs` holds that contract.
//!
//! Workers steal cells from a shared queue (std `thread::scope`; the
//! workspace is offline, so no rayon), which keeps all workers busy even
//! when cell costs are wildly uneven (an `exact-walk` cell costs ~`O(P)`
//! messages, a `k = 8` probe cell a few dozen).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The configured worker count: 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Cells completed since the last [`take_stats`] call.
static CELLS_DONE: AtomicU64 = AtomicU64::new(0);

/// Aggregate cell CPU time (nanoseconds) since the last [`take_stats`] call.
static CELL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Portion of [`CELL_NANOS`] spent inside scenario builds (the build-vs-run
/// split; see [`note_build`]).
static BUILD_NANOS: AtomicU64 = AtomicU64::new(0);

/// Portion of [`CELL_NANOS`] spent mutating memberships/data inside churn
/// phases (see [`note_churn`]; the remainder after build + churn is
/// estimation time — the three-way split the F12b progress lines report).
static CHURN_NANOS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations made inside cells since the last [`take_stats`] call
/// (stays 0 unless the binary registered [`dde_stats::alloc::CountingAlloc`],
/// which the `expts` binary does under its `perf-counters` feature).
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Build nanoseconds accrued on this thread (monotone; cells measure a
    /// before/after delta around themselves).
    static TL_BUILD: Cell<u64> = const { Cell::new(0) };
    /// Churn nanoseconds accrued on this thread (same protocol as
    /// [`TL_BUILD`]).
    static TL_CHURN: Cell<u64> = const { Cell::new(0) };
}

/// Credits `d` to the current thread's scenario-build time. Called by
/// [`crate::build`]; the surrounding cell (if any) attributes the delta to
/// its own build-vs-run split.
pub fn note_build(d: Duration) {
    // `try_with`: fine to drop the credit during thread teardown. Saturating
    // throughout: a u64 nanosecond counter caps out at ~584 years, so pegging
    // at the max beats wrapping to a nonsense small number on week-long runs.
    let _ = TL_BUILD.try_with(|c| c.set(c.get().saturating_add(nanos_u64(d))));
}

/// Credits `d` to the current thread's churn time (membership mutation +
/// item turnover). Called by the churn-phase experiments; the surrounding
/// cell attributes the delta to its build/churn/estimate split.
pub fn note_churn(d: Duration) {
    let _ = TL_CHURN.try_with(|c| c.set(c.get().saturating_add(nanos_u64(d))));
}

/// A `Duration` as saturating u64 nanoseconds (`as_nanos` returns u128; the
/// raw `as u64` cast would silently truncate past ~584 years).
fn nanos_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The worker count plans run with by default: the last [`set_jobs`] value,
/// or the machine's available parallelism when unset (or set to 0).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Sets the default worker count for subsequent plans (`0` = auto).
///
/// Determinism does **not** depend on this value — it only controls how many
/// threads execute the cells, never what they compute.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// Execution counters accumulated since the previous call (then reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells executed.
    pub cells: u64,
    /// Summed per-cell wall-clock (= CPU time modulo scheduler noise).
    pub cpu: Duration,
    /// Portion of `cpu` spent building scenarios (snapshot-cache misses are
    /// expensive, hits nearly free — this is the number the cache shrinks).
    pub build: Duration,
    /// Portion of `cpu` spent in churn phases (membership mutation + item
    /// turnover; see [`note_churn`]).
    pub churn: Duration,
    /// Heap allocations made inside cells (0 without the counting allocator).
    pub allocs: u64,
}

/// Drains the global cell counters, for progress/summary reporting.
pub fn take_stats() -> ExecStats {
    ExecStats {
        cells: CELLS_DONE.swap(0, Ordering::Relaxed),
        cpu: Duration::from_nanos(CELL_NANOS.swap(0, Ordering::Relaxed)),
        build: Duration::from_nanos(BUILD_NANOS.swap(0, Ordering::Relaxed)),
        churn: Duration::from_nanos(CHURN_NANOS.swap(0, Ordering::Relaxed)),
        allocs: ALLOC_COUNT.swap(0, Ordering::Relaxed),
    }
}

/// One executed cell: its value plus how long it took on its worker.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// What the cell computed.
    pub value: T,
    /// The cell's wall-clock on its worker thread.
    pub elapsed: Duration,
    /// Portion of `elapsed` spent in scenario builds (see [`note_build`]).
    pub build: Duration,
    /// Portion of `elapsed` spent in churn phases (see [`note_churn`]).
    pub churn: Duration,
    /// Heap allocations the cell made (0 without the counting allocator).
    pub allocs: u64,
}

type CellFn<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// An ordered list of independent experiment cells.
///
/// Push cells in the order their results should come back; [`ExecPlan::run`]
/// returns exactly that order regardless of which worker finished what when.
#[derive(Default)]
pub struct ExecPlan<'a, T> {
    cells: Vec<CellFn<'a, T>>,
}

impl<'a, T: Send> ExecPlan<'a, T> {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self { cells: Vec::new() }
    }

    /// Appends a cell. Cells must be self-contained: everything they need is
    /// captured by value (or by shared reference), nothing is mutated across
    /// cells.
    pub fn push(&mut self, cell: impl FnOnce() -> T + Send + 'a) {
        self.cells.push(Box::new(cell));
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs with the ambient worker count (see [`jobs`]).
    pub fn run(self) -> Vec<CellResult<T>> {
        let n = jobs();
        self.run_with(n)
    }

    /// Runs the plan on `jobs` workers, returning results in push order.
    ///
    /// `jobs <= 1` executes inline (no threads); either path produces the
    /// same values because cells share no state.
    pub fn run_with(self, jobs: usize) -> Vec<CellResult<T>> {
        let n = self.cells.len();
        let jobs = jobs.max(1).min(n.max(1));
        if jobs <= 1 {
            return self.cells.into_iter().map(execute).collect();
        }

        let queue: Mutex<VecDeque<(usize, CellFn<'a, T>)>> =
            Mutex::new(self.cells.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<CellResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    // Steal the next unclaimed cell; exit when the queue runs dry.
                    let Some((index, cell)) = queue
                        .lock()
                        .expect("invariant: cells never panic, so the queue lock is never poisoned")
                        .pop_front()
                    else {
                        break;
                    };
                    let result = execute(cell);
                    *slots[index]
                        .lock()
                        .expect("invariant: result slots are poisoned only if a cell panicked") =
                        Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("invariant: scope joined all workers, so no lock is held or poisoned")
                    .expect("every queued cell executes")
            })
            .collect()
    }
}

/// Runs one cell on the current thread, measuring its wall-clock, its
/// build-time share, and its allocation count, then books the counters.
fn execute<T>(cell: CellFn<'_, T>) -> CellResult<T> {
    let build0 = TL_BUILD.with(Cell::get);
    let churn0 = TL_CHURN.with(Cell::get);
    let allocs0 = dde_stats::alloc::thread_allocations();
    // ddelint::allow(wallclock, "timing-only: elapsed feeds CellResult.elapsed and the stderr progress line, never an experiment value — this site-level review also stops D8 taint here")
    let start = Instant::now();
    let value = cell();
    let elapsed = start.elapsed();
    let build = Duration::from_nanos(TL_BUILD.with(Cell::get).saturating_sub(build0));
    let churn = Duration::from_nanos(TL_CHURN.with(Cell::get).saturating_sub(churn0));
    let allocs = dde_stats::alloc::thread_allocations().saturating_sub(allocs0);
    finish(CellResult { value, elapsed, build, churn, allocs })
}

/// Books a completed cell into the global counters.
fn finish<T>(result: CellResult<T>) -> CellResult<T> {
    CELLS_DONE.fetch_add(1, Ordering::Relaxed);
    CELL_NANOS.fetch_add(nanos_u64(result.elapsed), Ordering::Relaxed);
    BUILD_NANOS.fetch_add(nanos_u64(result.build), Ordering::Relaxed);
    CHURN_NANOS.fetch_add(nanos_u64(result.churn), Ordering::Relaxed);
    ALLOC_COUNT.fetch_add(result.allocs, Ordering::Relaxed);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_plan(n: usize) -> ExecPlan<'static, usize> {
        let mut plan = ExecPlan::new();
        for i in 0..n {
            plan.push(move || i * i);
        }
        plan
    }

    #[test]
    fn results_come_back_in_push_order() {
        for jobs in [1, 2, 4, 8] {
            let out = square_plan(23).run_with(jobs);
            let values: Vec<usize> = out.iter().map(|r| r.value).collect();
            assert_eq!(values, (0..23).map(|i| i * i).collect::<Vec<_>>(), "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = square_plan(50).run_with(1);
        let parallel = square_plan(50).run_with(4);
        let a: Vec<usize> = serial.iter().map(|r| r.value).collect();
        let b: Vec<usize> = parallel.iter().map(|r| r.value).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_cells_all_complete() {
        let mut plan = ExecPlan::new();
        for i in 0..12usize {
            plan.push(move || {
                // Wildly uneven cell costs exercise the stealing path.
                let mut acc = 0u64;
                for x in 0..(i as u64 * 50_000) {
                    acc = acc.wrapping_add(x ^ acc.rotate_left(7));
                }
                (i, acc)
            });
        }
        let out = plan.run_with(3);
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.value.0, i);
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let out: Vec<CellResult<u8>> = ExecPlan::new().run_with(4);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_from_the_enclosing_scope() {
        let inputs = [3usize, 1, 4, 1, 5];
        let mut plan = ExecPlan::new();
        for v in &inputs {
            plan.push(move || v + 1);
        }
        let out = plan.run_with(2);
        let values: Vec<usize> = out.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let _ = take_stats();
        let _ = square_plan(5).run_with(2);
        let stats = take_stats();
        // Other tests may run plans concurrently in this binary, so only a
        // lower bound is safe to assert.
        assert!(stats.cells >= 5, "cells = {}", stats.cells);
    }

    #[test]
    fn build_time_is_attributed_to_the_cell() {
        let mut plan = ExecPlan::new();
        plan.push(|| {
            note_build(Duration::from_millis(5));
            note_build(Duration::from_millis(2));
            1u8
        });
        let out = plan.run_with(1);
        assert!(out[0].build >= Duration::from_millis(7), "build = {:?}", out[0].build);
        assert!(out[0].build <= out[0].elapsed.max(Duration::from_millis(7)));
        // The global split sees it too (lower bound only: parallel tests).
        let stats = take_stats();
        assert!(stats.build >= Duration::from_millis(7), "build = {:?}", stats.build);
    }

    #[test]
    fn churn_time_is_attributed_to_the_cell() {
        let mut plan = ExecPlan::new();
        plan.push(|| {
            note_churn(Duration::from_millis(3));
            note_churn(Duration::from_millis(4));
            1u8
        });
        let out = plan.run_with(1);
        assert!(out[0].churn >= Duration::from_millis(7), "churn = {:?}", out[0].churn);
        let stats = take_stats();
        assert!(stats.churn >= Duration::from_millis(7), "churn = {:?}", stats.churn);
    }

    #[test]
    fn nanosecond_counters_saturate_instead_of_wrapping() {
        assert_eq!(nanos_u64(Duration::MAX), u64::MAX);
        assert_eq!(nanos_u64(Duration::from_nanos(7)), 7);
        // Booking past the cap pegs the thread-local instead of wrapping (the
        // raw `+` would panic in debug and wrap in release).
        note_build(Duration::MAX);
        note_build(Duration::from_secs(1));
        assert_eq!(TL_BUILD.with(Cell::get), u64::MAX);
        // Each test runs on its own thread, so no reset needed for siblings.
    }

    #[test]
    fn jobs_setting_round_trips() {
        let before = JOBS.load(Ordering::Relaxed);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
        JOBS.store(before, Ordering::Relaxed);
    }
}
