//! F10 (extension) — replication vs crash storms: data survival and
//! maintenance overhead as the replication factor grows.
//!
//! Without replication, every crash permanently deletes a contiguous value
//! range — what F5 measures the estimator against. With successor-list
//! replication (factor `r`), data dies only when `r+1` *adjacent* peers
//! crash within one repair window. Expected shape: survival climbs steeply
//! with `r` (≈ exponentially in the adjacent-crash probability), while
//! maintenance traffic grows ~linearly with `r`.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use dde_ring::{ChurnConfig, ChurnProcess, MessageKind};
use dde_stats::rng::{Component, SeedSequence};

/// Replication factors swept.
pub fn replication_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![0, 2],
        Scale::Full => vec![0, 1, 2, 3],
    }
}

/// Builds figure F10's series.
pub fn f10_replication(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let fail_rate = 0.04;
    let duration = 8.0;
    let repeats = scale.repeats().min(4);
    let mut t = Table::new(
        format!(
            "F10: data survival vs replication r (crash-only churn {fail_rate}/peer/unit for \
             {duration} units, {repeats} repeats)"
        ),
        &["r", "survival", "replicate msgs", "replicate KB"],
    );
    let sweep = replication_sweep(scale);
    // One cell per (r, repeat): each crash-storm realization is independent.
    let mut plan = ExecPlan::new();
    for &r in &sweep {
        for rep in 0..repeats {
            let scenario = &scenario;
            plan.push(move || {
                let mut built = build(scenario);
                built.net.set_replication(r);
                let before_items = built.net.total_items();
                let seq = SeedSequence::new(scenario.seed ^ 0xF10);
                let mut churn_rng = seq.stream(Component::Churn, rep as u64);
                let cfg = ChurnConfig {
                    join_rate: 0.0,
                    leave_rate: 0.0,
                    fail_rate,
                    stabilize_period: 0.5,
                };
                let stats_before = built.net.stats().clone();
                let mut churn = ChurnProcess::new(cfg);
                churn.run(&mut built.net, duration, &mut churn_rng);
                // Settle: let promotion finish.
                for _ in 0..6 {
                    built.net.stabilize_round();
                }
                let delta = built.net.stats().since(&stats_before);
                (
                    built.net.total_items() as f64 / before_items as f64,
                    delta.count(MessageKind::Replicate) as f64,
                    delta.total_bytes() as f64 / 1024.0,
                )
            });
        }
    }
    let results = plan.run();
    for (i, r) in sweep.iter().enumerate() {
        let runs = &results[i * repeats..(i + 1) * repeats];
        let mean = |g: &dyn Fn(&(f64, f64, f64)) -> f64| {
            runs.iter().map(|c| g(&c.value)).sum::<f64>() / repeats as f64
        };
        t.push_row(vec![r.to_string(), f(mean(&|v| v.0)), f(mean(&|v| v.1)), f(mean(&|v| v.2))]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f10_replication_rescues_data() {
        let t = &f10_replication(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let surv_0: f64 = t.rows[0][1].parse().unwrap();
        let surv_2: f64 = t.rows[1][1].parse().unwrap();
        assert!(surv_0 < 0.9, "r=0 must lose data in a crash storm: {surv_0}");
        assert!(surv_2 > 0.99, "r=2 should survive nearly everything: {surv_2}");
        // Replication costs messages that r=0 does not pay.
        let msgs_0: f64 = t.rows[0][2].parse().unwrap();
        let msgs_2: f64 = t.rows[1][2].parse().unwrap();
        assert_eq!(msgs_0, 0.0);
        assert!(msgs_2 > 0.0);
    }
}
