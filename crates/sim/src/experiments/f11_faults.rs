//! F11 — estimation accuracy under injected message faults.
//!
//! Protocol: install a seeded [`FaultPlan`] on the default network (request
//! loss swept 0–30%, reply loss at half the request rate, no crashes so the
//! membership stays fixed and rows are comparable), then estimate. DF-DDE
//! runs with its default [`RetryPolicy`] — lost probes are re-issued against
//! fresh ring positions — while gossip and the random walk take losses as
//! the raw protocols do: Push-Sum loses mass (drift), the walk loses samples
//! and stalls.
//!
//! Expected shape: DF-DDE stays flat well past 10% loss, paying a modest
//! message/cost inflation for retries; the baselines have no repair path and
//! degrade faster.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use crate::scenario::Scenario;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, GossipAggregation, GossipConfig, RandomWalkConfig,
    RandomWalkSampling,
};
use dde_ring::FaultPlan;

/// Message-loss probabilities swept.
pub fn loss_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.0, 0.1, 0.3],
        Scale::Full => vec![0.0, 0.05, 0.1, 0.2, 0.3],
    }
}

/// The fault plan used for one sweep point: request loss `loss`, reply loss
/// at half that, deterministic in the scenario seed. No crashes — F11
/// isolates message faults from membership change (F5 covers churn).
pub fn sweep_plan(scenario: &Scenario, loss: f64) -> FaultPlan {
    FaultPlan::new(scenario.seed ^ 0xFA17).with_loss(loss).with_reply_loss(loss / 2.0)
}

/// Aggregates one estimator on a fresh build with the given plan installed
/// — one parallel-runner cell.
fn faulted_aggregate(
    scenario: &Scenario,
    loss: f64,
    estimator: &dyn DensityEstimator,
    repeats: usize,
) -> crate::runner::AggregatedResult {
    aggregate_cell(
        scenario,
        |built| built.net.set_fault_plan(sweep_plan(scenario, loss)),
        estimator,
        repeats,
    )
}

/// Builds figure F11's series.
pub fn f11_faults(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let k = default_probes(scale);
    let losses = loss_sweep(scale);
    let dfdde = DfDde::new(DfDdeConfig::with_probes(k));
    let gossip = GossipAggregation::new(GossipConfig::default());
    let walk =
        RandomWalkSampling::new(RandomWalkConfig { peers: k, ..RandomWalkConfig::default() });
    // Three cells per loss point, one per method; the estimators are shared
    // by reference (they are stateless config).
    let mut plan = ExecPlan::new();
    for &loss in &losses {
        let methods: [&dyn DensityEstimator; 3] = [&dfdde, &gossip, &walk];
        for est in methods {
            let scenario = &scenario;
            plan.push(move || faulted_aggregate(scenario, loss, est, scale.repeats()));
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("F11: accuracy under message faults (reply loss = loss/2, k = {k}, retries on)"),
        &["loss", "df-dde ks", "±std", "ok/k", "msgs", "cost ×", "gossip ks", "walk ks"],
    );
    let mut df_msgs_clean = None;
    for (i, loss) in losses.iter().enumerate() {
        let cell = |j: usize| &results[i * 3 + j].value;
        let (df, go, wa) = (cell(0), cell(1), cell(2));
        let clean = *df_msgs_clean.get_or_insert(df.messages_mean);
        t.push_row(vec![
            format!("{loss}"),
            f(df.ks_mean),
            f(df.ks_std),
            f(df.probes_ok_mean / k as f64),
            f(df.messages_mean),
            f(df.messages_mean / clean),
            f(go.ks_mean),
            f(wa.ks_mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f11_dfdde_stays_flat_while_baselines_degrade() {
        let t = &f11_faults(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 3);
        let col = |row: usize, c: usize| -> f64 { t.rows[row][c].parse().unwrap() };
        // Acceptance: DF-DDE KS at 10% loss within 2× of its 0%-loss value.
        let (ks0, ks10) = (col(0, 1), col(1, 1));
        assert!(ks10 <= 2.0 * ks0, "df-dde degraded: ks@0.1 = {ks10} vs ks@0 = {ks0}");
        // Retries keep the probe set essentially complete at 10% loss.
        assert!(col(1, 3) > 0.95, "ok/k at 10% loss = {}", col(1, 3));
        // Cost inflation is real but modest at 10% loss.
        let cost10 = col(1, 5);
        assert!(cost10 > 1.0 && cost10 < 2.0, "cost × at 10% = {cost10}");
        // Push-Sum has no repair path: lost pushes are lost mass, so its
        // error grows steadily with the loss rate.
        let (gossip0, gossip30) = (col(0, 6), col(2, 6));
        assert!(gossip30 > 1.5 * gossip0, "gossip should drift with loss: {gossip0} -> {gossip30}");
        // The walk (equal-weight pooling, no retries) never comes close.
        let (df30, walk30) = (col(2, 1), col(2, 7));
        assert!(df30 < walk30, "df-dde {df30} should beat the walk {walk30} at 30% loss");
    }
}
