//! F12 — the mega-scale regime: accuracy and cost from 10³ to 10⁶ peers.
//!
//! The scalability claim, pushed to its edge: with items ∝ P, a fixed probe
//! budget `k` should hold its DKW accuracy band **unchanged** across three
//! decades of network size while per-estimate cost grows only as
//! `k·O(log P)` routing hops. The aggregation baselines bracket it from both
//! sides — gossip pays `O(rounds·P)` messages for near-exact accuracy (and
//! becomes infeasible long before 10⁶), the Metropolis–Hastings walk pays
//! `O(burn_in + k·gap)` steps for equal-weight-biased samples.
//!
//! Mega-scale cells lean on the three scale paths this crate provides:
//! `Network::build_bulk` wires the ring in `O(P·log P)` without per-join
//! stabilization, the arena keeps per-peer routing state allocation-free,
//! and above [`crate::build::STREAMING_TRUTH_ITEMS`] items the ground truth
//! is the generator's analytic CDF ([`crate::build::DataTruth::Analytic`])
//! instead of a materialized 10⁷-value sort.

use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use crate::scenario::Scenario;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, GossipAggregation, GossipConfig, RandomWalkConfig,
    RandomWalkSampling,
};
/// Items per peer: the dataset grows with the network, as real deployments
/// do, so every size is measured at the same per-peer load.
pub const ITEMS_PER_PEER: usize = 20;

/// Fixed probe budget. Holding `k` constant across the sweep is the point:
/// accuracy depends on sampled mass, not on `P`, so only hop cost may grow.
pub const PROBES: usize = 64;

/// Largest `P` gossip runs at, per scale. Push-Sum costs `rounds·P`
/// histogram messages *per estimate*; at 10⁶ peers that is ~5·10⁷ messages
/// per repeat — the infeasibility this figure documents. Rows above the cap
/// print a `skipped` marker with the modeled cost. The quick suite caps at
/// 10³ so smoke tests stay in seconds; the full sweep measures through 10⁵.
pub fn gossip_cap(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1_000,
        Scale::Full => 100_000,
    }
}

/// Repeats per cell, both scales. A 10⁶-peer cell costs as much as a whole
/// quick suite; three repeats bound the noise without owning the night.
const REPEATS: usize = 3;

/// Network sizes swept: three decades at full scale.
pub fn scale_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 10_000],
        Scale::Full => vec![1_000, 10_000, 100_000, 1_000_000],
    }
}

/// The scenario for one sweep point: the T1 default workload (skewed Zipf
/// data under range placement — every [`dde_stats::dist::DistributionKind`]
/// carries a closed-form CDF, so the analytic truth path has an exact
/// generator to stream against), with only the size axis varied: items ∝ P.
pub fn scale_scenario(p: usize) -> Scenario {
    Scenario::default().with_peers(p).with_items(p * ITEMS_PER_PEER)
}

/// Gossip rounds at size `p`: `2·log₂(P) + 10` is comfortably converged
/// (see [`GossipConfig`]).
fn gossip_rounds(p: usize) -> usize {
    2 * (usize::BITS - 1 - p.max(2).leading_zeros()) as usize + 10
}

/// Builds figure F12's series.
pub fn f12_scale(scale: Scale) -> Vec<Table> {
    let sizes = scale_sweep(scale);
    let mut t = Table::new(
        format!("F12: mega-scale sweep, items = {ITEMS_PER_PEER}·P (k = {PROBES})"),
        &["P", "items", "method", "ks(gen)", "±std", "msgs", "KB", "hops/lookup"],
    );
    // One plan per size: cells stay independent (so `jobs = N` replays
    // `jobs = 1` exactly), and each decade reports progress as it lands —
    // a 10⁶ cell runs for tens of seconds and deserves a heartbeat.
    for &p in &sizes {
        let scenario = scale_scenario(p);
        let mut estimators: Vec<Box<dyn DensityEstimator>> =
            vec![Box::new(DfDde::new(DfDdeConfig::with_probes(PROBES)))];
        if p <= gossip_cap(scale) {
            estimators.push(Box::new(GossipAggregation::new(GossipConfig {
                rounds: gossip_rounds(p),
                ..GossipConfig::default()
            })));
        }
        estimators.push(Box::new(RandomWalkSampling::new(RandomWalkConfig {
            peers: PROBES,
            ..RandomWalkConfig::default()
        })));
        let mut plan = ExecPlan::new();
        for est in estimators {
            let s = &scenario;
            plan.push(move || aggregate_cell(s, |_| (), est.as_ref(), REPEATS));
        }
        let results = plan.run();
        let cell_time: f64 = results.iter().map(|r| r.elapsed.as_secs_f64()).sum();
        eprintln!("[f12] P = {p}: {} cells, {cell_time:.2}s cell time", results.len());
        let mut rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let a = &r.value;
                vec![
                    p.to_string(),
                    (p * ITEMS_PER_PEER).to_string(),
                    a.method.into(),
                    f(a.ks_mean),
                    f(a.ks_std),
                    f(a.messages_mean),
                    f(a.bytes_mean / 1024.0),
                    f(a.hops_mean),
                ]
            })
            .collect();
        // Keep the method order fixed even where gossip is excluded.
        if p > gossip_cap(scale) {
            rows.push(gossip_excluded_row(p));
        }
        rows.sort_by_key(|r| method_rank(&r[2]));
        for row in rows {
            t.push_row(row);
        }
    }
    vec![t]
}

/// Canonical method order within a size block.
fn method_rank(method: &str) -> usize {
    match method {
        "df-dde" => 0,
        "gossip" => 1,
        _ => 2,
    }
}

/// The placeholder row for a size where gossip is out of budget.
fn gossip_excluded_row(p: usize) -> Vec<String> {
    let cost = gossip_rounds(p) as u64 * p as u64;
    vec![
        p.to_string(),
        (p * ITEMS_PER_PEER).to_string(),
        "gossip".into(),
        "-".into(),
        "-".into(),
        format!("(~{cost:.0e} skipped)"),
        "-".into(),
        "-".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::assert::KsBand;

    #[test]
    fn f12_dfdde_stays_in_band_while_cost_grows_sublinearly() {
        let t = &f12_scale(Scale::Quick)[0];
        // 2 sizes × 3 methods, df-dde first in each block.
        assert_eq!(t.rows.len(), 6);
        let col = |row: usize, c: usize| -> f64 { t.rows[row][c].parse().unwrap() };
        for (row, p) in [(0usize, 1_000), (3, 10_000)] {
            assert_eq!(t.rows[row][0], p.to_string());
            assert_eq!(t.rows[row][1], (p * ITEMS_PER_PEER).to_string());
            assert_eq!(t.rows[row][2], "df-dde");
            // DKW band of a k-probe estimate at α = 1e-3, plus the systematic
            // budget of 8-bucket summaries over the skewed default workload —
            // the *same* band at every P is the scale-invariance claim.
            KsBand::new(PROBES, 1e-3)
                .with_systematic(0.06)
                .assert(&format!("f12 df-dde @ P = {p}"), col(row, 3));
        }
        // 10× more peers: df-dde pays only the extra routing hops
        // (k·O(log P)), nowhere near 10×.
        let dfdde_ratio = col(3, 5) / col(0, 5);
        assert!(dfdde_ratio < 3.0, "df-dde msgs grew {dfdde_ratio:.2}× for 10× peers");
        assert!(col(3, 7) > col(0, 7), "hops/lookup must grow with log P");
        // Gossip's cost model is exact — rounds·P messages per estimate —
        // which is what prices it out of the upper decades.
        let gossip_msgs = col(1, 5);
        assert_eq!(t.rows[1][2], "gossip");
        assert_eq!(gossip_msgs, (gossip_rounds(1_000) * 1_000) as f64);
        assert!(gossip_msgs > col(0, 5) * 10.0, "gossip must dwarf df-dde");
        // Above the quick cap the row documents the modeled cost instead.
        assert_eq!(t.rows[4][2], "gossip");
        assert!(t.rows[4][5].contains("skipped"), "{:?}", t.rows[4][5]);
    }

    #[test]
    fn f12_full_sweep_caps_gossip_and_keeps_method_order() {
        let sizes = scale_sweep(Scale::Full);
        assert_eq!(sizes, vec![1_000, 10_000, 100_000, 1_000_000]);
        assert!(sizes.iter().filter(|&&p| p > gossip_cap(Scale::Full)).count() == 1);
        let row = gossip_excluded_row(1_000_000);
        assert_eq!(row[2], "gossip");
        assert!(row[5].contains("skipped"), "{:?}", row[5]);
        // Rounds grow with log P.
        assert!(gossip_rounds(1_000_000) > gossip_rounds(1_000));
        assert_eq!(gossip_rounds(1_024), 30);
    }
}
