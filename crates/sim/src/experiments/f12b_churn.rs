//! F12b — churn at mega-scale: accuracy and repair cost under live
//! membership and data turnover, 10⁴ → 10⁶ peers.
//!
//! F12 shows a fixed probe budget holds its DKW accuracy band across three
//! decades of *static* network size. This column stresses the same claim on
//! a network that never sits still: every round, 1% of the membership
//! churns (half joins, a quarter graceful leaves, a quarter crashes —
//! applied as one [`ChurnBatch`] repair sweep) and 5% of the items turn
//! over (direct-placement inserts/deletes, charged as handoffs but not
//! routed — routing 10⁶ turnover writes would drown the phase under
//! measurement). Two assertions ride on the sweep:
//!
//! * **accuracy**: the post-churn estimate stays inside the *same*
//!   `KsBand::new(k, 1e-3)` envelope as the static F12 column — churn must
//!   not cost accuracy, because repair restores perfect routing and handoff
//!   conserves (non-crashed) data;
//! * **sublinear repair**: finger writes *per membership event* grow like
//!   `O(log P)` — the ratio between adjacent decades stays far below the
//!   10× a linear (rebuild-per-event) policy would pay. Wall-clock is
//!   asserted only in the nightly budget test
//!   (`crates/sim/tests/churn_nightly.rs`), never here.
//!
//! Ground truth stays cheap under mutation: analytic cells journal churn
//! deltas into [`dde_stats::streaming::StreamingTruth`] (`O(M log M)` per
//! round), empirical cells re-collect the realized ECDF once after the last
//! round.

use super::f12_scale::{scale_scenario, ITEMS_PER_PEER, PROBES};
use super::Scale;
use crate::build::{BuiltScenario, DataTruth};
use crate::exec::{note_churn, ExecPlan};
use crate::report::{f, Table};
use crate::runner::aggregate;
use crate::scenario::Scenario;
use dde_core::{DfDde, DfDdeConfig};
use dde_ring::{ChurnBatch, Network, RepairStats, RingId};
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;
use rand::Rng;
use std::time::Instant;

/// The sweep's seed: distinct from F12 so the two columns never share a
/// snapshot (a churned network must not be mistaken for a pristine one —
/// `crates/sim/tests/determinism.rs` checks the cache keys differ).
pub const CHURN_SEED: u64 = 0xF12B;

/// Churn rounds per cell. Two rounds exercise repeated-mutation paths
/// (journals folding on journals, repair on already-repaired columns)
/// without owning the 10⁶-peer cell's budget.
pub const ROUNDS: u64 = 2;

/// Membership churn per round: `p/100` joins, `p/200` leaves, `p/200`
/// crashes — 1% of the network in motion, join-biased to keep size stable
/// against the crash losses.
pub const MEMBERSHIP_PER_ROUND_DEN: usize = 100;

/// Item turnover per round, as a fraction of the live item count.
pub const TURNOVER_FRAC: f64 = 0.05;

/// Repeats per cell (matches F12).
const REPEATS: usize = 3;

/// Network sizes swept: the upper decades, where amortized mutation is the
/// only affordable policy.
pub fn churn_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 10_000],
        Scale::Full => vec![10_000, 100_000, 1_000_000],
    }
}

/// The scenario for one sweep point: F12's shape (items ∝ P, skewed Zipf
/// under range placement) re-seeded for the churn column.
pub fn churn_scenario(p: usize) -> Scenario {
    scale_scenario(p).with_seed(CHURN_SEED)
}

/// What one cell's churn phase did, accumulated over all rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnPhaseStats {
    /// Membership events applied (joins + leaves + crashes).
    pub events: u64,
    /// Membership events skipped by batch policy (duplicate victims, …).
    pub skipped: u64,
    /// Items moved by join/leave handoffs.
    pub items_moved: u64,
    /// Items inserted + deleted by turnover.
    pub items_turned: u64,
    /// Repair work across all batches.
    pub repair: RepairStats,
}

impl ChurnPhaseStats {
    /// Finger writes per applied membership event — the sublinearity metric.
    pub fn writes_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.repair.finger_writes as f64 / self.events as f64
    }
}

/// Queues and applies one round's membership window — `p/100` joins at
/// fresh uniform ids, `p/200` leaves and `p/200` crashes at uniform victims
/// — as a single [`ChurnBatch`]. Victim collisions are resolved by the
/// batch's one-event-per-id policy (skipped, counted). Shared with the
/// nightly budget test, which times exactly this call.
pub fn membership_batch(
    net: &mut Network,
    batch: &mut ChurnBatch,
    seed: u64,
    round: u64,
) -> dde_ring::ChurnApplied {
    let mut rng = SeedSequence::new(seed).stream(Component::Churn, 2 * round);
    let p = net.len();
    let joins = (p / MEMBERSHIP_PER_ROUND_DEN).max(2);
    let deaths = (p / (2 * MEMBERSHIP_PER_ROUND_DEN)).max(1);
    for _ in 0..joins {
        batch.join(RingId(rng.gen()));
    }
    for _ in 0..deaths {
        if let Some(id) = net.random_peer(&mut rng) {
            batch.leave(id);
        }
    }
    for _ in 0..deaths {
        if let Some(id) = net.random_peer(&mut rng) {
            batch.crash(id);
        }
    }
    batch.apply(net)
}

/// One round of item turnover: deletes `TURNOVER_FRAC` of the live items
/// (uniform over stores) and inserts the same number of fresh draws from
/// the generating distribution, both through the direct-placement path.
/// Returns `(inserted, removed)` for the caller's truth journal.
pub fn item_turnover(built: &mut BuiltScenario, round: u64) -> (Vec<f64>, Vec<f64>) {
    let seq = SeedSequence::new(built.scenario.seed);
    let mut rng = seq.stream(Component::Churn, 2 * round + 1);
    let t = (built.net.total_items() as f64 * TURNOVER_FRAC) as usize;
    let mut removed = Vec::with_capacity(t);
    for _ in 0..t {
        if let Some(x) = built.net.churn_remove_item(&mut rng) {
            removed.push(x);
        }
    }
    let mut inserted = Vec::with_capacity(t);
    for _ in 0..t {
        let x = built.truth.sample(&mut rng);
        built.net.churn_insert_item(x);
        inserted.push(x);
    }
    (inserted, removed)
}

/// Runs the full churn phase on a built scenario: `ROUNDS` alternations of
/// membership batch + item turnover, with the ground truth kept in sync
/// (delta journals for analytic cells, one ECDF re-collection at the end
/// for empirical cells).
pub fn churn_phase(built: &mut BuiltScenario) -> ChurnPhaseStats {
    let mut phase = ChurnPhaseStats::default();
    let seed = built.scenario.seed;
    let mut batch = ChurnBatch::new();
    for round in 0..ROUNDS {
        let applied = membership_batch(&mut built.net, &mut batch, seed, round);
        phase.events += applied.joins + applied.leaves + applied.crashes;
        phase.skipped += applied.skipped;
        phase.items_moved += applied.items_moved;
        phase.repair.absorb(applied.repair);
        let lost = applied.lost;
        let (inserted, removed) = item_turnover(built, round);
        phase.items_turned += (inserted.len() + removed.len()) as u64;
        if let DataTruth::Analytic(truth) = &mut built.data_truth {
            truth.journal_adds(inserted);
            truth.journal_removes(removed.into_iter().chain(lost));
        }
    }
    if matches!(built.data_truth, DataTruth::Empirical(_)) {
        built.data_truth = DataTruth::Empirical(Ecdf::new(built.net.global_values()));
    }
    phase
}

/// Builds figure F12b's series.
pub fn f12b_churn(scale: Scale) -> Vec<Table> {
    let sizes = churn_sweep(scale);
    let mut t = Table::new(
        format!(
            "F12b: churn at mega-scale, {ROUNDS} rounds of 1% membership + {:.0}% item \
             turnover (items = {ITEMS_PER_PEER}·P, k = {PROBES})",
            TURNOVER_FRAC * 100.0
        ),
        &["P", "items", "events", "moved", "ks(gen)", "±std", "msgs", "KB", "writes/event"],
    );
    for &p in &sizes {
        let scenario = churn_scenario(p);
        let mut plan = ExecPlan::new();
        {
            let s = &scenario;
            plan.push(move || {
                let mut built = crate::build::build(s);
                // ddelint::allow(wallclock, "timing-only: feeds the note_churn phase split and the stderr progress line, never an experiment value")
                let t0 = Instant::now();
                let phase = churn_phase(&mut built);
                note_churn(t0.elapsed());
                let est = DfDde::new(DfDdeConfig::with_probes(PROBES));
                let agg = aggregate(&mut built, &est, REPEATS);
                (agg, phase)
            });
        }
        let results = plan.run();
        let r = &results[0];
        let (agg, phase) = &r.value;
        let estimate = r.elapsed.saturating_sub(r.build).saturating_sub(r.churn);
        eprintln!(
            "[f12b] P = {p}: build {:.2}s churn {:.2}s estimate {:.2}s ({} events, {} \
             finger writes, {} items turned)",
            r.build.as_secs_f64(),
            r.churn.as_secs_f64(),
            estimate.as_secs_f64(),
            phase.events,
            phase.repair.finger_writes,
            phase.items_turned,
        );
        t.push_row(vec![
            p.to_string(),
            (p * ITEMS_PER_PEER).to_string(),
            phase.events.to_string(),
            phase.items_moved.to_string(),
            f(agg.ks_mean),
            f(agg.ks_std),
            f(agg.messages_mean),
            f(agg.bytes_mean / 1024.0),
            f(phase.writes_per_event()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::assert::KsBand;

    #[test]
    fn f12b_holds_accuracy_band_and_sublinear_repair_cost() {
        let t = &f12b_churn(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let col = |row: usize, c: usize| -> f64 { t.rows[row][c].parse().unwrap() };
        for (row, p) in [(0usize, 1_000), (1, 10_000)] {
            assert_eq!(t.rows[row][0], p.to_string());
            // Same DKW band as static F12: churn must not cost accuracy.
            KsBand::new(PROBES, 1e-3)
                .with_systematic(0.06)
                .assert(&format!("f12b df-dde @ P = {p}"), col(row, 4));
            assert!(col(row, 2) > 0.0, "no events applied at P = {p}");
        }
        // Sublinear per-event repair: a 10× larger network may pay only the
        // extra O(log P) finger locality, nowhere near 10×.
        let ratio = col(1, 8) / col(0, 8);
        assert!(
            ratio < 3.0,
            "finger writes/event grew {ratio:.2}× for 10× peers (linear would be ~10×)"
        );
    }

    #[test]
    fn churn_phase_keeps_truth_and_network_consistent() {
        let scenario = churn_scenario(512).with_items(512 * ITEMS_PER_PEER);
        let mut built = crate::build::build_fresh(&scenario);
        let items_before = built.net.total_items();
        let phase = churn_phase(&mut built);
        assert!(phase.events > 0);
        assert!(phase.items_turned > 0);
        assert!(built.net.check_invariants().is_empty(), "{:?}", built.net.check_invariants());
        // Empirical truth was re-collected: its sample count equals the live
        // item count (crashes lost some, turnover is net-zero).
        let ecdf = built.data_truth.ecdf().expect("quick scale is empirical");
        assert_eq!(ecdf.samples().len() as u64, built.net.total_items());
        assert!(built.net.total_items() < items_before, "crashes must lose some items");
    }

    #[test]
    fn full_sweep_reaches_a_million_peers() {
        assert_eq!(churn_sweep(Scale::Full), vec![10_000, 100_000, 1_000_000]);
        assert_ne!(churn_scenario(1_000).seed, scale_scenario(1_000).seed);
    }
}
