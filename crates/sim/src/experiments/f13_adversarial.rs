//! F13 — accuracy under the adversarial & heterogeneous scenario pack.
//!
//! Protocol: the default scenario is re-run with one adversarial axis
//! switched on at a time — Zipf hotspot arcs in the *data*, adversarial
//! node *placement*, a flash crowd in the *membership*, a heterogeneous
//! capacity class in the *links*, and a spatially-correlated arc partition
//! in the *topology* — and DF-DDE, gossip, and the random walk estimate on
//! each. Axes ride in the [`Scenario`] itself (not a post-build setup
//! pass), so every cell flows through the snapshot cache and the `--jobs`
//! determinism matrix like any other experiment.
//!
//! Expected shape: DF-DDE's arc-length correction keeps it inside its DKW
//! band on every connected axis (hotspots, adversarial ids, flash crowds,
//! slow peers); the equal-weight baselines degrade where arc length and
//! data share decorrelate. The arc partition is the exception for
//! everybody: an unreachable arc's mass is an irreducible bias, and the
//! row instead pins that probes are actually lost and the damage stays
//! bounded by the cut mass.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use crate::scenario::{CapacitySpec, NodeLayout, PartitionSpec, Scenario};
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, GossipAggregation, GossipConfig, RandomWalkConfig,
    RandomWalkSampling,
};
use dde_stats::dist::DistributionKind;

/// The axis cells swept: `(label, scenario)` pairs, baseline first.
pub fn axis_sweep(scale: Scale) -> Vec<(&'static str, Scenario)> {
    let base = default_scenario(scale);
    vec![
        ("baseline", base.clone()),
        (
            "hotspot-zipf",
            base.clone().with_distribution(DistributionKind::HotspotZipf {
                cells: 64,
                exponent: 1.2,
                arcs: 2,
            }),
        ),
        ("adversarial-ids", base.clone().with_layout(NodeLayout::Adversarial)),
        ("flash-crowd", base.clone().with_flash_crowd(base.peers / 8)),
        (
            // A quarter of the peers run at 4x delay, and a scaled reply
            // draw above 10 units misses the caller's patience — so probes
            // into the slow class genuinely time out and retry, instead of
            // the axis being pure (invisible-in-KS) delay scaling.
            "capacity-skew",
            base.clone().with_capacity(CapacitySpec { slow_pm: 250, factor: 4, deadline: 10 }),
        ),
        ("arc-partition", base.with_partition(PartitionSpec { start_pm: 550, span_pm: 150 })),
    ]
}

/// Builds figure F13's table.
pub fn f13_adversarial(scale: Scale) -> Vec<Table> {
    let axes = axis_sweep(scale);
    let k = default_probes(scale);
    let dfdde = DfDde::new(DfDdeConfig::with_probes(k));
    let gossip = GossipAggregation::new(GossipConfig::default());
    let walk =
        RandomWalkSampling::new(RandomWalkConfig { peers: k, ..RandomWalkConfig::default() });
    let mut plan = ExecPlan::new();
    for (_, scenario) in &axes {
        let methods: [&dyn DensityEstimator; 3] = [&dfdde, &gossip, &walk];
        for est in methods {
            plan.push(move || aggregate_cell(scenario, |_| (), est, scale.repeats()));
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("F13: adversarial & heterogeneous axes (k = {k}, one axis on per row)"),
        &["axis", "df-dde ks", "±std", "ok/k", "msgs", "gossip ks", "walk ks"],
    );
    for (i, (label, _)) in axes.iter().enumerate() {
        let cell = |j: usize| &results[i * 3 + j].value;
        let (df, go, wa) = (cell(0), cell(1), cell(2));
        t.push_row(vec![
            (*label).into(),
            f(df.ks_mean),
            f(df.ks_std),
            f(df.probes_ok_mean / k as f64),
            f(df.messages_mean),
            f(go.ks_mean),
            f(wa.ks_mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::assert::KsBand;

    #[test]
    fn f13_dfdde_holds_its_dkw_band_on_every_connected_axis() {
        let t = &f13_adversarial(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 6);
        let col = |row: usize, c: usize| -> f64 { t.rows[row][c].parse().unwrap() };
        let k = default_probes(Scale::Quick);
        // One DKW band per connected axis: sampling noise of a k-probe
        // estimate at α = 1e-3, plus the axis's systematic budget (summary
        // quantization, crowd-churned arcs).
        for (row, systematic) in [(0usize, 0.05), (1, 0.06), (2, 0.08), (3, 0.06), (4, 0.06)] {
            KsBand::new(k, 1e-3)
                .with_systematic(systematic)
                .assert(&format!("f13 df-dde @ {}", t.rows[row][0]), col(row, 1));
        }
        // The partition cuts a 15%-of-ring arc: probes into it are lost
        // (ok/k strictly below 1) and accuracy genuinely degrades — an
        // unreachable arc's mass is irreducible bias, and a repeat whose
        // initiator sits *inside* the arc sees only the minority side. The
        // row documents the damage rather than promising a band.
        assert!(col(5, 3) < 0.999, "partition lost no probes: ok/k = {}", col(5, 3));
        assert!(
            col(5, 1) > col(0, 1) && col(5, 1) < 1.0,
            "partitioned df-dde ks = {} (baseline {})",
            col(5, 1),
            col(0, 1)
        );
        // Adversarial placement decorrelates arc length from data share:
        // DF-DDE's correction absorbs it, the equal-weight walk does not.
        assert!(
            col(2, 1) < col(2, 6),
            "df-dde {} should beat the walk {} under adversarial ids",
            col(2, 1),
            col(2, 6)
        );
    }
}
