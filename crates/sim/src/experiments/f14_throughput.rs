//! F14 — heavy-traffic serving: latency, throughput, and the cost of
//! keeping an estimate fresh under load.
//!
//! The paper's experiments measure estimation in a quiet network; a serving
//! deployment estimates *while* handling foreground traffic. F14 drives the
//! open-loop engine ([`crate::workload`]) through a rate sweep and a mix
//! sweep, each cell run twice: **plain** (per-op routing, dedicated probes
//! only — what the paper's accounting implies) and **serving** (same-origin
//! batched routing + probe piggybacking). The claims this figure records:
//!
//! * routing optimizations change *charges only* — throughput, failure
//!   counts, and the GK hop-latency percentiles are identical between
//!   modes (the equivalence suite pins this bit-exactly);
//! * piggybacking displaces the majority of dedicated probe messages once
//!   foreground traffic is dense enough to visit most strata between
//!   refreshes — ≥ 50 % at the mid rate point, asserted in-suite — while
//!   the estimate stays inside the same DKW accuracy band;
//! * estimate staleness seen by readers is bounded by the refresh interval
//!   and independent of load (open-loop arrivals never starve the
//!   refresher in this structural simulator).
//!
//! `BENCH_throughput.json` records the nightly wall-clock protocol over the
//! same cells (`crates/sim/tests/throughput_nightly.rs`).

use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::scenario::Scenario;
use crate::workload::{run_workload, OpMix, WorkloadReport, WorkloadSpec};

/// Phase-1 probes per refresh. Smaller than f12's 64: a serving refresh
/// happens every couple of virtual seconds, so the budget is per-cycle.
pub const PROBES: usize = 48;

/// Virtual seconds of traffic per run.
pub fn duration(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 6.0,
        Scale::Full => 12.0,
    }
}

/// The open-loop arrival rates swept (ops per virtual second).
pub fn rate_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![50.0, 200.0, 800.0],
        Scale::Full => vec![100.0, 400.0, 1600.0],
    }
}

/// The mid rate point — where the ≥ 50 % piggyback displacement claim is
/// asserted (low rates legitimately cover fewer strata per cycle).
pub fn mid_rate(scale: Scale) -> f64 {
    let rates = rate_sweep(scale);
    rates[rates.len() / 2]
}

/// Foreground mixes swept at the mid rate: insert-heavy ingest, the
/// lookup-heavy serving default, and a read-heavy mix where half the ops
/// consult the estimate.
pub fn mix_sweep() -> Vec<OpMix> {
    vec![OpMix::new(600, 300), OpMix::new(200, 700), OpMix::new(50, 450)]
}

/// The serving scenario: a mid-size ring with the default skewed workload.
pub fn f14_scenario(scale: Scale) -> Scenario {
    match scale {
        Scale::Quick => Scenario::default().with_peers(64).with_items(5_000).with_seed(1401),
        Scale::Full => Scenario::default().with_peers(256).with_items(20_000).with_seed(1401),
    }
}

/// The spec for one cell.
pub fn f14_spec(rate: f64, mix: OpMix, serving: bool, scale: Scale) -> WorkloadSpec {
    WorkloadSpec {
        rate,
        duration: duration(scale),
        mix,
        probes: PROBES,
        batch: serving,
        piggyback: serving,
        ..WorkloadSpec::default()
    }
}

/// A cell's repeat-averaged measurements (all means over the repeat block).
struct CellAvg {
    throughput: f64,
    hop_p50: f64,
    hop_p95: f64,
    hop_p99: f64,
    staleness: f64,
    est_ks: f64,
    dedicated_probes: f64,
    piggyback_msgs: f64,
    lookup_hop_msgs: f64,
}

/// Runs one cell: `repeats` independent serving runs, averaged.
fn run_cell(scenario: &Scenario, spec: &WorkloadSpec, repeats: usize) -> CellAvg {
    let built = build(scenario);
    let reports: Vec<WorkloadReport> =
        (0..repeats).map(|r| run_workload(&built, spec, r as u64)).collect();
    let n = reports.len() as f64;
    let mean = |get: &dyn Fn(&WorkloadReport) -> f64| reports.iter().map(get).sum::<f64>() / n;
    CellAvg {
        throughput: mean(&|r| r.throughput),
        hop_p50: mean(&|r| r.hop_p50),
        hop_p95: mean(&|r| r.hop_p95),
        hop_p99: mean(&|r| r.hop_p99),
        staleness: mean(&|r| r.mean_staleness),
        est_ks: mean(&|r| r.est_ks),
        dedicated_probes: mean(&|r| r.dedicated_probes as f64),
        piggyback_msgs: mean(&|r| r.piggyback_msgs as f64),
        lookup_hop_msgs: mean(&|r| r.lookup_hop_msgs as f64),
    }
}

/// One table row; `save` is the dedicated-probe displacement vs the plain
/// cell of the same sweep point (serving rows only).
fn row(label: &str, mode: &str, a: &CellAvg, save: Option<f64>) -> Vec<String> {
    vec![
        label.to_string(),
        mode.to_string(),
        f(a.throughput),
        f(a.hop_p50),
        f(a.hop_p95),
        f(a.hop_p99),
        f(a.staleness),
        f(a.est_ks),
        f(a.dedicated_probes),
        f(a.piggyback_msgs),
        f(a.lookup_hop_msgs),
        match save {
            Some(s) => format!("{:.0}%", s * 100.0),
            None => "-".into(),
        },
    ]
}

const COLUMNS: &[&str] = &[
    "point",
    "mode",
    "thpt",
    "p50",
    "p95",
    "p99",
    "stale",
    "est.ks",
    "ded.probes",
    "piggy",
    "hop.msgs",
    "pb.save",
];

/// Builds figure F14's tables: the rate sweep (serving mix) and the mix
/// sweep (mid rate).
pub fn f14_throughput(scale: Scale) -> Vec<Table> {
    let repeats = scale.repeats();
    let scenario = f14_scenario(scale);
    let serving_mix = OpMix::new(200, 700);

    let rates = rate_sweep(scale);
    let mut t1 = Table::new(
        format!("F14a: open-loop rate sweep, mix 200/700/100‰ i/l/e (k = {PROBES}, refresh 2s)"),
        COLUMNS,
    );
    let mut plan = ExecPlan::new();
    for &rate in &rates {
        for serving in [false, true] {
            let s = &scenario;
            plan.push(move || run_cell(s, &f14_spec(rate, serving_mix, serving, scale), repeats));
        }
    }
    let results = plan.run();
    for (i, &rate) in rates.iter().enumerate() {
        let plain = &results[2 * i].value;
        let serving = &results[2 * i + 1].value;
        let save = 1.0 - serving.dedicated_probes / plain.dedicated_probes.max(1.0);
        let label = format!("{rate:.0}/s");
        t1.push_row(row(&label, "plain", plain, None));
        t1.push_row(row(&label, "serving", serving, Some(save)));
    }

    let mixes = mix_sweep();
    let rate = mid_rate(scale);
    let mut t2 = Table::new(
        format!("F14b: mix sweep at {rate:.0} ops/s (k = {PROBES}, per-mille i/l/e)"),
        COLUMNS,
    );
    let mut plan = ExecPlan::new();
    for &mix in &mixes {
        for serving in [false, true] {
            let s = &scenario;
            plan.push(move || run_cell(s, &f14_spec(rate, mix, serving, scale), repeats));
        }
    }
    let results = plan.run();
    for (i, mix) in mixes.iter().enumerate() {
        let plain = &results[2 * i].value;
        let serving = &results[2 * i + 1].value;
        let save = 1.0 - serving.dedicated_probes / plain.dedicated_probes.max(1.0);
        let label = format!("{}/{}/{}", mix.insert_pm, mix.lookup_pm, mix.estimate_pm());
        t2.push_row(row(&label, "plain", plain, None));
        t2.push_row(row(&label, "serving", serving, Some(save)));
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_stats::assert::KsBand;

    fn col(t: &Table, row: usize, c: usize) -> f64 {
        t.rows[row][c].parse().unwrap()
    }

    #[test]
    fn f14_piggyback_displaces_dedicated_probes_within_the_dkw_band() {
        let tables = f14_throughput(Scale::Quick);
        let t1 = &tables[0];
        assert_eq!(t1.rows.len(), 2 * rate_sweep(Scale::Quick).len());
        let mid =
            rate_sweep(Scale::Quick).iter().position(|&r| r == mid_rate(Scale::Quick)).unwrap();
        let (plain, serving) = (2 * mid, 2 * mid + 1);
        assert_eq!(t1.rows[plain][1], "plain");
        assert_eq!(t1.rows[serving][1], "serving");
        // The acceptance claim: at the mid rate, piggybacking displaces at
        // least half of the dedicated probe messages...
        let ded_plain = col(t1, plain, 8);
        let ded_serving = col(t1, serving, 8);
        assert!(
            ded_serving <= 0.5 * ded_plain,
            "piggybacking must cut dedicated probes ≥ 50%: {ded_serving} vs {ded_plain}"
        );
        assert!(col(t1, serving, 9) > 0.0, "piggybacked replies must flow");
        // ...while the estimate stays inside the DKW band of a k-probe
        // estimate (α = 1e-3) plus the systematic budget of 8-bucket
        // summaries over the skewed default workload and the live inserts
        // accrued since the last refresh.
        for r in [plain, serving] {
            KsBand::new(PROBES, 1e-3)
                .with_systematic(0.08)
                .assert(&format!("f14 {} est", t1.rows[r][1]), col(t1, r, 7));
        }
        // Batched routing also amortizes foreground hop charges.
        assert!(col(t1, serving, 10) < col(t1, plain, 10), "batch dedup must drop hop msgs");
    }

    #[test]
    fn f14_modes_serve_identical_traffic_and_load_scales_throughput() {
        let tables = f14_throughput(Scale::Quick);
        let t1 = &tables[0];
        let rates = rate_sweep(Scale::Quick);
        for (i, rate) in rates.iter().enumerate() {
            // Same completed work and identical latency profile per mode:
            // the optimizations change message charges, not behaviour.
            for c in [2, 3, 4, 5] {
                assert_eq!(
                    t1.rows[2 * i][c],
                    t1.rows[2 * i + 1][c],
                    "rate {rate} col {c} must match across modes"
                );
            }
            // Staleness stays bounded by the refresh interval at every load.
            assert!(col(t1, 2 * i, 6) <= 2.0);
        }
        // Open loop: offered load is served load in the structural simulator.
        assert!(col(t1, 2, 2) > col(t1, 0, 2));
        assert!(col(t1, 4, 2) > col(t1, 2, 2));
        // The mix sweep covers ingest-, serving-, and read-heavy traffic.
        let t2 = &tables[1];
        assert_eq!(t2.rows.len(), 2 * mix_sweep().len());
        assert_eq!(t2.rows[0][0], "600/300/100");
        assert_eq!(t2.rows[2][0], "200/700/100");
        assert_eq!(t2.rows[4][0], "50/450/500");
    }
}
