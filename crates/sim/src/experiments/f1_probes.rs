//! F1 — estimation accuracy vs number of probes `k`, for every method.
//!
//! Expected shape (the abstract's "high estimation accuracy with low
//! estimation cost"): DF-DDE's KS error decays like `O(1/√k)` and is the
//! best of all sampling methods at every `k`; equal-weight peer sampling
//! *plateaus* (bias does not average out); count-weighted peer sampling is
//! consistent but noisier than DF-DDE.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, PoolWeighting, RandomWalkConfig, RandomWalkSampling,
    UniformPeerConfig, UniformPeerSampling,
};

/// Probe budgets swept.
pub fn probe_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![8, 32, 128],
        Scale::Full => vec![8, 16, 32, 64, 128, 256, 512],
    }
}

/// Builds figure F1's series.
pub fn f1_accuracy_vs_probes(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let repeats = scale.repeats();
    let ks = probe_sweep(scale);
    let mut plan = ExecPlan::new();
    for &k in &ks {
        // One cell per (k, estimator): fresh build, independent of every
        // other cell, so the grid parallelizes without ordering effects.
        for estimator in sampling_estimators(k) {
            let scenario = &scenario;
            plan.push(move || aggregate_cell(scenario, |_| (), estimator.as_ref(), repeats));
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        "F1: KS accuracy vs probes k (mean over repeats; msgs = df-dde mean)",
        &["k", "df-dde", "±std", "uniform-peer", "uniform-peer-cw", "random-walk", "msgs(df-dde)"],
    );
    for (i, k) in ks.iter().enumerate() {
        let cell = |j: usize| &results[i * 4 + j].value;
        let (dfdde, up, upcw, walk) = (cell(0), cell(1), cell(2), cell(3));
        t.push_row(vec![
            k.to_string(),
            f(dfdde.ks_mean),
            f(dfdde.ks_std),
            f(up.ks_mean),
            f(upcw.ks_mean),
            f(walk.ks_mean),
            f(dfdde.messages_mean),
        ]);
    }
    vec![t]
}

/// The estimators compared in F1/F4, at probe budget `k` (shared helper).
pub fn sampling_estimators(k: usize) -> Vec<Box<dyn DensityEstimator>> {
    vec![
        Box::new(DfDde::new(DfDdeConfig::with_probes(k))),
        Box::new(UniformPeerSampling::new(UniformPeerConfig {
            peers: k,
            ..UniformPeerConfig::default()
        })),
        Box::new(UniformPeerSampling::new(UniformPeerConfig {
            peers: k,
            weighting: PoolWeighting::CountWeighted,
            ..UniformPeerConfig::default()
        })),
        Box::new(RandomWalkSampling::new(RandomWalkConfig {
            peers: k,
            ..RandomWalkConfig::default()
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_error_decays_with_k_for_dfdde() {
        let tables = f1_accuracy_vs_probes(Scale::Quick);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let ks_first: f64 = t.rows[0][1].parse().unwrap();
        let ks_last: f64 = t.rows[t.rows.len() - 1][1].parse().unwrap();
        assert!(ks_last < ks_first, "df-dde error should shrink with k: {ks_first} -> {ks_last}");
        // At the largest k, df-dde beats the biased baseline.
        let naive_last: f64 = t.rows[t.rows.len() - 1][3].parse().unwrap();
        assert!(ks_last < naive_last, "df-dde {ks_last} vs uniform-peer {naive_last}");
    }
}
