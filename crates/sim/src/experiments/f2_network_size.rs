//! F2 — accuracy and cost vs network size, at a fixed probe budget.
//!
//! Expected shape: KS accuracy is essentially **flat** in `P` (the estimator
//! samples mass, not peers), while cost grows only as `k·O(log P)` — the
//! scalability half of the abstract's claim.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{DfDde, DfDdeConfig};

/// Network sizes swept.
pub fn size_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![64, 256, 1024],
        Scale::Full => vec![256, 1024, 4096, 16384],
    }
}

/// Builds figure F2's series.
pub fn f2_accuracy_vs_network_size(scale: Scale) -> Vec<Table> {
    let k = default_probes(scale);
    let sizes = size_sweep(scale);
    let mut plan = ExecPlan::new();
    for &p in &sizes {
        plan.push(move || {
            let scenario = default_scenario(scale).with_peers(p);
            aggregate_cell(
                &scenario,
                |_| (),
                &DfDde::new(DfDdeConfig::with_probes(k)),
                scale.repeats(),
            )
        });
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("F2: accuracy & cost vs network size P (k = {k})"),
        &["P", "ks(gen)", "±std", "msgs", "hops/lookup"],
    );
    for (p, r) in sizes.iter().zip(&results) {
        let a = &r.value;
        t.push_row(vec![
            p.to_string(),
            f(a.ks_mean),
            f(a.ks_std),
            f(a.messages_mean),
            f(a.hops_mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_accuracy_flat_cost_logarithmic() {
        let t = &f2_accuracy_vs_network_size(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 3);
        let ks_small: f64 = t.rows[0][1].parse().unwrap();
        let ks_large: f64 = t.rows[2][1].parse().unwrap();
        // Accuracy does not degrade with network size (allow noise headroom).
        assert!(ks_large < ks_small * 2.5 + 0.02, "{ks_small} -> {ks_large}");
        // Hops grow with log P: 16× more peers ⇒ clearly more hops, but far
        // less than 16×.
        let hops_small: f64 = t.rows[0][4].parse().unwrap();
        let hops_large: f64 = t.rows[2][4].parse().unwrap();
        assert!(hops_large > hops_small);
        assert!(hops_large < hops_small * 4.0);
    }
}
