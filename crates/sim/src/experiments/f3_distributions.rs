//! F3 — the **distribution-free** claim: accuracy across data distributions.
//!
//! Expected shape: DF-DDE's KS error is roughly constant across the whole
//! distribution suite (uniform, normal, exponential, Pareto, Zipf, bimodal),
//! while the biased baseline's error *grows with skew* — the heart of the
//! abstract's "regardless of distribution models of the underlying data".

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{DensityEstimator, DfDde, DfDdeConfig, UniformPeerConfig, UniformPeerSampling};
use dde_stats::dist::DistributionKind;

/// Builds figure F3's series.
pub fn f3_distribution_free(scale: Scale) -> Vec<Table> {
    let k = default_probes(scale);
    let suite = DistributionKind::standard_suite();
    let mut plan = ExecPlan::new();
    for kind in &suite {
        let scenario = default_scenario(scale).with_distribution(kind.clone());
        // Three cells per distribution: df-dde, the biased baseline, and the
        // exact walk (1 repeat — it is deterministic up to its start peer).
        let cells: Vec<(Box<dyn DensityEstimator>, usize)> = vec![
            (Box::new(DfDde::new(DfDdeConfig::with_probes(k))), scale.repeats()),
            (
                Box::new(UniformPeerSampling::new(UniformPeerConfig {
                    peers: k,
                    ..UniformPeerConfig::default()
                })),
                scale.repeats(),
            ),
            (Box::new(dde_core::ExactAggregation::new()), 1),
        ];
        for (estimator, repeats) in cells {
            let scenario = scenario.clone();
            plan.push(move || aggregate_cell(&scenario, |_| (), estimator.as_ref(), repeats));
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("F3: KS accuracy per data distribution (k = {k})"),
        &["distribution", "df-dde", "±std", "uniform-peer", "exact-walk"],
    );
    for (i, kind) in suite.iter().enumerate() {
        let cell = |j: usize| &results[i * 3 + j].value;
        let (dfdde, naive, exact) = (cell(0), cell(1), cell(2));
        t.push_row(vec![
            kind.label().into(),
            f(dfdde.ks_mean),
            f(dfdde.ks_std),
            f(naive.ks_mean),
            f(exact.ks_mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_dfdde_is_flat_where_naive_degrades() {
        let t = &f3_distribution_free(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 6);
        let dfdde: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let naive: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // DF-DDE stays in a narrow band across the in-band distribution
        // families. Pareto (row 3) is excluded from the flatness band: at
        // α = 1.2 a *single peer* owns the majority of all items, and no
        // k ≪ P probing scheme can reliably resolve a majority-mass
        // point-peer (see the F3 discussion in EXPERIMENTS.md — the probe
        // either hits that peer or the estimate misses half the mass; the
        // limit is intrinsic to sampling, not to the method, and F1 shows
        // it recede as k → P).
        let in_band: Vec<f64> =
            dfdde.iter().enumerate().filter(|(i, _)| *i != 3).map(|(_, v)| *v).collect();
        let df_max = in_band.iter().cloned().fold(0.0f64, f64::max);
        let df_min = in_band.iter().cloned().fold(1.0f64, f64::min);
        assert!(df_max < 0.15, "df-dde degraded somewhere: max ks {df_max}");
        assert!(df_max < df_min * 8.0 + 0.05, "df-dde not flat: {dfdde:?}");
        // The naive baseline collapses on the skewed entries (pareto row 3,
        // zipf row 4) but not on uniform (row 0).
        assert!(naive[3] > 2.0 * naive[0], "pareto should hurt naive: {naive:?}");
        assert!(naive[4] > 2.0 * naive[0], "zipf should hurt naive: {naive:?}");
        // Even on the stress row df-dde must beat the biased baseline.
        assert!(naive[3] > 1.5 * dfdde[3], "df-dde should win on pareto: {naive:?} vs {dfdde:?}");
        assert!(naive[4] > 1.5 * dfdde[4], "df-dde should win on zipf: {naive:?} vs {dfdde:?}");
    }
}
