//! F4 — the cost–accuracy frontier: messages spent vs KS error reached, for
//! every method including the expensive ones.
//!
//! Expected shape: DF-DDE dominates the sampling methods (lower error at
//! equal messages); exact-walk and gossip reach the best accuracy but at
//! `O(P)` / `O(rounds·P)` message cost — one to three orders of magnitude
//! more than DF-DDE needs for near-equal accuracy.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, ExactAggregation, GossipAggregation, GossipConfig,
    PoolWeighting, UniformPeerConfig, UniformPeerSampling,
};

/// Builds figure F4's frontier points.
pub fn f4_cost_accuracy_frontier(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let budgets: &[usize] = match scale {
        Scale::Quick => &[32, 128],
        Scale::Full => &[16, 64, 256],
    };

    // One operating point per row; each becomes one cell in table order.
    let mut points: Vec<(String, String, Box<dyn DensityEstimator>, usize)> = Vec::new();
    for &k in budgets {
        points.push((
            "df-dde".into(),
            format!("k={k}"),
            Box::new(DfDde::new(DfDdeConfig::with_probes(k))),
            scale.repeats(),
        ));
    }
    for &k in budgets {
        points.push((
            "uniform-peer-cw".into(),
            format!("k={k}"),
            Box::new(UniformPeerSampling::new(UniformPeerConfig {
                peers: k,
                weighting: PoolWeighting::CountWeighted,
                ..UniformPeerConfig::default()
            })),
            scale.repeats(),
        ));
    }
    for rounds in [10usize, 30] {
        points.push((
            "gossip".into(),
            format!("r={rounds}"),
            Box::new(GossipAggregation::new(GossipConfig { rounds, ..GossipConfig::default() })),
            1,
        ));
    }
    points.push(("exact-walk".into(), "full".into(), Box::new(ExactAggregation::new()), 1));

    let mut plan = ExecPlan::new();
    let mut labels = Vec::with_capacity(points.len());
    for (method, budget, estimator, repeats) in points {
        labels.push((method, budget));
        let scenario = &scenario;
        plan.push(move || aggregate_cell(scenario, |_| (), estimator.as_ref(), repeats));
    }
    let results = plan.run();

    let mut t = Table::new(
        "F4: cost-accuracy frontier (each row one operating point)",
        &["method", "budget", "msgs", "KB", "ks(gen)"],
    );
    for ((method, budget), r) in labels.into_iter().zip(&results) {
        let a = &r.value;
        t.push_row(vec![
            method,
            budget,
            f(a.messages_mean),
            f(a.bytes_mean / 1024.0),
            f(a.ks_mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f4_dfdde_is_cheaper_than_aggregation_at_similar_accuracy() {
        let t = &f4_cost_accuracy_frontier(Scale::Quick)[0];
        // Locate the largest df-dde point and the gossip r=30 point.
        let dfdde_best = t.rows.iter().rev().find(|r| r[0] == "df-dde").unwrap();
        let gossip_big = t.rows.iter().find(|r| r[0] == "gossip" && r[1] == "r=30").unwrap();
        let exact = t.rows.iter().find(|r| r[0] == "exact-walk").unwrap();
        let (df_msgs, df_ks): (f64, f64) =
            (dfdde_best[2].parse().unwrap(), dfdde_best[4].parse().unwrap());
        let g_msgs: f64 = gossip_big[2].parse().unwrap();
        let e_msgs: f64 = exact[2].parse().unwrap();
        // df-dde reaches decent accuracy with far fewer messages.
        assert!(df_ks < 0.1, "df-dde ks = {df_ks}");
        assert!(g_msgs > 5.0 * df_msgs, "gossip {g_msgs} vs df-dde {df_msgs}");
        assert!(e_msgs > df_msgs / 3.0, "exact-walk should not be free");
    }
}
