//! F5 — estimation accuracy under churn.
//!
//! Protocol: run symmetric churn (joins balance departures) for 10 time
//! units with stabilization every 0.5 units, then estimate on the churned
//! network — stale fingers, half-repaired successor lists, relocated data.
//! Accuracy is measured against the **surviving** data (crashes lose data;
//! that loss is the network's problem, not the estimator's).
//!
//! Expected shape: graceful degradation — KS grows mildly with churn rate,
//! and probe failures/timeouts appear only at the aggressive end.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::scenario::Scenario;
use dde_core::{DensityEstimator, DfDde, DfDdeConfig};
use dde_ring::{ChurnConfig, ChurnProcess, MessageKind};
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;

/// Churn rates swept (events per peer per time unit).
pub fn churn_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.0, 0.05, 0.2],
        Scale::Full => vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.4],
    }
}

/// One churned estimation run; returns `(ks_vs_surviving, timeouts,
/// probe_failures)`.
pub fn churned_run(
    scenario: &Scenario,
    rate: f64,
    probes: usize,
    run_index: u64,
) -> Option<(f64, u64, u64)> {
    let mut built = build(scenario);
    let seq = SeedSequence::new(scenario.seed ^ 0xC0FFEE);
    let mut churn_rng = seq.stream(Component::Churn, run_index);
    let mut est_rng = seq.stream(Component::Estimator, run_index);
    if rate > 0.0 {
        let mut churn = ChurnProcess::new(ChurnConfig::symmetric(rate, 0.5));
        churn.run(&mut built.net, 10.0, &mut churn_rng);
    }
    let initiator = built.net.random_peer(&mut est_rng)?;
    let before = built.net.stats().clone();
    let est = DfDde::new(DfDdeConfig::with_probes(probes));
    let report = est.estimate(&mut built.net, initiator, &mut est_rng).ok()?;
    let delta = built.net.stats().since(&before);
    let surviving = Ecdf::new(built.net.global_values());
    let ks = report.estimate.ks_to(&surviving);
    let timeouts = delta.count(MessageKind::LookupTimeout);
    let failures = (probes - report.peers_contacted) as u64;
    Some((ks, timeouts, failures))
}

/// Builds figure F5's series.
pub fn f5_accuracy_under_churn(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let k = default_probes(scale);
    let rates = churn_sweep(scale);
    let repeats = scale.repeats();
    // Finest useful grain: one cell per (rate, run) — `churned_run` already
    // builds its own network, so runs are fully independent.
    let mut plan = ExecPlan::new();
    for &rate in &rates {
        for run in 0..repeats {
            let scenario = &scenario;
            plan.push(move || churned_run(scenario, rate, k, run as u64));
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("F5: accuracy under churn (10 time units of churn, then estimate; k = {k})"),
        &["churn rate", "ks(surviving)", "±std", "timeouts", "probe shortfall"],
    );
    for (i, rate) in rates.iter().enumerate() {
        let mut ks = Vec::new();
        let mut touts = Vec::new();
        let mut fails = Vec::new();
        for r in &results[i * repeats..(i + 1) * repeats] {
            if let Some((k_, to, fl)) = r.value {
                ks.push(k_);
                touts.push(to as f64);
                fails.push(fl as f64);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let std = |v: &[f64]| {
            if v.len() < 2 {
                return 0.0;
            }
            let m = mean(v);
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
        };
        t.push_row(vec![
            format!("{rate}"),
            f(mean(&ks)),
            f(std(&ks)),
            f(mean(&touts)),
            f(mean(&fails)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5_degrades_gracefully() {
        let t = &f5_accuracy_under_churn(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 3);
        let ks_calm: f64 = t.rows[0][1].parse().unwrap();
        let ks_storm: f64 = t.rows[2][1].parse().unwrap();
        assert!(ks_calm < 0.12, "calm network should estimate well: {ks_calm}");
        // Heavy churn hurts but must not collapse the estimate.
        assert!(ks_storm < 0.45, "estimate collapsed under churn: {ks_storm}");
    }
}
