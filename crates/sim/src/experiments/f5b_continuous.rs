//! F5b (extension) — continuous estimation under **data drift**: probe
//! refresh vs estimate staleness when the stored data itself evolves.
//!
//! Peer churn alone barely moves the *distribution* (graceful leaves keep
//! the data; crashes delete arcs but the shape mostly persists) — a frozen
//! pre-churn window stays surprisingly accurate, as our first version of
//! this experiment discovered. What invalidates an old estimate is the
//! **data changing**: each tick, a slice of items is deleted and re-inserted
//! from a distribution whose mode slides across the domain. A frozen window
//! then describes yesterday's data; refresh probes track today's.
//!
//! Expected shape: `refresh = 0` decays toward the total drift; error drops
//! monotonically as refresh rises; even a modest refresh (≈ window/8 per
//! tick) stays close to the fresh-estimate floor. All rows share the same
//! drift/churn realizations, so the column is directly comparable.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use dde_core::{ContinuousConfig, ContinuousEstimator};
use dde_ring::{ChurnConfig, ChurnProcess, Network, RingId};
use dde_stats::dist::DistributionKind;
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;
use rand::rngs::StdRng;
use rand::Rng;

/// Refresh rates (probes per tick) swept.
pub fn refresh_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        // 0 = never refresh after warm-up: the pure-staleness anchor.
        Scale::Quick => vec![0, 16],
        Scale::Full => vec![0, 1, 4, 16, 32],
    }
}

/// Replaces `count` items with samples from a normal whose mode sits at
/// `center_frac` of the domain (the drift step), via real overlay writes.
fn drift_step(
    net: &mut Network,
    initiator: RingId,
    count: usize,
    center_frac: f64,
    rng: &mut StdRng,
) {
    let (lo, hi) = net.placement().domain();
    let dist = DistributionKind::Normal { center_frac, std_frac: 0.08 }.build(lo, hi);
    for _ in 0..count {
        // Delete a uniform random existing tuple (found by remote sampling),
        // then insert a fresh one from the drifted distribution.
        let point = RingId(rng.gen());
        if let Ok((Some(victim), _)) = net.sample_tuple(initiator, point, rng) {
            let _ = net.delete(initiator, victim);
        }
        let x = dist.sample(rng);
        let _ = net.insert(initiator, x);
    }
}

/// One monitored run: mean KS vs *current* data over the last 4 ticks.
fn monitored_run(
    scenario: &crate::scenario::Scenario,
    refresh: usize,
    repeat: u64,
    ticks: usize,
) -> f64 {
    // Easy-to-estimate base (its static estimation floor is ~0.03, far below
    // the drift signal) that then slides to the other side of the domain.
    let scenario = scenario
        .clone()
        .with_distribution(DistributionKind::Normal { center_frac: 0.3, std_frac: 0.08 });
    let scenario = &scenario;
    let mut built = build(scenario);
    let seq = SeedSequence::new(scenario.seed ^ 0xD1CE);
    let mut churn_rng = seq.stream(Component::Churn, repeat);
    let mut drift_rng = seq.stream(Component::Workload, repeat);
    let mut est_rng = seq.stream(Component::Estimator, repeat * 1000 + refresh as u64);
    let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.02, 0.5));
    let mut cont = ContinuousEstimator::new(ContinuousConfig {
        refresh_per_tick: refresh,
        ..ContinuousConfig::default()
    });
    let mut initiator = built.net.random_peer(&mut est_rng).expect("nonempty");
    // Warm-up: every refresh level starts from the same full window.
    while cont.probes_held() < 64 {
        if cont.prefill(&mut built.net, initiator, &mut est_rng).is_err() {
            initiator = built.net.random_peer(&mut est_rng).expect("nonempty");
        }
    }
    // Drift: 6% of the data per tick, mode sliding 0.3 → 0.7 of the domain
    // (~96% of the data replaced by the end of the run).
    let per_tick = scenario.items * 6 / 100;
    let mut tail = Vec::new();
    for tick in 0..ticks {
        churn.run(&mut built.net, 1.0, &mut churn_rng);
        if !built.net.is_alive(initiator) {
            initiator = built.net.random_peer(&mut est_rng).expect("nonempty");
        }
        let center = 0.3 + 0.4 * (tick + 1) as f64 / ticks as f64;
        drift_step(&mut built.net, initiator, per_tick, center, &mut drift_rng);
        let _ = cont.tick(&mut built.net, initiator, &mut est_rng);
        if tick + 4 >= ticks {
            if let Ok(e) = cont.current_estimate(scenario.domain) {
                let truth_now = Ecdf::new(built.net.global_values());
                tail.push(e.ks_to(&truth_now));
            }
        }
    }
    if tail.is_empty() {
        1.0
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Builds figure F5b's series.
pub fn f5b_continuous_refresh(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let ticks = 16;
    let repeats = scale.repeats().min(3);
    let mut t = Table::new(
        format!(
            "F5b: continuous estimator vs data drift (6%/tick replaced, mode 0.3->0.7, \
             churn 0.02, {ticks} ticks, window 64, {repeats} repeats, same drift per row)"
        ),
        &["refresh/tick", "ks(current) last-4-ticks"],
    );
    let sweep = refresh_sweep(scale);
    // One cell per (refresh, repeat): `monitored_run` owns its whole world
    // (build + churn + drift + estimator), so the grid is fully parallel.
    let mut plan = ExecPlan::new();
    for &refresh in &sweep {
        for r in 0..repeats {
            let scenario = &scenario;
            plan.push(move || monitored_run(scenario, refresh, r as u64, ticks));
        }
    }
    let results = plan.run();
    for (i, refresh) in sweep.iter().enumerate() {
        let ks = results[i * repeats..(i + 1) * repeats]
            .iter()
            .map(|r| r.value / repeats as f64)
            .sum::<f64>();
        t.push_row(vec![refresh.to_string(), f(ks)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5b_refresh_tracks_drift_where_frozen_window_cannot() {
        let t = &f5b_continuous_refresh(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let frozen: f64 = t.rows[0][1].parse().unwrap(); // refresh = 0
        let fresh: f64 = t.rows[1][1].parse().unwrap(); // refresh = 16
        assert!(
            fresh < 0.5 * frozen,
            "refresh must clearly beat a frozen window under drift: {fresh} vs {frozen}"
        );
        assert!(fresh < 0.25, "fresh window should track the drifted data: {fresh}");
    }
}
