//! F6 — probe-summary granularity: equi-depth buckets vs accuracy vs bytes.
//!
//! Summary granularity matters exactly when density varies *inside a single
//! peer's arc*: with `b = 1` the skeleton interpolates linearly across each
//! probed peer, smearing any feature narrower than an arc. The sweep
//! therefore runs on a narrow-spike workload (σ smaller than one arc) with
//! few peers and enough probes to reach all of them, isolating within-arc
//! resolution; on smooth workloads with many peers, `b` barely matters
//! (which T1's default `b = 8` already exploits).
//!
//! Expected shape: accuracy improves from `b = 1` until buckets resolve the
//! spike, then saturates, while reply bytes grow linearly with `b`.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{DfDde, DfDdeConfig};
use dde_stats::dist::DistributionKind;

/// Bucket counts swept.
pub fn bucket_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 8, 32],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
    }
}

/// Builds figure F6's series.
pub fn f6_summary_granularity(scale: Scale) -> Vec<Table> {
    // Few wide peers + ALL the mass in a spike narrower than one arc
    // (σ = 0.4% of the domain vs mean arcs of ~3%): within-peer resolution
    // is the whole error budget, because k = 2P probes reach every peer.
    let peers = 32;
    let k = 64;
    let spike = DistributionKind::Normal { center_frac: 0.5, std_frac: 0.004 };
    let mut t = Table::new(
        format!("F6: accuracy vs summary granularity b (narrow-spike data, P = {peers}, k = {k})"),
        &["buckets b", "ks(gen)", "±std", "KB per estimate"],
    );
    let buckets = bucket_sweep(scale);
    let mut plan = ExecPlan::new();
    for &b in &buckets {
        let spike = spike.clone();
        plan.push(move || {
            let scenario = default_scenario(scale)
                .with_peers(peers)
                .with_distribution(spike)
                .with_summary_buckets(b);
            aggregate_cell(
                &scenario,
                |_| (),
                &DfDde::new(DfDdeConfig::with_probes(k)),
                scale.repeats(),
            )
        });
    }
    let results = plan.run();
    for (b, r) in buckets.iter().zip(&results) {
        let a = &r.value;
        t.push_row(vec![b.to_string(), f(a.ks_mean), f(a.ks_std), f(a.bytes_mean / 1024.0)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f6_more_buckets_more_bytes_better_accuracy() {
        let t = &f6_summary_granularity(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 3);
        let ks_1: f64 = t.rows[0][1].parse().unwrap();
        let ks_32: f64 = t.rows[2][1].parse().unwrap();
        let kb_1: f64 = t.rows[0][3].parse().unwrap();
        let kb_32: f64 = t.rows[2][3].parse().unwrap();
        assert!(ks_32 < ks_1, "finer summaries must resolve the spike: b=1 {ks_1} vs b=32 {ks_32}");
        assert!(kb_32 > kb_1, "bytes must grow with granularity");
    }
}
