//! F7 — accuracy and cost vs dataset size `N`.
//!
//! Expected shape: message cost is **independent of N** (probes move
//! summaries, not data) and accuracy is flat-to-slightly-improving (larger
//! datasets have less of their own sampling noise) — the "cheap regardless
//! of data volume" half of scalability.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{DfDde, DfDdeConfig};

/// Dataset sizes swept.
pub fn dataset_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![5_000, 50_000],
        Scale::Full => vec![10_000, 100_000, 1_000_000],
    }
}

/// Builds figure F7's series.
pub fn f7_dataset_size(scale: Scale) -> Vec<Table> {
    let k = default_probes(scale);
    let mut t = Table::new(
        format!("F7: accuracy & cost vs dataset size N (k = {k})"),
        &["N", "ks(gen)", "ks(data)", "msgs", "N-hat rel.err"],
    );
    let sizes = dataset_sweep(scale);
    let mut plan = ExecPlan::new();
    for &n in &sizes {
        plan.push(move || {
            let scenario = default_scenario(scale).with_items(n);
            aggregate_cell(
                &scenario,
                |_| (),
                &DfDde::new(DfDdeConfig::with_probes(k)),
                scale.repeats(),
            )
        });
    }
    let results = plan.run();
    for (n, r) in sizes.iter().zip(&results) {
        let a = &r.value;
        t.push_row(vec![
            n.to_string(),
            f(a.ks_mean),
            f(a.ks_data_mean),
            f(a.messages_mean),
            a.count_error_mean.map_or_else(|| "-".into(), f),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f7_cost_independent_of_dataset_size() {
        let t = &f7_dataset_size(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let msgs_small: f64 = t.rows[0][3].parse().unwrap();
        let msgs_large: f64 = t.rows[1][3].parse().unwrap();
        // 10× the data, same message bill (within noise).
        assert!(
            (msgs_large / msgs_small - 1.0).abs() < 0.15,
            "cost should not scale with N: {msgs_small} vs {msgs_large}"
        );
        let ks_small: f64 = t.rows[0][1].parse().unwrap();
        let ks_large: f64 = t.rows[1][1].parse().unwrap();
        assert!(ks_large < ks_small * 2.0 + 0.02, "accuracy regressed with N");
    }
}
