//! F8 — routing cost: mean hops per probe vs network size.
//!
//! Expected shape: hops ≈ `c·log2(P)` with `c ≈ 0.5` on a healthy ring
//! (Chord's classic result), rising under churn by the staleness of finger
//! tables — this is the per-probe factor inside DF-DDE's `k·O(log P)` bill.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use dde_ring::RingId;
use dde_ring::{ChurnConfig, ChurnProcess};
use dde_stats::rng::{Component, SeedSequence};
use rand::Rng;

/// Network sizes swept.
pub fn size_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![64, 512],
        Scale::Full => vec![128, 512, 2048, 8192],
    }
}

/// Builds figure F8's series.
pub fn f8_routing_hops(scale: Scale) -> Vec<Table> {
    let lookups = match scale {
        Scale::Quick => 300,
        Scale::Full => 2000,
    };
    let mut t = Table::new(
        format!("F8: routing hops vs network size ({lookups} lookups/point)"),
        &["P", "log2(P)", "hops (healthy)", "hops (churned)", "hops/log2(P)"],
    );
    let sizes = size_sweep(scale);
    // One cell per P; each cell builds its healthy and churned rings itself.
    let mut plan = ExecPlan::new();
    for &p in &sizes {
        plan.push(move || {
            let scenario = default_scenario(scale).with_peers(p).with_items(1_000);
            let seq = SeedSequence::new(scenario.seed ^ 0xF8);
            let mut rng = seq.stream(Component::Workload, p as u64);

            // Healthy ring.
            let mut built = build(&scenario);
            let from = built.net.random_peer(&mut rng).expect("nonempty");
            let mut hops_healthy = 0u64;
            for _ in 0..lookups {
                let target = RingId(rng.gen());
                if let Ok(r) = built.net.lookup(from, target) {
                    hops_healthy += u64::from(r.hops);
                }
            }

            // Churned ring (no full repair: fingers stay stale).
            let mut built = build(&scenario);
            let mut churn_rng = seq.stream(Component::Churn, p as u64);
            let mut churn = ChurnProcess::new(ChurnConfig::symmetric(0.1, 1.0));
            churn.run(&mut built.net, 5.0, &mut churn_rng);
            let mut from = built.net.random_peer(&mut rng).expect("nonempty");
            let mut hops_churned = 0u64;
            let mut ok = 0u64;
            for _ in 0..lookups {
                if !built.net.is_alive(from) {
                    from = built.net.random_peer(&mut rng).expect("nonempty");
                }
                let target = RingId(rng.gen());
                if let Ok(r) = built.net.lookup(from, target) {
                    hops_churned += u64::from(r.hops);
                    ok += 1;
                }
            }

            let mean_h = hops_healthy as f64 / lookups as f64;
            let mean_c = if ok > 0 { hops_churned as f64 / ok as f64 } else { f64::NAN };
            (mean_h, mean_c)
        });
    }
    let results = plan.run();
    for (&p, r) in sizes.iter().zip(&results) {
        let (mean_h, mean_c) = r.value;
        let log2p = (p as f64).log2();
        t.push_row(vec![p.to_string(), f(log2p), f(mean_h), f(mean_c), f(mean_h / log2p)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f8_hops_scale_logarithmically() {
        let t = &f8_routing_hops(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let ratio_small: f64 = t.rows[0][4].parse().unwrap();
        let ratio_large: f64 = t.rows[1][4].parse().unwrap();
        // hops/log2(P) stays in a narrow band ⇒ logarithmic scaling.
        assert!(ratio_small > 0.2 && ratio_small < 1.2, "ratio {ratio_small}");
        assert!(ratio_large > 0.2 && ratio_large < 1.2, "ratio {ratio_large}");
        // Churn costs extra hops.
        let healthy: f64 = t.rows[1][2].parse().unwrap();
        let churned: f64 = t.rows[1][3].parse().unwrap();
        assert!(churned >= healthy * 0.9, "churned routing should not be cheaper");
    }
}
