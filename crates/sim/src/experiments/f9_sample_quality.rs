//! F9 — Phase-2 sample quality: the inversion-method claim.
//!
//! The abstract: the model "generates random samples for any arbitrary
//! distribution by sampling the global cumulative distribution function and
//! is free from sampling bias". This experiment scores the two Phase-2
//! flavours directly — the KS distance of the *generated samples'* empirical
//! CDF to the generating distribution:
//!
//! * **synthetic** — `F̂⁻¹(u)` evaluated locally on the skeleton (free);
//! * **remote** — real tuples fetched from the peers owning the sampled
//!   quantiles (`m·O(log P)` extra messages), which additionally cannot
//!   invent values that don't exist.
//!
//! Expected shape: both track the skeleton's own accuracy; error decreases
//! with `m` until the skeleton error floor (Phase-1's `k` limits Phase-2).

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use dde_core::{DensityEstimator, DfDde, DfDdeConfig, SampleMode};
use dde_stats::rng::{Component, SeedSequence};
use dde_stats::Ecdf;

/// Sample counts swept.
pub fn sample_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![50, 400],
        Scale::Full => vec![50, 100, 200, 400, 800],
    }
}

/// Builds figure F9's series.
pub fn f9_sample_quality(scale: Scale) -> Vec<Table> {
    type RunScores = (f64, Option<f64>, f64, f64);
    let scenario = default_scenario(scale);
    let k = default_probes(scale);
    let mut t = Table::new(
        format!("F9: Phase-2 sample quality vs m (k = {k}; KS of sample ECDF vs generator)"),
        &["m", "synthetic ks", "remote ks", "remote msgs extra", "skeleton ks (floor)"],
    );
    let sweep = sample_sweep(scale);
    let repeats = scale.repeats();
    // One cell per (m, run); each returns this run's raw scores.
    let mut plan = ExecPlan::new();
    for &m in &sweep {
        for run in 0..repeats {
            let scenario = &scenario;
            plan.push(move || {
                let mut built = build(scenario);
                let seq = SeedSequence::new(scenario.seed ^ 0xF9);
                let mut rng = seq.stream(Component::Estimator, (run * 100 + m) as u64);
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");

                // Skeleton-only estimate (shared Phase 1 cost baseline).
                let base = DfDde::new(DfDdeConfig::with_probes(k))
                    .estimate(&mut built.net, initiator, &mut rng)
                    .expect("estimates");
                let floor = base.estimate.ks_to(built.truth.as_ref());

                // Synthetic samples from that skeleton.
                let synthetic = base.estimate.synthesize_samples(m, &mut rng);
                let syn = Ecdf::new(synthetic).ks_distance_to(built.truth.as_ref());

                // Remote tuples (fresh run including Phase 2).
                let remote = DfDde::new(DfDdeConfig {
                    sample_mode: SampleMode::RemoteTuples { m },
                    ..DfDdeConfig::with_probes(k)
                })
                .estimate(&mut built.net, initiator, &mut rng)
                .expect("estimates");
                let tuples = remote.estimate.samples().to_vec();
                let rem = (!tuples.is_empty())
                    .then(|| Ecdf::new(tuples).ks_distance_to(built.truth.as_ref()));
                let extra = remote.messages().saturating_sub(base.messages()) as f64;
                (syn, rem, extra, floor)
            });
        }
    }
    let results = plan.run();
    for (i, m) in sweep.iter().enumerate() {
        let runs = &results[i * repeats..(i + 1) * repeats];
        let mean = |g: &dyn Fn(&RunScores) -> f64| {
            runs.iter().map(|r| g(&r.value)).sum::<f64>() / repeats as f64
        };
        let syn = mean(&|v| v.0);
        // Runs whose remote phase returned no tuples contribute 0, exactly
        // as the serial accumulation did.
        let rem = mean(&|v| v.1.unwrap_or(0.0));
        let extra = mean(&|v| v.2);
        let floor = mean(&|v| v.3);
        t.push_row(vec![m.to_string(), f(syn), f(rem), f(extra), f(floor)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f9_samples_track_the_generator() {
        let t = &f9_sample_quality(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let syn: f64 = row[1].parse().unwrap();
            let rem: f64 = row[2].parse().unwrap();
            assert!(syn < 0.25, "synthetic samples off at m={}: {syn}", row[0]);
            assert!(rem < 0.3, "remote tuples off at m={}: {rem}", row[0]);
        }
        // Remote sampling costs extra messages; synthetic is free.
        let extra: f64 = t.rows[1][3].parse().unwrap();
        assert!(extra > 0.0, "remote sampling must cost messages");
    }
}
