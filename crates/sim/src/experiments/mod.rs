//! The reconstructed experiment suite (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md` for the paper-vs-measured record).
//!
//! Every experiment is a function from a [`Scale`] to one or more
//! [`Table`]s, regenerable via `cargo run -p dde-bench --bin expts -- <id>`
//! and benchmarked by the matching Criterion target in `dde-bench`.
//!
//! # Determinism and parallelism
//!
//! Each experiment decomposes into independent *cells* — (scenario build,
//! estimator, repeat block) triples — pushed onto an [`crate::exec::ExecPlan`]
//! in canonical (table) order and executed by a work-stealing worker pool
//! sized by [`crate::exec::jobs`]. Cells build their own `BuiltScenario` and
//! draw randomness only from `SeedSequence::new(scenario.seed)` streams keyed
//! by `(Component, run_index)`, so a table's bytes depend only on the
//! scenario seeds, never on the worker count or scheduling order.
//! `crates/sim/tests/determinism.rs` pins this guarantee.

pub mod f10_replication;
pub mod f11_faults;
pub mod f12_scale;
pub mod f12b_churn;
pub mod f13_adversarial;
pub mod f14_throughput;
pub mod f1_probes;
pub mod f2_network_size;
pub mod f3_distributions;
pub mod f4_cost_accuracy;
pub mod f5_churn;
pub mod f5b_continuous;
pub mod f6_granularity;
pub mod f7_dataset_size;
pub mod f8_routing;
pub mod f9_sample_quality;
pub mod t1_defaults;
pub mod t2_cost_to_target;
pub mod t3_bias_ablation;
pub mod t4_probe_strategy;
pub mod t5_aggregates;

pub use f10_replication::f10_replication;
pub use f11_faults::f11_faults;
pub use f12_scale::f12_scale;
pub use f12b_churn::f12b_churn;
pub use f13_adversarial::f13_adversarial;
pub use f14_throughput::f14_throughput;
pub use f1_probes::f1_accuracy_vs_probes;
pub use f2_network_size::f2_accuracy_vs_network_size;
pub use f3_distributions::f3_distribution_free;
pub use f4_cost_accuracy::f4_cost_accuracy_frontier;
pub use f5_churn::f5_accuracy_under_churn;
pub use f5b_continuous::f5b_continuous_refresh;
pub use f6_granularity::f6_summary_granularity;
pub use f7_dataset_size::f7_dataset_size;
pub use f8_routing::f8_routing_hops;
pub use f9_sample_quality::f9_sample_quality;
pub use t1_defaults::t1_default_parameters;
pub use t2_cost_to_target::t2_messages_to_target_accuracy;
pub use t3_bias_ablation::t3_bias_ablation;
pub use t4_probe_strategy::t4_probe_strategy;
pub use t5_aggregates::t5_aggregates;

use crate::report::Table;

/// Experiment scale: `Quick` keeps everything test-suite friendly (seconds);
/// `Full` reproduces the paper-sized sweeps (minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small networks, few repeats — used by tests and smoke runs.
    Quick,
    /// Paper-scale sweeps.
    Full,
}

impl Scale {
    /// Repeats per sweep point.
    pub fn repeats(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }
}

/// Runs every experiment at the given scale, in index order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(t1_default_parameters(scale));
    tables.extend(f1_accuracy_vs_probes(scale));
    tables.extend(f2_accuracy_vs_network_size(scale));
    tables.extend(f3_distribution_free(scale));
    tables.extend(f4_cost_accuracy_frontier(scale));
    tables.extend(f5_accuracy_under_churn(scale));
    tables.extend(f5b_continuous_refresh(scale));
    tables.extend(f6_summary_granularity(scale));
    tables.extend(f7_dataset_size(scale));
    tables.extend(f8_routing_hops(scale));
    tables.extend(f9_sample_quality(scale));
    tables.extend(f10_replication(scale));
    tables.extend(f11_faults(scale));
    tables.extend(f12_scale(scale));
    tables.extend(f12b_churn(scale));
    tables.extend(f13_adversarial(scale));
    tables.extend(f14_throughput(scale));
    tables.extend(t2_messages_to_target_accuracy(scale));
    tables.extend(t3_bias_ablation(scale));
    tables.extend(t4_probe_strategy(scale));
    tables.extend(t5_aggregates(scale));
    tables
}

/// Runs one experiment by id (`"f1"`, `"t3"`, …); `None` for unknown ids.
pub fn run_by_id(id: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match id.to_ascii_lowercase().as_str() {
        "t1" => t1_default_parameters(scale),
        "f1" => f1_accuracy_vs_probes(scale),
        "f2" => f2_accuracy_vs_network_size(scale),
        "f3" => f3_distribution_free(scale),
        "f4" => f4_cost_accuracy_frontier(scale),
        "f5" => f5_accuracy_under_churn(scale),
        "f5b" => f5b_continuous_refresh(scale),
        "f6" => f6_summary_granularity(scale),
        "f7" => f7_dataset_size(scale),
        "f8" => f8_routing_hops(scale),
        "f9" => f9_sample_quality(scale),
        "f10" => f10_replication(scale),
        "f11" => f11_faults(scale),
        "f12" => f12_scale(scale),
        "f12b" => f12b_churn(scale),
        "f13" => f13_adversarial(scale),
        "f14" => f14_throughput(scale),
        "t2" => t2_messages_to_target_accuracy(scale),
        "t3" => t3_bias_ablation(scale),
        "t4" => t4_probe_strategy(scale),
        "t5" => t5_aggregates(scale),
        _ => return None,
    })
}

/// All experiment ids, in run order.
pub const ALL_IDS: &[&str] = &[
    "t1", "f1", "f2", "f3", "f4", "f5", "f5b", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "f12b",
    "f13", "f14", "t2", "t3", "t4", "t5",
];
