//! T1 — the default parameter table, plus baseline health numbers for the
//! default scenario (the anchor every figure varies one axis of).

use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use crate::scenario::Scenario;
use dde_core::{DfDde, DfDdeConfig, ExactAggregation};

/// The default scenario each scale uses.
pub fn default_scenario(scale: Scale) -> Scenario {
    match scale {
        Scale::Quick => Scenario::default().with_peers(256).with_items(20_000),
        Scale::Full => Scenario::default(),
    }
}

/// The default probe count (`k`).
pub fn default_probes(scale: Scale) -> usize {
    match scale {
        // Quick runs on a small (256-peer) ring, where the skewed default
        // workload needs a denser probe set to keep smoke-test thresholds
        // meaningful; Full uses the paper-style k = P/8 regime.
        Scale::Quick => 128,
        Scale::Full => 128,
    }
}

/// Builds table T1.
pub fn t1_default_parameters(scale: Scale) -> Vec<Table> {
    let s = default_scenario(scale);
    let mut params = Table::new("T1: default parameters", &["parameter", "value"]);
    params.push_row(vec!["peers (P)".into(), s.peers.to_string()]);
    params.push_row(vec!["items (N)".into(), s.items.to_string()]);
    params.push_row(vec!["domain".into(), format!("[{}, {}]", s.domain.0, s.domain.1)]);
    params.push_row(vec!["distribution".into(), s.distribution.label().into()]);
    params.push_row(vec!["placement".into(), format!("{:?}", s.placement)]);
    params.push_row(vec!["layout".into(), format!("{:?}", s.layout)]);
    params.push_row(vec!["summary buckets (b)".into(), s.summary_buckets.to_string()]);
    params.push_row(vec!["probes (k)".into(), default_probes(scale).to_string()]);
    params.push_row(vec!["repeats".into(), scale.repeats().to_string()]);

    let mut health = Table::new(
        "T1b: default-scenario health",
        &["method", "ks(gen)", "ks(data)", "msgs", "KB", "hops/lookup", "N err"],
    );
    let mut plan = ExecPlan::new();
    for est in [
        Box::new(DfDde::new(DfDdeConfig::with_probes(default_probes(scale))))
            as Box<dyn dde_core::DensityEstimator>,
        Box::new(ExactAggregation::new()),
    ] {
        let s = &s;
        plan.push(move || aggregate_cell(s, |_| (), est.as_ref(), scale.repeats()));
    }
    for r in plan.run() {
        let a = r.value;
        health.push_row(vec![
            a.method.into(),
            f(a.ks_mean),
            f(a.ks_data_mean),
            f(a.messages_mean),
            f(a.bytes_mean / 1024.0),
            f(a.hops_mean),
            a.count_error_mean.map_or_else(|| "-".into(), f),
        ]);
    }
    vec![params, health]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_produces_two_tables() {
        let tables = t1_default_parameters(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].rows.len() >= 8);
        assert_eq!(tables[1].rows.len(), 2);
        // The exact walk row must be (near-)exact.
        let exact_ks: f64 = tables[1].rows[1][2].parse().unwrap();
        assert!(exact_ks < 0.03, "exact ks(data) = {exact_ks}");
    }
}
