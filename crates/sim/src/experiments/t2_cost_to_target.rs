//! T2 — messages needed to reach a target accuracy, per method.
//!
//! The headline efficiency table: for a KS target, how many messages does
//! each method spend? Expected shape: DF-DDE needs a small multiple of
//! `k*·log P`; uniform-peer (equal-weight) **never** reaches the target on
//! skewed data (bias floor); gossip/exact reach it at `Θ(P)`-and-up cost.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate;
use crate::scenario::Scenario;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, ExactAggregation, GossipAggregation, GossipConfig,
    PoolWeighting, UniformPeerConfig, UniformPeerSampling,
};

/// The KS target per scale (looser at quick scale: fewer repeats).
pub fn ks_target(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 0.08,
        Scale::Full => 0.05,
    }
}

/// Doubles the budget until the method's mean KS reaches `target`, returning
/// `(budget, messages, ks)` of the first success, or `None` if the cap is
/// hit first (a bias floor). Builds its own network: one search = one cell.
/// With `cap_to_peers`, the cap also never exceeds the network size (for
/// peer-sampling methods, whose budget is a peer count).
fn search<F>(
    make: F,
    scenario: &Scenario,
    target: f64,
    repeats: usize,
    cap: usize,
    cap_to_peers: bool,
) -> Option<(usize, f64, f64)>
where
    F: Fn(usize) -> Box<dyn DensityEstimator>,
{
    let mut built = build(scenario);
    let cap = if cap_to_peers { cap.min(built.net.len()) } else { cap };
    let mut budget = 8;
    while budget <= cap {
        let est = make(budget);
        let a = aggregate(&mut built, est.as_ref(), repeats);
        if a.ks_mean <= target && a.runs > 0 {
            return Some((budget, a.messages_mean, a.ks_mean));
        }
        budget *= 2;
    }
    None
}

/// Builds table T2.
pub fn t2_messages_to_target_accuracy(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let target = ks_target(scale);
    let cap = match scale {
        Scale::Quick => 256,
        Scale::Full => 2048,
    };

    let fmt = move |name: &str, r: Option<(usize, f64, f64)>, cap: usize| -> Vec<String> {
        match r {
            Some((b, m, k)) => vec![name.into(), b.to_string(), f(m), f(k)],
            None => {
                vec![name.into(), format!(">{cap}"), "-".into(), "never (bias floor)".into()]
            }
        }
    };

    // One cell per method: each budget-doubling search is sequential inside,
    // but the five methods run concurrently. Each cell renders its own row.
    let mut plan: ExecPlan<'_, Vec<String>> = ExecPlan::new();
    let s = &scenario;
    let repeats = scale.repeats();
    plan.push(move || {
        let r = search(
            |k| Box::new(DfDde::new(DfDdeConfig::with_probes(k))),
            s,
            target,
            repeats,
            cap,
            false,
        );
        fmt("df-dde", r, cap)
    });
    plan.push(move || {
        let r = search(
            |k| {
                Box::new(UniformPeerSampling::new(UniformPeerConfig {
                    peers: k,
                    weighting: PoolWeighting::CountWeighted,
                    ..UniformPeerConfig::default()
                }))
            },
            s,
            target,
            repeats,
            cap,
            false,
        );
        fmt("uniform-peer-cw", r, cap)
    });
    plan.push(move || {
        // The biased baseline may be capped by the network size itself —
        // report the cap it actually ran under.
        let r = search(
            |k| {
                Box::new(UniformPeerSampling::new(UniformPeerConfig {
                    peers: k,
                    ..UniformPeerConfig::default()
                }))
            },
            s,
            target,
            repeats,
            cap,
            true,
        );
        fmt("uniform-peer", r, cap.min(s.peers))
    });
    plan.push(move || {
        let r = search(
            |rounds| {
                Box::new(GossipAggregation::new(GossipConfig { rounds, ..GossipConfig::default() }))
            },
            s,
            target,
            1,
            64,
            false,
        );
        fmt("gossip", r, cap)
    });
    plan.push(move || {
        let mut built = build(s);
        let a = aggregate(&mut built, &ExactAggregation::new(), 1);
        vec!["exact-walk".into(), "full".into(), f(a.messages_mean), f(a.ks_mean)]
    });

    let mut t = Table::new(
        format!("T2: cost to reach KS <= {target} (budget doubling, cap {cap})"),
        &["method", "budget", "msgs", "ks reached"],
    );
    for row in plan.run() {
        t.push_row(row.value);
    }

    let _ = default_probes(scale); // anchor: T2 shares T1's scenario
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_dfdde_reaches_target_cheaper_than_gossip() {
        let t = &t2_messages_to_target_accuracy(Scale::Quick)[0];
        let dfdde = t.rows.iter().find(|r| r[0] == "df-dde").unwrap();
        assert_ne!(dfdde[2], "-", "df-dde must reach the target: {dfdde:?}");
        let df_msgs: f64 = dfdde[2].parse().unwrap();
        let gossip = t.rows.iter().find(|r| r[0] == "gossip").unwrap();
        if gossip[2] != "-" {
            let g_msgs: f64 = gossip[2].parse().unwrap();
            assert!(g_msgs > df_msgs, "gossip {g_msgs} should cost more than df-dde {df_msgs}");
        }
    }
}
