//! T2 — messages needed to reach a target accuracy, per method.
//!
//! The headline efficiency table: for a KS target, how many messages does
//! each method spend? Expected shape: DF-DDE needs a small multiple of
//! `k*·log P`; uniform-peer (equal-weight) **never** reaches the target on
//! skewed data (bias floor); gossip/exact reach it at `Θ(P)`-and-up cost.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::build::build;
use crate::report::{f, Table};
use crate::runner::aggregate;
use dde_core::{
    DensityEstimator, DfDde, DfDdeConfig, ExactAggregation, GossipAggregation, GossipConfig,
    PoolWeighting, UniformPeerConfig, UniformPeerSampling,
};

/// The KS target per scale (looser at quick scale: fewer repeats).
pub fn ks_target(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 0.08,
        Scale::Full => 0.05,
    }
}

/// Doubles the budget until the method's mean KS reaches `target`, returning
/// `(budget, messages, ks)` of the first success, or `None` if the cap is
/// hit first (a bias floor).
fn search<F>(
    mut make: F,
    built: &mut crate::build::BuiltScenario,
    target: f64,
    repeats: usize,
    cap: usize,
) -> Option<(usize, f64, f64)>
where
    F: FnMut(usize) -> Box<dyn DensityEstimator>,
{
    let mut budget = 8;
    while budget <= cap {
        let est = make(budget);
        let a = aggregate(built, est.as_ref(), repeats);
        if a.ks_mean <= target && a.runs > 0 {
            return Some((budget, a.messages_mean, a.ks_mean));
        }
        budget *= 2;
    }
    None
}

/// Builds table T2.
pub fn t2_messages_to_target_accuracy(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let mut built = build(&scenario);
    let target = ks_target(scale);
    let cap = match scale {
        Scale::Quick => 256,
        Scale::Full => 2048,
    };
    let mut t = Table::new(
        format!("T2: cost to reach KS <= {target} (budget doubling, cap {cap})"),
        &["method", "budget", "msgs", "ks reached"],
    );

    let fmt = |t: &mut Table, name: &str, r: Option<(usize, f64, f64)>| match r {
        Some((b, m, k)) => t.push_row(vec![name.into(), b.to_string(), f(m), f(k)]),
        None => t.push_row(vec![
            name.into(),
            format!(">{cap}"),
            "-".into(),
            "never (bias floor)".into(),
        ]),
    };

    let r = search(
        |k| Box::new(DfDde::new(DfDdeConfig::with_probes(k))),
        &mut built,
        target,
        scale.repeats(),
        cap,
    );
    fmt(&mut t, "df-dde", r);

    let r = search(
        |k| {
            Box::new(UniformPeerSampling::new(UniformPeerConfig {
                peers: k,
                weighting: PoolWeighting::CountWeighted,
                ..UniformPeerConfig::default()
            }))
        },
        &mut built,
        target,
        scale.repeats(),
        cap,
    );
    fmt(&mut t, "uniform-peer-cw", r);

    // The biased baseline may be capped by the network size itself.
    let naive_cap = cap.min(built.net.len());
    let r = search(
        |k| {
            Box::new(UniformPeerSampling::new(UniformPeerConfig {
                peers: k,
                ..UniformPeerConfig::default()
            }))
        },
        &mut built,
        target,
        scale.repeats(),
        naive_cap,
    );
    fmt(&mut t, "uniform-peer", r);

    let r = search(
        |rounds| {
            Box::new(GossipAggregation::new(GossipConfig { rounds, ..GossipConfig::default() }))
        },
        &mut built,
        target,
        1,
        64,
    );
    fmt(&mut t, "gossip", r);

    let a = aggregate(&mut built, &ExactAggregation::new(), 1);
    t.push_row(vec!["exact-walk".into(), "full".into(), f(a.messages_mean), f(a.ks_mean)]);

    let _ = default_probes(scale); // anchor: T2 shares T1's scenario
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_dfdde_reaches_target_cheaper_than_gossip() {
        let t = &t2_messages_to_target_accuracy(Scale::Quick)[0];
        let dfdde = t.rows.iter().find(|r| r[0] == "df-dde").unwrap();
        assert_ne!(dfdde[2], "-", "df-dde must reach the target: {dfdde:?}");
        let df_msgs: f64 = dfdde[2].parse().unwrap();
        let gossip = t.rows.iter().find(|r| r[0] == "gossip").unwrap();
        if gossip[2] != "-" {
            let g_msgs: f64 = gossip[2].parse().unwrap();
            assert!(g_msgs > df_msgs, "gossip {g_msgs} should cost more than df-dde {df_msgs}");
        }
    }
}
