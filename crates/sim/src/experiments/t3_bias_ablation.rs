//! T3 — the bias ablation: where exactly does "free from sampling bias"
//! come from?
//!
//! Four cells: node layout {uniform ids, load-balanced} × Horvitz–Thompson
//! weighting {on, off}, plus the naive equal-weight peer-sampling row.
//! Expected shape: with HT on, accuracy is good under **both** layouts; with
//! HT off it collapses under the load-balanced layout (arc length
//! anti-correlates with density there); naive peer sampling is bad under
//! both because its bias is volume-, not arc-, driven.

use super::t1_defaults::{default_probes, default_scenario};
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use crate::scenario::NodeLayout;
use dde_core::skeleton::Weighting;
use dde_core::{DensityEstimator, DfDde, DfDdeConfig, UniformPeerConfig, UniformPeerSampling};

/// Builds table T3.
pub fn t3_bias_ablation(scale: Scale) -> Vec<Table> {
    let k = default_probes(scale);
    let layouts = [NodeLayout::UniformIds, NodeLayout::LoadBalanced];
    let mut plan = ExecPlan::new();
    for layout in layouts {
        let scenario = default_scenario(scale).with_layout(layout);
        // Three cells per layout: HT on, HT off, naive baseline.
        let estimators: Vec<Box<dyn DensityEstimator>> = vec![
            Box::new(DfDde::new(DfDdeConfig::with_probes(k))),
            Box::new(DfDde::new(DfDdeConfig {
                weighting: Weighting::Unweighted,
                ..DfDdeConfig::with_probes(k)
            })),
            Box::new(UniformPeerSampling::new(UniformPeerConfig {
                peers: k,
                ..UniformPeerConfig::default()
            })),
        ];
        for estimator in estimators {
            let scenario = scenario.clone();
            plan.push(move || {
                aggregate_cell(&scenario, |_| (), estimator.as_ref(), scale.repeats())
            });
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        format!("T3: bias ablation, KS(gen) by layout x estimator (k = {k})"),
        &["layout", "df-dde (HT)", "df-dde (no HT)", "uniform-peer (equal)"],
    );
    for (i, layout) in layouts.iter().enumerate() {
        let cell = |j: usize| &results[i * 3 + j].value;
        let (ht, raw, naive) = (cell(0), cell(1), cell(2));
        t.push_row(vec![format!("{layout:?}"), f(ht.ks_mean), f(raw.ks_mean), f(naive.ks_mean)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_ht_is_robust_across_layouts() {
        let t = &t3_bias_ablation(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        let ht_uniform: f64 = t.rows[0][1].parse().unwrap();
        let ht_balanced: f64 = t.rows[1][1].parse().unwrap();
        let raw_balanced: f64 = t.rows[1][2].parse().unwrap();
        assert!(ht_uniform < 0.12, "HT under uniform ids: {ht_uniform}");
        assert!(ht_balanced < 0.12, "HT under load balancing: {ht_balanced}");
        // Dropping HT under load balancing is the structural failure.
        assert!(
            raw_balanced > 2.0 * ht_balanced,
            "no-HT should collapse under load balancing: {raw_balanced} vs {ht_balanced}"
        );
    }
}
