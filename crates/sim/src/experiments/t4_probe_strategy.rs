//! T4 (ablation) — probe-position strategy: stratified vs i.i.d. uniform.
//!
//! The reconstruction reads the paper's "sampling the global cumulative
//! distribution function" as *systematic* (stratified) ring sampling: one
//! uniform position per equal ring stratum. Both strategies are unbiased
//! under Horvitz–Thompson; the difference is pure variance — clustered mass
//! (hotspot peers) is covered systematically instead of by luck.
//!
//! Expected shape: stratified dominates at every budget, by ~1.5–2.5× in KS
//! on the skewed default workload, at identical message cost.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use crate::runner::aggregate_cell;
use dde_core::{DfDde, DfDdeConfig, ProbeStrategy};

/// Builds table T4.
pub fn t4_probe_strategy(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let budgets: &[usize] = match scale {
        Scale::Quick => &[32, 128],
        Scale::Full => &[16, 32, 64, 128, 256, 512],
    };
    // Two cells per budget: stratified vs i.i.d. probe positions.
    let mut plan = ExecPlan::new();
    for &k in budgets {
        for strategy in [ProbeStrategy::Stratified, ProbeStrategy::IidUniform] {
            let scenario = &scenario;
            plan.push(move || {
                aggregate_cell(
                    scenario,
                    |_| (),
                    &DfDde::new(DfDdeConfig { strategy, ..DfDdeConfig::with_probes(k) }),
                    scale.repeats(),
                )
            });
        }
    }
    let results = plan.run();
    let mut t = Table::new(
        "T4: probe strategy ablation, KS(gen) at equal message cost",
        &["k", "stratified", "±std", "iid uniform", "±std", "iid/stratified"],
    );
    for (i, &k) in budgets.iter().enumerate() {
        let strat = &results[i * 2].value;
        let iid = &results[i * 2 + 1].value;
        t.push_row(vec![
            k.to_string(),
            f(strat.ks_mean),
            f(strat.ks_std),
            f(iid.ks_mean),
            f(iid.ks_std),
            f(iid.ks_mean / strat.ks_mean.max(1e-9)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_stratified_never_loses() {
        let t = &t4_probe_strategy(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let strat: f64 = row[1].parse().unwrap();
            let iid: f64 = row[3].parse().unwrap();
            assert!(
                strat <= iid * 1.15,
                "stratified ({strat}) should not lose to iid ({iid}) at k={}",
                row[0]
            );
        }
        // At the larger budget, the advantage is material.
        let ratio: f64 = t.rows[1][5].parse().unwrap();
        assert!(ratio > 1.2, "expected a clear stratification win: ratio = {ratio}");
    }
}
