//! T5 (extension) — global aggregate queries from the same probe round:
//! relative error of COUNT / SUM / AVG / VAR and a range COUNT, vs `k`.
//!
//! The abstract motivates the estimator with "load balancing analysis, query
//! processing, and data mining"; aggregates are the query-processing
//! workhorse. Expected shape: every aggregate's relative error decays with
//! `k` like the CDF error does (same Horvitz–Thompson machinery), with AVG
//! (a ratio, so peer-level noise partially cancels) the most accurate.

use super::t1_defaults::default_scenario;
use super::Scale;
use crate::build::build;
use crate::exec::ExecPlan;
use crate::report::{f, Table};
use dde_core::AggregateEstimator;
use dde_stats::metrics::relative_error;
use dde_stats::rng::{Component, SeedSequence};

/// Probe budgets swept.
pub fn probe_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 128],
        Scale::Full => vec![16, 32, 64, 128, 256, 512],
    }
}

/// Builds table T5.
pub fn t5_aggregates(scale: Scale) -> Vec<Table> {
    let scenario = default_scenario(scale);
    let (dlo, dhi) = scenario.domain;
    let (qlo, qhi) = (dlo + 0.1 * (dhi - dlo), dlo + 0.3 * (dhi - dlo));
    let sweep = probe_sweep(scale);
    let repeats = scale.repeats();

    // One cell per (k, run). Each cell builds its own network and derives
    // the exact references from it — the build is seed-deterministic, so
    // every cell sees the same references the shared build used to provide.
    let mut plan = ExecPlan::new();
    for &k in &sweep {
        for run in 0..repeats {
            let scenario = &scenario;
            plan.push(move || {
                let mut built = build(scenario);
                let vals = built.net.global_values();
                let n = vals.len() as f64;
                let sum: f64 = vals.iter().sum();
                let mean = sum / n;
                let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                let range_exact = vals.iter().filter(|&&x| (qlo..=qhi).contains(&x)).count() as f64;

                let seq = SeedSequence::new(scenario.seed ^ 0x75);
                let mut rng = seq.stream(Component::Estimator, (run * 1000 + k) as u64);
                let initiator = built.net.random_peer(&mut rng).expect("nonempty");
                let rep = AggregateEstimator::with_probes(k)
                    .query(&mut built.net, initiator, &mut rng)
                    .expect("queries");
                [
                    relative_error(rep.count, n),
                    relative_error(rep.sum, sum),
                    relative_error(rep.mean, mean),
                    relative_error(rep.variance, var),
                    relative_error(rep.range_count(qlo, qhi), range_exact),
                ]
            });
        }
    }
    let results = plan.run();

    let mut t = Table::new(
        format!("T5: aggregate-query relative error vs k (range count over [{qlo:.0}, {qhi:.0}])"),
        &["k", "COUNT", "SUM", "AVG", "VAR", "range COUNT"],
    );
    for (i, k) in sweep.iter().enumerate() {
        let mut errs = [0.0f64; 5];
        for r in &results[i * repeats..(i + 1) * repeats] {
            for (e, v) in errs.iter_mut().zip(r.value) {
                *e += v / repeats as f64;
            }
        }
        t.push_row(vec![k.to_string(), f(errs[0]), f(errs[1]), f(errs[2]), f(errs[3]), f(errs[4])]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_errors_shrink_with_k() {
        let t = &t5_aggregates(Scale::Quick)[0];
        assert_eq!(t.rows.len(), 2);
        // COUNT and SUM are direct HT estimates: more probes must not make
        // them clearly worse. (AVG/VAR are ratios of noisy quantities — at 3
        // repeats their per-point noise exceeds the trend, so they only get
        // the absolute bound below.)
        for col in 1..=2 {
            let small: f64 = t.rows[0][col].parse().unwrap();
            let large: f64 = t.rows[1][col].parse().unwrap();
            assert!(
                large <= small * 1.5 + 0.02,
                "column {col} regressed with k: {small} -> {large}"
            );
        }
        // At k = 128, every aggregate is within 15%.
        for col in 1..=5 {
            let e: f64 = t.rows[1][col].parse().unwrap();
            assert!(e < 0.15, "column {col} error {e} too large at k=128");
        }
    }
}
