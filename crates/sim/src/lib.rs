//! # dde-sim
//!
//! Simulation driver for the ring-DDE reproduction: declarative scenario
//! configurations, a network/workload builder, an estimator runner with
//! repeat-and-aggregate statistics, and the full experiment suite
//! (figures F1–F8, tables T1–T3 — see `DESIGN.md` §4 for the index).
//!
//! The typical flow:
//!
//! ```
//! use dde_sim::{Scenario, build, run_estimator};
//! use dde_core::{DfDde, DfDdeConfig};
//!
//! let scenario = Scenario::default().with_peers(128).with_items(10_000).with_seed(7);
//! let mut built = build(&scenario);
//! let report = run_estimator(&mut built, &DfDde::new(DfDdeConfig::with_probes(64)), 0).unwrap();
//! assert!(report.ks_vs_data < 0.25);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adversary;
pub mod build;
pub mod dst;
pub mod exec;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use build::{build, build_fresh, BuiltScenario};
pub use dst::{DstConfig, DstEvent, DstFailure, InjectedBug, Schedule};
pub use exec::{CellResult, ExecPlan};
pub use report::Table;
pub use runner::{aggregate, aggregate_cell, run_estimator, AggregatedResult, RunResult};
pub use scenario::{CapacitySpec, NodeLayout, PartitionSpec, PlacementMode, Scenario};
pub use workload::{run_workload, OpKind, OpMix, ScheduledOp, WorkloadReport, WorkloadSpec};
