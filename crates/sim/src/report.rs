//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;

/// A simple result table: header row + data rows, rendered as aligned text
/// (the way the paper's tables read) or CSV (for plotting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. `"F1: accuracy vs probe count"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(row);
    }

    /// Renders as aligned monospace text.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers + rows; cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float with 4 significant-ish decimals for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("demo", &["k", "ks"]);
        t.push_row(vec!["8".into(), "0.1000".into()]);
        t.push_row(vec!["128".into(), "0.0125".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("k"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn renders_csv_with_escaping() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a,b".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"a,b\",1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.012345), "0.0123");
        assert_eq!(f(3.17159), "3.17");
        assert_eq!(f(123456.0), "123456");
    }
}
