//! Running estimators against built scenarios and aggregating repeats.

use crate::build::BuiltScenario;
use dde_core::{DensityEstimator, EstimateError};
use dde_stats::metrics;
use dde_stats::rng::{Component, SeedSequence};

/// Metrics of one estimation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Estimator name.
    pub method: &'static str,
    /// KS distance to the generating distribution.
    pub ks_vs_generator: f64,
    /// KS distance to the realized dataset's ECDF (excludes dataset noise).
    pub ks_vs_data: f64,
    /// 1-D Wasserstein distance to the generator.
    pub wasserstein: f64,
    /// Messages sent by this run.
    pub messages: u64,
    /// Bytes moved by this run.
    pub bytes: u64,
    /// Mean routing hops per lookup in this run.
    pub mean_hops: f64,
    /// Peers contacted.
    pub peers_contacted: usize,
    /// Probes the method set out to collect.
    pub probes_requested: usize,
    /// Probes that actually succeeded (short of requested under faults).
    pub probes_succeeded: usize,
    /// Estimated global item count, if the method produces one.
    pub n_hat: Option<f64>,
    /// True item count.
    pub n_true: u64,
}

impl RunResult {
    /// Relative error of the global-count estimate, if available.
    pub fn count_error(&self) -> Option<f64> {
        self.n_hat.map(|n| metrics::relative_error(n, self.n_true as f64))
    }
}

/// Runs one estimator against the scenario. `run_index` selects the
/// estimator's RNG stream, so repeats differ while staying reproducible.
pub fn run_estimator(
    built: &mut BuiltScenario,
    estimator: &dyn DensityEstimator,
    run_index: u64,
) -> Result<RunResult, EstimateError> {
    let seq = SeedSequence::new(built.scenario.seed);
    let mut rng = seq.stream(Component::Estimator, run_index);
    let initiator = built
        .net
        .random_peer(&mut rng)
        .ok_or(EstimateError::Routing(dde_ring::LookupError::EmptyNetwork))?;
    let report = estimator.estimate(&mut built.net, initiator, &mut rng)?;
    Ok(RunResult {
        method: estimator.name(),
        ks_vs_generator: report.estimate.ks_to(built.truth.as_ref()),
        ks_vs_data: report.estimate.ks_to(&built.data_truth),
        wasserstein: report.estimate.wasserstein_to(built.truth.as_ref()),
        messages: report.messages(),
        bytes: report.bytes(),
        mean_hops: report.cost.mean_hops(),
        peers_contacted: report.peers_contacted,
        probes_requested: report.probes_requested,
        probes_succeeded: report.probes_succeeded,
        n_hat: report.estimated_total,
        n_true: built.net.total_items(),
    })
}

/// Mean/std aggregation of repeated runs.
#[derive(Debug, Clone)]
pub struct AggregatedResult {
    /// Estimator name.
    pub method: &'static str,
    /// Mean KS vs generator.
    pub ks_mean: f64,
    /// Standard deviation of KS vs generator.
    pub ks_std: f64,
    /// Mean KS vs the realized dataset.
    pub ks_data_mean: f64,
    /// Mean messages per run.
    pub messages_mean: f64,
    /// Mean bytes per run.
    pub bytes_mean: f64,
    /// Mean hops per lookup.
    pub hops_mean: f64,
    /// Mean probes succeeded per run (vs. the method's request count).
    pub probes_ok_mean: f64,
    /// Mean relative error of N̂ (over runs that produced one).
    pub count_error_mean: Option<f64>,
    /// Runs that succeeded.
    pub runs: usize,
    /// Runs that failed.
    pub failures: usize,
}

/// One experiment cell: a **fresh** scenario build, an optional setup pass
/// (install a fault plan, run churn, …), then `repeats` estimation runs.
///
/// This is the unit the parallel runner ([`crate::exec::ExecPlan`])
/// schedules. Everything inside derives from `(scenario.seed, Component,
/// run_index)` and the cell owns its `BuiltScenario` outright, so a cell
/// computes the same result on any worker in any order — the root of the
/// suite's `jobs = N` ≡ `jobs = 1` byte-identity guarantee.
pub fn aggregate_cell(
    scenario: &crate::scenario::Scenario,
    setup: impl FnOnce(&mut BuiltScenario),
    estimator: &dyn DensityEstimator,
    repeats: usize,
) -> AggregatedResult {
    let mut built = crate::build::build(scenario);
    setup(&mut built);
    aggregate(&mut built, estimator, repeats)
}

/// Runs the estimator `repeats` times (fresh RNG stream per run, same
/// network) and aggregates.
///
/// The caller owns `built`; when order-independence across cells matters,
/// use [`aggregate_cell`], which rebuilds from the scenario instead of
/// sharing a mutated network.
pub fn aggregate(
    built: &mut BuiltScenario,
    estimator: &dyn DensityEstimator,
    repeats: usize,
) -> AggregatedResult {
    let mut ks = Vec::with_capacity(repeats);
    let mut ks_data = Vec::with_capacity(repeats);
    let mut msgs = Vec::with_capacity(repeats);
    let mut bytes = Vec::with_capacity(repeats);
    let mut hops = Vec::with_capacity(repeats);
    let mut ok_probes = Vec::with_capacity(repeats);
    let mut cerr = Vec::new();
    let mut failures = 0;
    for run in 0..repeats {
        match run_estimator(built, estimator, run as u64) {
            Ok(r) => {
                ks.push(r.ks_vs_generator);
                ks_data.push(r.ks_vs_data);
                msgs.push(r.messages as f64);
                bytes.push(r.bytes as f64);
                hops.push(r.mean_hops);
                ok_probes.push(r.probes_succeeded as f64);
                if let Some(e) = r.count_error() {
                    cerr.push(e);
                }
            }
            Err(_) => failures += 1,
        }
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    let std = |v: &[f64]| {
        if v.len() < 2 {
            return 0.0;
        }
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    AggregatedResult {
        method: estimator.name(),
        ks_mean: mean(&ks),
        ks_std: std(&ks),
        ks_data_mean: mean(&ks_data),
        messages_mean: mean(&msgs),
        bytes_mean: mean(&bytes),
        hops_mean: mean(&hops),
        probes_ok_mean: mean(&ok_probes),
        count_error_mean: if cerr.is_empty() { None } else { Some(mean(&cerr)) },
        runs: ks.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::scenario::Scenario;
    use dde_core::{DfDde, DfDdeConfig, ExactAggregation};

    fn small() -> Scenario {
        Scenario::default().with_peers(64).with_items(5_000).with_seed(11)
    }

    #[test]
    fn run_produces_sane_metrics() {
        let mut built = build(&small());
        let r = run_estimator(&mut built, &DfDde::new(DfDdeConfig::with_probes(32)), 0).unwrap();
        assert_eq!(r.method, "df-dde");
        assert!(r.ks_vs_generator > 0.0 && r.ks_vs_generator < 0.5);
        assert!(r.ks_vs_data <= r.ks_vs_generator + 0.05);
        assert!(r.messages > 32);
        assert!(r.bytes > r.messages); // headers alone exceed 1 B/message
        assert_eq!(r.n_true, 5_000);
        assert!(r.count_error().unwrap() < 0.5);
    }

    #[test]
    fn repeats_differ_but_are_reproducible() {
        let mut built = build(&small());
        let a = run_estimator(&mut built, &DfDde::new(DfDdeConfig::with_probes(32)), 0).unwrap();
        let b = run_estimator(&mut built, &DfDde::new(DfDdeConfig::with_probes(32)), 1).unwrap();
        assert_ne!(a.ks_vs_generator, b.ks_vs_generator);
        let mut built2 = build(&small());
        let a2 = run_estimator(&mut built2, &DfDde::new(DfDdeConfig::with_probes(32)), 0).unwrap();
        assert_eq!(a.ks_vs_generator, a2.ks_vs_generator);
    }

    #[test]
    fn aggregate_collects_stats() {
        let mut built = build(&small());
        let agg = aggregate(&mut built, &DfDde::new(DfDdeConfig::with_probes(32)), 5);
        assert_eq!(agg.runs, 5);
        assert_eq!(agg.failures, 0);
        assert!(agg.ks_mean > 0.0);
        assert!(agg.ks_std > 0.0); // runs differ
        assert!(agg.messages_mean > 32.0);
    }

    #[test]
    fn exact_walk_beats_sampling_on_accuracy() {
        let mut built = build(&small());
        let exact = aggregate(&mut built, &ExactAggregation::new(), 2);
        let sampled = aggregate(&mut built, &DfDde::new(DfDdeConfig::with_probes(16)), 2);
        assert!(exact.ks_data_mean < sampled.ks_data_mean);
        assert!(exact.messages_mean > 60.0); // O(P)
    }
}
