//! Declarative scenario configuration.

use dde_stats::dist::DistributionKind;

/// How items map to ring positions (see [`dde_ring::Placement`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Order-preserving range placement (the paper's regime).
    Range,
    /// Classic DHT hashing.
    Hashed,
}

/// How peer identifiers are laid out on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLayout {
    /// Uniformly random node ids (plain consistent hashing).
    UniformIds,
    /// Node ids at the data's quantiles, so every peer holds ~equal volume —
    /// the steady state of load-balanced range-partitioned systems
    /// (Mercury, P-Ring). Arc length then anti-correlates with data density,
    /// the adversarial case for uncorrected ring-position sampling.
    LoadBalanced,
    /// Deterministic worst-case placement: most peers are packed into the
    /// sparsest data region (tiny, empty arcs) while a handful of peers
    /// cover the dense region with giant arcs — the layout that maximizes
    /// the bias of uncorrected (arc-uniform) stratified sampling. See
    /// [`crate::adversary`]. Falls back to [`NodeLayout::UniformIds`] under
    /// hashed placement, like [`NodeLayout::LoadBalanced`].
    Adversarial,
}

/// The heterogeneous peer-capacity axis: a static fraction of peers is slow,
/// scaling the delay of every message they send and (optionally) missing
/// reply deadlines. Integer parameters keep the spec `Eq` and its `Debug`
/// rendering — the snapshot-cache key — exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySpec {
    /// Per-mille of peers in the slow class (e.g. 250 = 25%).
    pub slow_pm: u32,
    /// Delay multiplier for messages sent by slow peers (≥ 2 to matter).
    pub factor: u64,
    /// Reply deadline in delay units; a slow reply drawn above it surfaces
    /// as a timeout. 0 = callers wait forever (pure delay scaling).
    pub deadline: u64,
}

/// The spatially-correlated arc-partition axis: a contiguous arc of the ring
/// is cut off from the rest. Positions are per-mille of the ring so the spec
/// stays `Eq` and cache-key exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Arc start position, in per-mille of the ring (0..1000).
    pub start_pm: u32,
    /// Arc span, in per-mille of the ring (0 disables the partition).
    pub span_pm: u32,
}

/// A complete, reproducible experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of peers.
    pub peers: usize,
    /// Number of data items.
    pub items: usize,
    /// The data domain `[lo, hi]`.
    pub domain: (f64, f64),
    /// The generating distribution.
    pub distribution: DistributionKind,
    /// Item placement mode.
    pub placement: PlacementMode,
    /// Node-id layout.
    pub layout: NodeLayout,
    /// Equi-depth buckets per probe reply.
    pub summary_buckets: usize,
    /// Peers that join through the overlay back-to-back — within one
    /// stabilization window, no repair rounds in between — right after the
    /// bulk load, clustered on the densest data region (0 = off).
    pub flash_crowd: usize,
    /// Heterogeneous peer-capacity axis (`None` = homogeneous peers).
    pub capacity: Option<CapacitySpec>,
    /// Spatially-correlated arc partition (`None` = fully connected).
    pub partition: Option<PartitionSpec>,
    /// Master seed: everything (ids, data, probes, churn) derives from it.
    pub seed: u64,
}

impl Default for Scenario {
    /// The defaults of experiment table T1: a mid-size ring with skewed data
    /// under range placement.
    fn default() -> Self {
        Self {
            peers: 1024,
            items: 100_000,
            domain: (0.0, 1000.0),
            distribution: DistributionKind::Zipf { cells: 64, exponent: 1.1 },
            placement: PlacementMode::Range,
            layout: NodeLayout::UniformIds,
            summary_buckets: 8,
            flash_crowd: 0,
            capacity: None,
            partition: None,
            seed: 42,
        }
    }
}

impl Scenario {
    /// Returns a copy with the given peer count.
    pub fn with_peers(mut self, peers: usize) -> Self {
        self.peers = peers;
        self
    }

    /// Returns a copy with the given item count.
    pub fn with_items(mut self, items: usize) -> Self {
        self.items = items;
        self
    }

    /// Returns a copy with the given distribution.
    pub fn with_distribution(mut self, d: DistributionKind) -> Self {
        self.distribution = d;
        self
    }

    /// Returns a copy with the given placement mode.
    pub fn with_placement(mut self, p: PlacementMode) -> Self {
        self.placement = p;
        self
    }

    /// Returns a copy with the given node layout.
    pub fn with_layout(mut self, l: NodeLayout) -> Self {
        self.layout = l;
        self
    }

    /// Returns a copy with the given summary granularity.
    pub fn with_summary_buckets(mut self, b: usize) -> Self {
        self.summary_buckets = b;
        self
    }

    /// Returns a copy with the given flash-crowd size.
    pub fn with_flash_crowd(mut self, joiners: usize) -> Self {
        self.flash_crowd = joiners;
        self
    }

    /// Returns a copy with the given capacity axis.
    pub fn with_capacity(mut self, c: CapacitySpec) -> Self {
        self.capacity = Some(c);
        self
    }

    /// Returns a copy with the given arc partition.
    pub fn with_partition(mut self, p: PartitionSpec) -> Self {
        self.partition = Some(p);
        self
    }

    /// Returns a copy with the given master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let s = Scenario::default()
            .with_peers(16)
            .with_items(100)
            .with_seed(7)
            .with_summary_buckets(4)
            .with_placement(PlacementMode::Hashed)
            .with_layout(NodeLayout::LoadBalanced);
        assert_eq!(s.peers, 16);
        assert_eq!(s.items, 100);
        assert_eq!(s.seed, 7);
        assert_eq!(s.summary_buckets, 4);
        assert_eq!(s.placement, PlacementMode::Hashed);
        assert_eq!(s.layout, NodeLayout::LoadBalanced);
    }

    #[test]
    fn defaults_are_the_t1_parameters() {
        let s = Scenario::default();
        assert_eq!(s.peers, 1024);
        assert_eq!(s.items, 100_000);
        assert_eq!(s.domain, (0.0, 1000.0));
        assert_eq!(s.placement, PlacementMode::Range);
        assert_eq!(s.layout, NodeLayout::UniformIds);
        assert_eq!(s.summary_buckets, 8);
        assert_eq!(s.flash_crowd, 0);
        assert_eq!(s.capacity, None);
        assert_eq!(s.partition, None);
        assert_eq!(s, s.clone());
    }

    #[test]
    fn adversarial_axis_builders_compose() {
        let s = Scenario::default()
            .with_flash_crowd(12)
            .with_capacity(CapacitySpec { slow_pm: 250, factor: 4, deadline: 10 })
            .with_partition(PartitionSpec { start_pm: 100, span_pm: 200 })
            .with_layout(NodeLayout::Adversarial);
        assert_eq!(s.flash_crowd, 12);
        assert_eq!(s.capacity, Some(CapacitySpec { slow_pm: 250, factor: 4, deadline: 10 }));
        assert_eq!(s.partition, Some(PartitionSpec { start_pm: 100, span_pm: 200 }));
        assert_eq!(s.layout, NodeLayout::Adversarial);
    }
}
