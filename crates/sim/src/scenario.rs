//! Declarative scenario configuration.

use dde_stats::dist::DistributionKind;

/// How items map to ring positions (see [`dde_ring::Placement`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Order-preserving range placement (the paper's regime).
    Range,
    /// Classic DHT hashing.
    Hashed,
}

/// How peer identifiers are laid out on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLayout {
    /// Uniformly random node ids (plain consistent hashing).
    UniformIds,
    /// Node ids at the data's quantiles, so every peer holds ~equal volume —
    /// the steady state of load-balanced range-partitioned systems
    /// (Mercury, P-Ring). Arc length then anti-correlates with data density,
    /// the adversarial case for uncorrected ring-position sampling.
    LoadBalanced,
}

/// A complete, reproducible experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of peers.
    pub peers: usize,
    /// Number of data items.
    pub items: usize,
    /// The data domain `[lo, hi]`.
    pub domain: (f64, f64),
    /// The generating distribution.
    pub distribution: DistributionKind,
    /// Item placement mode.
    pub placement: PlacementMode,
    /// Node-id layout.
    pub layout: NodeLayout,
    /// Equi-depth buckets per probe reply.
    pub summary_buckets: usize,
    /// Master seed: everything (ids, data, probes, churn) derives from it.
    pub seed: u64,
}

impl Default for Scenario {
    /// The defaults of experiment table T1: a mid-size ring with skewed data
    /// under range placement.
    fn default() -> Self {
        Self {
            peers: 1024,
            items: 100_000,
            domain: (0.0, 1000.0),
            distribution: DistributionKind::Zipf { cells: 64, exponent: 1.1 },
            placement: PlacementMode::Range,
            layout: NodeLayout::UniformIds,
            summary_buckets: 8,
            seed: 42,
        }
    }
}

impl Scenario {
    /// Returns a copy with the given peer count.
    pub fn with_peers(mut self, peers: usize) -> Self {
        self.peers = peers;
        self
    }

    /// Returns a copy with the given item count.
    pub fn with_items(mut self, items: usize) -> Self {
        self.items = items;
        self
    }

    /// Returns a copy with the given distribution.
    pub fn with_distribution(mut self, d: DistributionKind) -> Self {
        self.distribution = d;
        self
    }

    /// Returns a copy with the given placement mode.
    pub fn with_placement(mut self, p: PlacementMode) -> Self {
        self.placement = p;
        self
    }

    /// Returns a copy with the given node layout.
    pub fn with_layout(mut self, l: NodeLayout) -> Self {
        self.layout = l;
        self
    }

    /// Returns a copy with the given summary granularity.
    pub fn with_summary_buckets(mut self, b: usize) -> Self {
        self.summary_buckets = b;
        self
    }

    /// Returns a copy with the given master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let s = Scenario::default()
            .with_peers(16)
            .with_items(100)
            .with_seed(7)
            .with_summary_buckets(4)
            .with_placement(PlacementMode::Hashed)
            .with_layout(NodeLayout::LoadBalanced);
        assert_eq!(s.peers, 16);
        assert_eq!(s.items, 100);
        assert_eq!(s.seed, 7);
        assert_eq!(s.summary_buckets, 4);
        assert_eq!(s.placement, PlacementMode::Hashed);
        assert_eq!(s.layout, NodeLayout::LoadBalanced);
    }

    #[test]
    fn defaults_are_the_t1_parameters() {
        let s = Scenario::default();
        assert_eq!(s.peers, 1024);
        assert_eq!(s.items, 100_000);
        assert_eq!(s.domain, (0.0, 1000.0));
        assert_eq!(s.placement, PlacementMode::Range);
        assert_eq!(s.layout, NodeLayout::UniformIds);
        assert_eq!(s.summary_buckets, 8);
        assert_eq!(s, s.clone());
    }
}
